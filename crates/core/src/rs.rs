//! The idiomatic Rust API surface (`mpijava::rs`).
//!
//! The classic classes of this crate reproduce mpiJava's Java argument
//! conventions verbatim — `send(buf, offset, count, datatype, dest, tag)`
//! with `Deref` chains standing in for class inheritance. That surface is
//! the paper's contract and stays untouched; this module layers the API a
//! Rust caller would actually want on top of it:
//!
//! * **Trait-based polymorphism**: [`Communicator`] is implemented by
//!   [`Intracomm`], [`Cartcomm`](crate::Cartcomm) and
//!   [`Graphcomm`](crate::Graphcomm), so generic code says
//!   `fn exchange<C: Communicator>(comm: &C)` instead of leaning on
//!   `Deref` coercions.
//! * **Datatype inference**: the element type of the buffer determines the
//!   MPI datatype via [`BufferElement::datatype`] — no `MPI.INT` at call
//!   sites, and no way to pass the *wrong* one.
//! * **Slice-native buffers**: Java's `(buf, offset, count)` triple is a
//!   Rust slice. Sub-ranges are ordinary slicing: `&buf[3..8]`.
//! * **RAII nonblocking ops**: [`isend`](Communicator::isend) /
//!   [`irecv_into`](Communicator::irecv_into) return a lifetime-bound
//!   [`TypedRequest`] that completes on drop and whose
//!   [`wait`](TypedRequest::wait) consumes the handle.
//! * **Nonblocking collectives**: [`ibarrier`](Communicator::ibarrier),
//!   [`ibroadcast`](Communicator::ibroadcast),
//!   [`iall_reduce`](Communicator::iall_reduce),
//!   [`iall_to_all`](Communicator::iall_to_all),
//!   [`ireduce_scatter_into`](Communicator::ireduce_scatter_into),
//!   [`iscan_into`](Communicator::iscan_into) & friends return the
//!   same [`TypedRequest`] handles, so one heterogeneous
//!   [`TypedRequest::wait_all`] batch mixes point-to-point and
//!   collective completion; blocking collectives are `start + wait`
//!   over the same engine schedules (see the crate docs' three-column
//!   table).
//! * **Persistent operations**: [`send_init`](Communicator::send_init) /
//!   [`recv_init`](Communicator::recv_init) and the persistent
//!   collectives ([`barrier_init`](Communicator::barrier_init),
//!   [`broadcast_init`](Communicator::broadcast_init),
//!   [`reduce_init_into`](Communicator::reduce_init_into),
//!   [`all_reduce_init`](Communicator::all_reduce_init),
//!   [`all_gather_init`](Communicator::all_gather_init)) return a
//!   reusable [`PersistentRequest`] whose `start()`/`wait()` pairs
//!   replay the operation without re-paying validation, algorithm
//!   selection, or schedule construction (see the crate docs' persistent
//!   column).
//! * **Node topology** (multi-fabric jobs):
//!   [`node_of`](Communicator::node_of) /
//!   [`my_node`](Communicator::my_node) /
//!   [`node_leader`](Communicator::node_leader) report the fabric's
//!   rank → node placement, and
//!   [`split_by_node`](Communicator::split_by_node) yields the per-node
//!   sub-communicator (the `MPI_Comm_split_type(COMM_TYPE_SHARED)`
//!   shape). On hybrid fabrics the collective tuner routes through the
//!   node leaders automatically (see `mpi_native::coll::hier`).
//! * **Zero-copy byte sends**: [`send_bytes`](Communicator::send_bytes) /
//!   [`isend_bytes`](Communicator::isend_bytes) move an owned
//!   refcounted buffer onto the engine's zero-copy datapath without a
//!   single payload copy.
//! * **Object transport without `MPI.OBJECT` plumbing**:
//!   [`send_obj`](Communicator::send_obj) / [`recv_obj`](Communicator::recv_obj)
//!   are generic over [`Serializable`].
//!
//! Every method delegates to the corresponding classic method, so each
//! call crosses the simulated JNI boundary exactly as the paper's
//! measurements require — the idiomatic surface is sugar, not a bypass.
//!
//! The paper's Figure 3 program, idiomatic form:
//!
//! ```no_run
//! use mpijava::rs::Communicator;
//! use mpijava::MpiRuntime;
//!
//! MpiRuntime::new(2).run(|mpi| {
//!     let world = mpi.comm_world();
//!     if world.rank()? == 0 {
//!         let msg: Vec<u16> = "Hello, there".encode_utf16().collect();
//!         world.send(&msg[..], 1, 99)?;
//!     } else {
//!         let mut buf = vec![0u16; 20];
//!         let status = world.recv_into(&mut buf, 0, 99)?;
//!         let n = status.count_elements::<u16>().unwrap();
//!         println!("received: {}", String::from_utf16_lossy(&buf[..n]));
//!     }
//!     mpi.finalize()
//! }).unwrap();
//! ```
//!
//! ## Mixing surfaces in one source file: the shadowing caveat
//!
//! The trait's short names shadow the classic Java-style methods for any
//! type that implements [`Communicator`] once the trait is imported:
//! method resolution finds the trait impl on `Intracomm` *before* it
//! tries the `Deref` to [`Comm`] that the classic inherent
//! methods live behind. With the trait imported at file scope, the
//! classic six-argument `send` no longer resolves:
//!
//! ```compile_fail
//! use mpijava::rs::Communicator; // file-wide import shadows classic names
//! use mpijava::{Datatype, MpiRuntime};
//!
//! MpiRuntime::new(2).run(|mpi| {
//!     let world = mpi.comm_world();
//!     // ERROR: this now resolves to rs::Communicator::send(buf, dest, tag),
//!     // which takes three arguments, not six.
//!     world.send(&[1u8], 0, 1, &Datatype::byte(), 1, 7)?;
//!     Ok(())
//! }).unwrap();
//! ```
//!
//! The idiom: import the trait *scoped* — inside the function (or inner
//! module) that wants the idiomatic surface, anonymously via
//! `use ... as _;` since only the methods are needed, not the name. The
//! rest of the file keeps the classic resolution:
//!
//! ```
//! use mpijava::{Datatype, MpiRuntime};
//!
//! /// Idiomatic half: the trait import is contained to this function.
//! fn sum_of_ranks(world: &mpijava::Intracomm) -> mpijava::MpiResult<i32> {
//!     use mpijava::rs::Communicator as _;
//!     let mut total = [0i32];
//!     world.all_reduce(&[world.rank()? as i32], &mut total, mpijava::Op::sum())?;
//!     Ok(total[0])
//! }
//!
//! MpiRuntime::new(2).run(|mpi| {
//!     let world = mpi.comm_world();
//!     let rank = world.rank()?; // classic Comm::Rank via Deref — un-shadowed here
//!     assert_eq!(sum_of_ranks(&world)?, 1);
//!     // The classic six-argument Send/Recv still resolve in this scope.
//!     if rank == 0 {
//!         world.send(&[42u8], 0, 1, &Datatype::byte(), 1, 7)?;
//!     } else {
//!         let mut buf = [0u8];
//!         world.recv(&mut buf, 0, 1, &Datatype::byte(), 0, 7)?;
//!         assert_eq!(buf[0], 42);
//!     }
//!     Ok(())
//! }).unwrap();
//! ```
//!
//! Escape hatch when both surfaces must share one scope: call the classic
//! form fully qualified, `Comm::send(&world, buf, off, count, ty, dest,
//! tag)` — inherent methods named explicitly ignore trait shadowing.

use std::borrow::Borrow;
use std::sync::Arc;

use mpi_native::{ErrorClass, SendMode, PROC_NULL};

use crate::buffer::{bytes_to_elements, slice_to_bytes, BufferElement};
use crate::comm::Comm;
use crate::exception::{MPIException, MpiResult};
use crate::intracomm::Intracomm;
use crate::op::Op;
use crate::request::{PersistentCollBufs, Request};
use crate::serial::Serializable;
use crate::status::Status;

pub use crate::request::{PersistentRequest, TypedRequest};
pub use crate::window::{GetToken, Window};

/// Polymorphic communication interface over every intra-communicator
/// class of the binding.
///
/// All methods are slice-native and infer the MPI datatype from the
/// buffer element type; see the [module docs](crate::rs) for the design
/// and the [crate docs](crate) for the classic ⇄ idiomatic method table.
pub trait Communicator {
    /// The underlying intra-communicator (the one required method;
    /// everything else is provided on top of it).
    fn as_intracomm(&self) -> &Intracomm;

    /// The underlying base communicator.
    fn as_comm(&self) -> &Comm {
        self.as_intracomm()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// This process's rank in the communicator (`Comm.Rank()`).
    fn rank(&self) -> MpiResult<usize> {
        self.as_comm().rank()
    }

    /// Number of processes in the communicator (`Comm.Size()`).
    fn size(&self) -> MpiResult<usize> {
        self.as_comm().size()
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Counters of this rank's engine (eager vs rendezvous sends, bytes,
    /// collective and RMA activity) — always on, at every trace mode.
    fn stats(&self) -> crate::EngineStats {
        self.as_comm().env.engine.lock().stats().clone()
    }

    /// MPI_T-style snapshot of this rank's performance variables: the
    /// [`EngineStats`](crate::EngineStats) counters as named pvars,
    /// queue-depth and peer-liveness gauges, transport frame counters
    /// (when enabled), and the latency histograms.
    fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        self.as_comm().env.engine.lock().metrics_snapshot()
    }

    /// Reset the resettable metrics (histograms and the event ring);
    /// monotonic engine counters are unaffected.
    fn metrics_reset(&self) {
        self.as_comm().env.engine.lock().metrics_reset()
    }

    // ------------------------------------------------------------------
    // Blocking point-to-point
    // ------------------------------------------------------------------

    /// Send the whole slice to `dest` (classic `Send(buf, 0, buf.len(),
    /// T::datatype(), dest, tag)`).
    fn send<T: BufferElement>(&self, buf: &[T], dest: i32, tag: i32) -> MpiResult<()> {
        self.as_comm()
            .send(buf, 0, buf.len(), &T::datatype(), dest, tag)
    }

    /// Receive into the whole slice from `source`, returning the
    /// [`Status`] (classic `Recv`). Receiving fewer elements than
    /// `buf.len()` is fine; `status.count_elements::<T>()` says how many
    /// arrived.
    ///
    /// Unlike the classic `Recv` — which reproduces the paper's full JNI
    /// marshalling pipeline — this rides the engine's zero-copy datapath:
    /// the arrived payload is copied **exactly once**, from the
    /// refcounted transport buffer into `buf`. Results are byte-identical
    /// to the classic path (contiguous basic datatypes marshal to a
    /// straight copy), and the simulated JNI crossing is still counted.
    fn recv_into<T: BufferElement>(
        &self,
        buf: &mut [T],
        source: i32,
        tag: i32,
    ) -> MpiResult<Status> {
        self.as_comm().recv_into_contiguous(buf, source, tag)
    }

    /// Combined send + receive (classic `Sendrecv`), with independent
    /// element types for the two directions.
    fn sendrecv<S: BufferElement, R: BufferElement>(
        &self,
        send: &[S],
        dest: i32,
        send_tag: i32,
        recv: &mut [R],
        source: i32,
        recv_tag: i32,
    ) -> MpiResult<Status> {
        let recv_count = recv.len();
        self.as_comm().sendrecv(
            send,
            0,
            send.len(),
            &S::datatype(),
            dest,
            send_tag,
            recv,
            0,
            recv_count,
            &R::datatype(),
            source,
            recv_tag,
        )
    }

    // ------------------------------------------------------------------
    // Non-blocking point-to-point
    // ------------------------------------------------------------------

    /// Start a non-blocking send of the whole slice (classic `Isend`).
    ///
    /// The payload is marshalled at call time (exactly like the classic
    /// method), so the returned request does not need the buffer to stay
    /// borrowed; the lifetime bound keeps the handle from outliving the
    /// scope that produced it.
    fn isend<'buf, T: BufferElement>(
        &self,
        buf: &'buf [T],
        dest: i32,
        tag: i32,
    ) -> MpiResult<TypedRequest<'buf>> {
        Ok(TypedRequest::new(self.as_comm().isend(
            buf,
            0,
            buf.len(),
            &T::datatype(),
            dest,
            tag,
        )?))
    }

    /// Start a non-blocking receive into the whole slice (classic
    /// `Irecv`). The buffer stays mutably borrowed by the returned
    /// [`TypedRequest`] until it completes — waited on explicitly or on
    /// drop — so the type system rules out reading a half-filled buffer.
    fn irecv_into<'buf, T: BufferElement>(
        &self,
        buf: &'buf mut [T],
        source: i32,
        tag: i32,
    ) -> MpiResult<TypedRequest<'buf>> {
        let count = buf.len();
        Ok(TypedRequest::new(self.as_comm().irecv(
            buf,
            0,
            count,
            &T::datatype(),
            source,
            tag,
        )?))
    }

    // ------------------------------------------------------------------
    // Zero-copy byte transport (engine `Bytes` datapath)
    // ------------------------------------------------------------------

    /// Blocking zero-copy send of an owned [`bytes::Bytes`] payload:
    /// delegates straight to the engine's `send_bytes`, which moves the
    /// refcounted buffer onto the wire without copying a single payload
    /// byte (the engine's `bytes_copied` statistic does not move on this
    /// path — pinned by the copy-accounting suite).
    fn send_bytes(&self, data: bytes::Bytes, dest: i32, tag: i32) -> MpiResult<()> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Send[bytes]");
        let mut engine = comm.env.engine.lock();
        engine.send_bytes(comm.handle, dest, tag, data, SendMode::Standard)?;
        Ok(())
    }

    /// Nonblocking zero-copy send of an owned [`bytes::Bytes`] payload
    /// (see [`send_bytes`](Communicator::send_bytes)). The payload is
    /// owned by the engine from the moment of the call, so the returned
    /// handle carries no buffer borrow.
    fn isend_bytes(
        &self,
        data: bytes::Bytes,
        dest: i32,
        tag: i32,
    ) -> MpiResult<TypedRequest<'static>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Isend[bytes]");
        let mut engine = comm.env.engine.lock();
        let copied_before = engine.stats().bytes_copied;
        let id = engine.isend_bytes(comm.handle, dest, tag, data, SendMode::Standard)?;
        debug_assert_eq!(
            engine.stats().bytes_copied,
            copied_before,
            "zero-copy send path must not copy payload bytes"
        );
        drop(engine);
        Ok(TypedRequest::new(Request::send(Arc::clone(&comm.env), id)))
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Synchronize every rank (classic `Barrier`).
    fn barrier(&self) -> MpiResult<()> {
        self.as_intracomm().barrier()
    }

    /// Broadcast the root's slice contents to every rank (classic
    /// `Bcast`). Every rank passes a buffer of the same length.
    fn broadcast<T: BufferElement>(&self, buf: &mut [T], root: usize) -> MpiResult<()> {
        let count = buf.len();
        self.as_intracomm()
            .bcast(buf, 0, count, &T::datatype(), root)
    }

    /// Element-wise reduction of `send` into the root's `recv` (classic
    /// `Reduce`). Non-root ranks still pass a `recv` slice of the same
    /// length; it is left untouched. (Named `reduce_into` because the
    /// classic 8-argument `Reduce` is an inherent method of [`Intracomm`]
    /// and inherent names win method resolution over trait names.)
    fn reduce_into<T: BufferElement>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: impl Borrow<Op>,
        root: usize,
    ) -> MpiResult<()> {
        self.as_intracomm().reduce(
            send,
            0,
            recv,
            0,
            send.len(),
            &T::datatype(),
            op.borrow(),
            root,
        )
    }

    /// Element-wise reduction delivered to every rank (classic
    /// `Allreduce`): `world.all_reduce(&buf, &mut out, Op::sum())`.
    fn all_reduce<T: BufferElement>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: impl Borrow<Op>,
    ) -> MpiResult<()> {
        self.as_intracomm()
            .allreduce(send, 0, recv, 0, send.len(), &T::datatype(), op.borrow())
    }

    /// Inclusive prefix reduction (classic `Scan`).
    fn scan_into<T: BufferElement>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: impl Borrow<Op>,
    ) -> MpiResult<()> {
        self.as_intracomm()
            .scan(send, 0, recv, 0, send.len(), &T::datatype(), op.borrow())
    }

    /// Gather every rank's `send` slice to the root (classic `Gather`).
    /// The root's `recv` holds `size * send.len()` elements in rank
    /// order; non-root ranks may pass an empty slice.
    fn gather_into<T: BufferElement>(
        &self,
        send: &[T],
        recv: &mut [T],
        root: usize,
    ) -> MpiResult<()> {
        self.as_intracomm().gather(
            send,
            0,
            send.len(),
            &T::datatype(),
            recv,
            0,
            send.len(),
            &T::datatype(),
            root,
        )
    }

    /// Gather every rank's `send` slice to every rank (classic
    /// `Allgather`). `recv` holds `size * send.len()` elements.
    fn all_gather<T: BufferElement>(&self, send: &[T], recv: &mut [T]) -> MpiResult<()> {
        self.as_intracomm().allgather(
            send,
            0,
            send.len(),
            &T::datatype(),
            recv,
            0,
            send.len(),
            &T::datatype(),
        )
    }

    /// Scatter equal chunks of the root's `send` slice (classic
    /// `Scatter`): each rank receives `recv.len()` elements, so the
    /// root's `send` holds `size * recv.len()`; non-root ranks may pass
    /// an empty `send`.
    fn scatter_from<T: BufferElement>(
        &self,
        send: &[T],
        recv: &mut [T],
        root: usize,
    ) -> MpiResult<()> {
        let count = recv.len();
        self.as_intracomm().scatter(
            send,
            0,
            count,
            &T::datatype(),
            recv,
            0,
            count,
            &T::datatype(),
            root,
        )
    }

    /// Total exchange (classic `Alltoall`): every rank sends
    /// `send.len() / size` elements to each peer and receives the same
    /// amount from each, so `send` and `recv` both hold `size * chunk`
    /// elements.
    fn all_to_all<T: BufferElement>(&self, send: &[T], recv: &mut [T]) -> MpiResult<()> {
        // Read the size directly from the engine rather than through
        // `self.size()`: the latter would count an extra `Comm.Size` JNI
        // crossing that the classic `alltoall` call site does not make,
        // skewing the wrapper-overhead statistics the paper measures.
        let comm = self.as_comm();
        let size = comm.env.engine.lock().comm_size(comm.handle)?;
        if size == 0 || !send.len().is_multiple_of(size) {
            return Err(MPIException::new(
                ErrorClass::Count,
                format!(
                    "all_to_all: send length {} is not a multiple of the communicator size {size}",
                    send.len()
                ),
            ));
        }
        let chunk = send.len() / size;
        self.as_intracomm().alltoall(
            send,
            0,
            chunk,
            &T::datatype(),
            recv,
            0,
            chunk,
            &T::datatype(),
        )
    }

    // ------------------------------------------------------------------
    // Nonblocking collectives (schedule-driven; see `mpi_native::coll::nb`)
    // ------------------------------------------------------------------
    //
    // Each `i*` method starts the collective's schedule and returns a
    // futures-style [`TypedRequest`]: poll it with
    // [`test`](TypedRequest::test), block with
    // [`wait`](TypedRequest::wait), or batch it — heterogeneously, mixed
    // with `isend`/`irecv_into` point-to-point handles — through
    // [`TypedRequest::wait_all`]. Progress happens inside `test`/`wait`
    // calls (and inside any blocking engine entry point), so interleave
    // occasional `test()` calls with computation to overlap the two —
    // the `icollectives` benchmark measures exactly that. Every rank of
    // the communicator must start the same collectives in the same
    // order (the standard's nonblocking-collective rule); results are
    // byte-identical to the blocking twins, which are themselves
    // `start + wait` over the same schedules.

    /// Nonblocking barrier (`MPI_Ibarrier`): the returned request
    /// completes once every rank has entered the barrier.
    fn ibarrier(&self) -> MpiResult<TypedRequest<'static>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ibarrier");
        let id = comm.env.engine.lock().ibarrier(comm.handle)?;
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            None,
        )))
    }

    /// Nonblocking broadcast (`MPI_Ibcast`): the root's slice contents
    /// are captured at call time; every rank's `buf` holds them on
    /// completion. Every rank passes a buffer of the same length.
    fn ibroadcast<'buf, T: BufferElement>(
        &self,
        buf: &'buf mut [T],
        root: usize,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ibcast");
        let mut engine = comm.env.engine.lock();
        let payload = if engine.comm_rank(comm.handle)? == root {
            slice_to_bytes(buf)
        } else {
            Vec::new()
        };
        let id = engine.ibcast(comm.handle, root, payload)?;
        drop(engine);
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(buf, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking reduction to the root (`MPI_Ireduce`); non-root
    /// ranks' `recv` slices are left untouched.
    fn ireduce_into<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
        op: impl Borrow<Op>,
        root: usize,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ireduce");
        let payload = slice_to_bytes(send);
        let id = comm.env.engine.lock().ireduce(
            comm.handle,
            root,
            &payload,
            T::KIND,
            send.len(),
            op.borrow().engine_op(),
        )?;
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking allreduce (`MPI_Iallreduce`): `recv` holds the full
    /// reduction on every rank when the request completes.
    fn iall_reduce<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
        op: impl Borrow<Op>,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Iallreduce");
        let payload = slice_to_bytes(send);
        let id = comm.env.engine.lock().iallreduce(
            comm.handle,
            &payload,
            T::KIND,
            send.len(),
            op.borrow().engine_op(),
        )?;
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking gather (`MPI_Igather`): the root's `recv` holds
    /// `size * send.len()` elements in rank order on completion;
    /// non-root ranks may pass an empty `recv`.
    fn igather_into<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
        root: usize,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Igather");
        let payload = slice_to_bytes(send);
        let id = comm
            .env
            .engine
            .lock()
            .igather(comm.handle, root, &payload)?;
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking allgather (`MPI_Iallgather`): `recv` holds
    /// `size * send.len()` elements in rank order on every rank.
    fn iall_gather<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Iallgather");
        let payload = slice_to_bytes(send);
        let id = comm.env.engine.lock().iallgather(comm.handle, &payload)?;
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking scatter (`MPI_Iscatter`): each rank receives
    /// `recv.len()` elements, so the root's `send` holds
    /// `size * recv.len()` (captured at call time); non-root ranks may
    /// pass an empty `send`.
    fn iscatter_from<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
        root: usize,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Iscatter");
        let mut engine = comm.env.engine.lock();
        let size = engine.comm_size(comm.handle)?;
        let chunks: Option<Vec<Vec<u8>>> = if engine.comm_rank(comm.handle)? == root {
            if send.len() != size * recv.len() {
                return Err(MPIException::new(
                    ErrorClass::Count,
                    format!(
                        "iscatter_from: root send length {} is not size ({size}) * recv length ({})",
                        send.len(),
                        recv.len()
                    ),
                ));
            }
            let chunk_bytes = recv.len() * T::width();
            let payload = slice_to_bytes(send);
            Some(
                (0..size)
                    .map(|r| payload[r * chunk_bytes..(r + 1) * chunk_bytes].to_vec())
                    .collect(),
            )
        } else {
            None
        };
        let id = engine.iscatter(comm.handle, root, chunks.as_deref())?;
        drop(engine);
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking total exchange (`MPI_Ialltoall`): every rank sends
    /// `send.len() / size` elements to each peer; `recv` (same length as
    /// `send`) holds the chunks received from every rank, in rank order,
    /// on completion.
    fn iall_to_all<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ialltoall");
        let mut engine = comm.env.engine.lock();
        let size = engine.comm_size(comm.handle)?;
        if size == 0 || !send.len().is_multiple_of(size) {
            return Err(MPIException::new(
                ErrorClass::Count,
                format!(
                    "iall_to_all: send length {} is not a multiple of the communicator size {size}",
                    send.len()
                ),
            ));
        }
        let chunk_bytes = send.len() / size * T::width();
        let payload = slice_to_bytes(send);
        let chunks: Vec<Vec<u8>> = (0..size)
            .map(|r| payload[r * chunk_bytes..(r + 1) * chunk_bytes].to_vec())
            .collect();
        let id = engine.ialltoall(comm.handle, &chunks)?;
        drop(engine);
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking reduce-scatter (`MPI_Ireduce_scatter` with equal
    /// counts, i.e. `MPI_Reduce_scatter_block`): the `size * recv.len()`
    /// elements of `send` are reduced element-wise across all ranks and
    /// rank `i` receives the `i`-th `recv.len()`-element block. Every
    /// rank must pass the same `recv` length.
    fn ireduce_scatter_into<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
        op: impl Borrow<Op>,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ireduce_scatter");
        let mut engine = comm.env.engine.lock();
        let size = engine.comm_size(comm.handle)?;
        if send.len() != size * recv.len() {
            return Err(MPIException::new(
                ErrorClass::Count,
                format!(
                    "ireduce_scatter_into: send length {} is not size ({size}) * recv length ({})",
                    send.len(),
                    recv.len()
                ),
            ));
        }
        let counts = vec![recv.len(); size];
        let payload = slice_to_bytes(send);
        let id = engine.ireduce_scatter(
            comm.handle,
            &payload,
            &counts,
            T::KIND,
            op.borrow().engine_op(),
        )?;
        drop(engine);
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    /// Nonblocking inclusive prefix reduction (`MPI_Iscan`): `recv`
    /// holds the fold of ranks `0..=self` on completion.
    fn iscan_into<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
        op: impl Borrow<Op>,
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Iscan");
        let payload = slice_to_bytes(send);
        let id = comm.env.engine.lock().iscan(
            comm.handle,
            &payload,
            T::KIND,
            send.len(),
            op.borrow().engine_op(),
        )?;
        let unpack = Box::new(move |bytes: &[u8]| {
            bytes_to_elements(recv, 0, bytes);
            Ok(())
        });
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack),
        )))
    }

    // ------------------------------------------------------------------
    // Persistent operations (MPI_Send_init / MPI_Start and the MPI-4
    // persistent collectives; see the crate docs' persistent column)
    // ------------------------------------------------------------------
    //
    // Each `*_init` builds a reusable [`PersistentRequest`]: the
    // one-time costs — validation, algorithm selection, and (for
    // collectives) schedule construction over pinned tag windows — are
    // paid here, and every `start()`/`wait()` iteration replays the
    // operation against the captured buffers. The collective `*_init`
    // calls are themselves collective: every rank must call them in the
    // same order relative to other collectives on the communicator, and
    // successive `start()`s must also line up rank-for-rank (the
    // standard's persistent-collective rule).

    /// Persistent send (`MPI_Send_init`): each
    /// [`start()`](PersistentRequest::start) re-marshals the captured
    /// slice's *current* contents and sends them to `dest` — the C
    /// idiom of reusing the buffer by address. Since the slice stays
    /// immutably borrowed by the handle, interior mutation between
    /// starts needs a `Cell`-style element or a fresh handle.
    fn send_init<'buf, T: BufferElement>(
        &self,
        buf: &'buf [T],
        dest: i32,
        tag: i32,
    ) -> MpiResult<PersistentRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Send_init");
        let payload = slice_to_bytes(buf);
        let id = comm.env.engine.lock().send_init(
            comm.handle,
            dest,
            tag,
            &payload,
            SendMode::Standard,
        )?;
        Ok(PersistentRequest::p2p_send(
            Arc::clone(&comm.env),
            id,
            Box::new(move || Ok(slice_to_bytes(buf))),
        ))
    }

    /// Persistent receive (`MPI_Recv_init`): each completed iteration
    /// fills the captured slice. The slice stays mutably borrowed by
    /// the handle until it is dropped or freed.
    fn recv_init<'buf, T: BufferElement>(
        &self,
        buf: &'buf mut [T],
        source: i32,
        tag: i32,
    ) -> MpiResult<PersistentRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Recv_init");
        let max_len = buf.len() * T::width();
        let id = comm
            .env
            .engine
            .lock()
            .recv_init(comm.handle, source, tag, Some(max_len))?;
        Ok(PersistentRequest::p2p_recv(
            Arc::clone(&comm.env),
            id,
            Box::new(move |wire: &[u8]| {
                bytes_to_elements(buf, 0, wire);
                Ok(())
            }),
        ))
    }

    /// Persistent barrier (`MPI_Barrier_init`): each `start()`/`wait()`
    /// pair is one barrier over the pre-built schedule.
    fn barrier_init(&self) -> MpiResult<PersistentRequest<'static>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Barrier_init");
        let id = comm.env.engine.lock().barrier_init(comm.handle)?;
        Ok(PersistentRequest::coll(
            Arc::clone(&comm.env),
            id,
            Box::new(NoCollBufs),
        ))
    }

    /// Persistent broadcast (`MPI_Bcast_init`): each iteration sends
    /// the root's current `buf` contents to every rank's `buf`. Every
    /// rank passes a buffer of the same length, fixed at init time.
    fn broadcast_init<'buf, T: BufferElement>(
        &self,
        buf: &'buf mut [T],
        root: usize,
    ) -> MpiResult<PersistentRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Bcast_init");
        let mut engine = comm.env.engine.lock();
        let is_root = engine.comm_rank(comm.handle)? == root;
        let id = engine.bcast_init(comm.handle, root, buf.len() * T::width())?;
        drop(engine);
        Ok(PersistentRequest::coll(
            Arc::clone(&comm.env),
            id,
            Box::new(BcastCollBufs { buf, is_root }),
        ))
    }

    /// Persistent reduction to `root` (`MPI_Reduce_init`); each
    /// iteration reduces the captured `send` slices into the root's
    /// `recv` (non-root `recv` slices are left untouched).
    fn reduce_init_into<'buf, T: BufferElement>(
        &self,
        send: &'buf [T],
        recv: &'buf mut [T],
        op: impl Borrow<Op>,
        root: usize,
    ) -> MpiResult<PersistentRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Reduce_init");
        let id = comm.env.engine.lock().reduce_init(
            comm.handle,
            root,
            T::KIND,
            send.len(),
            op.borrow().engine_op(),
        )?;
        Ok(PersistentRequest::coll(
            Arc::clone(&comm.env),
            id,
            Box::new(SendRecvCollBufs { send, recv }),
        ))
    }

    /// Persistent allreduce (`MPI_Allreduce_init`): each iteration
    /// reduces the captured `send` slices and delivers the result to
    /// every rank's `recv`.
    fn all_reduce_init<'buf, T: BufferElement>(
        &self,
        send: &'buf [T],
        recv: &'buf mut [T],
        op: impl Borrow<Op>,
    ) -> MpiResult<PersistentRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Allreduce_init");
        let id = comm.env.engine.lock().allreduce_init(
            comm.handle,
            T::KIND,
            send.len(),
            op.borrow().engine_op(),
        )?;
        Ok(PersistentRequest::coll(
            Arc::clone(&comm.env),
            id,
            Box::new(SendRecvCollBufs { send, recv }),
        ))
    }

    /// Persistent allgather (`MPI_Allgather_init`): each iteration
    /// gathers the captured `send` slices into every rank's `recv`
    /// (`size * send.len()` elements, rank order).
    fn all_gather_init<'buf, T: BufferElement>(
        &self,
        send: &'buf [T],
        recv: &'buf mut [T],
    ) -> MpiResult<PersistentRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Allgather_init");
        let id = comm.env.engine.lock().allgather_init(comm.handle)?;
        Ok(PersistentRequest::coll(
            Arc::clone(&comm.env),
            id,
            Box::new(SendRecvCollBufs { send, recv }),
        ))
    }

    // ------------------------------------------------------------------
    // Node topology (multi-fabric jobs; see mpi_transport::NodeMap)
    // ------------------------------------------------------------------

    /// Which node of the fabric's placement `rank` (a rank in this
    /// communicator) lives on. Single-fabric jobs report node 0 for
    /// everyone.
    fn node_of(&self, rank: usize) -> MpiResult<usize> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Node_of");
        Ok(comm.env.engine.lock().node_of(comm.handle, rank)?)
    }

    /// This process's node.
    fn my_node(&self) -> MpiResult<usize> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.My_node");
        let engine = comm.env.engine.lock();
        Ok(engine.my_node())
    }

    /// The leader of this process's node within the communicator: its
    /// lowest-ranked member on the same node (the rank that carries the
    /// inter-node traffic of the hierarchical collectives).
    fn node_leader(&self) -> MpiResult<usize> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Node_leader");
        Ok(comm.env.engine.lock().node_leader(comm.handle)?)
    }

    /// Split the communicator into per-node sub-communicators (the
    /// `MPI_Comm_split_type(COMM_TYPE_SHARED)` shape): every member
    /// receives the communicator of its own node, members ordered by
    /// their rank here. Collective over the communicator.
    fn split_by_node(&self) -> MpiResult<Intracomm> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Split_node");
        let handle = comm.env.engine.lock().comm_split_node(comm.handle)?;
        Ok(Intracomm::new(Arc::clone(&comm.env), handle))
    }

    // ------------------------------------------------------------------
    // Neighborhood collectives (virtual topologies; MPI-3 §7.6 shape)
    // ------------------------------------------------------------------
    //
    // Defined for communicators carrying a cartesian or graph topology
    // (created with `create_cart` / `create_graph`); calling them on a
    // topology-less communicator errors with `ErrorClass::Topology`.
    // The neighbor list and its slot order come from
    // [`topo_neighbors`](Communicator::topo_neighbors): a cartesian
    // communicator has `2 * ndims` slots (`[src₀, dst₀, src₁, dst₁, …]`
    // in `cart_shift(d, 1)` order, `PROC_NULL` off non-periodic edges),
    // a graph communicator its adjacency list in edge order.

    /// This rank's neighbor list in slot order (`PROC_NULL` entries
    /// included) — the shape of every `neighbor_*` exchange.
    fn topo_neighbors(&self) -> MpiResult<Vec<i32>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Comm.Topo_neighbors");
        Ok(comm.env.engine.lock().topo_neighbors(comm.handle)?)
    }

    /// Sparse all-gather (`MPI_Neighbor_allgather`): send `send` to
    /// every neighbor, receive one part per neighbor slot. Every rank
    /// must pass the same `send` length; `PROC_NULL` slots yield empty
    /// parts.
    fn neighbor_all_gather<T: BufferElement>(&self, send: &[T]) -> MpiResult<Vec<Vec<T>>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Neighbor_allgather");
        let payload = slice_to_bytes(send);
        let parts = comm
            .env
            .engine
            .lock()
            .neighbor_allgather(comm.handle, &payload)?;
        Ok(parts_to_elements(parts))
    }

    /// Sparse total exchange (`MPI_Neighbor_alltoall`): send the `j`-th
    /// of `degree` equal chunks of `send` to neighbor `j`, receive one
    /// part per neighbor slot (`PROC_NULL` slots yield empty parts).
    fn neighbor_all_to_all<T: BufferElement>(&self, send: &[T]) -> MpiResult<Vec<Vec<T>>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Neighbor_alltoall");
        let mut engine = comm.env.engine.lock();
        let degree = engine.topo_neighbors(comm.handle)?.len();
        let chunks = split_neighbor_chunks(send, degree, "neighbor_all_to_all")?;
        let parts = engine.neighbor_alltoall(comm.handle, &chunks)?;
        Ok(parts_to_elements(parts))
    }

    /// Nonblocking sparse all-gather (`MPI_Ineighbor_allgather`):
    /// `recv` holds `degree * send.len()` elements, one block per
    /// neighbor slot in slot order, on completion. Blocks of
    /// `PROC_NULL` slots are left untouched.
    fn ineighbor_all_gather<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ineighbor_allgather");
        let mut engine = comm.env.engine.lock();
        let neighbors = engine.topo_neighbors(comm.handle)?;
        if recv.len() != neighbors.len() * send.len() {
            return Err(MPIException::new(
                ErrorClass::Count,
                format!(
                    "ineighbor_all_gather: recv length {} is not degree ({}) * send length ({})",
                    recv.len(),
                    neighbors.len(),
                    send.len()
                ),
            ));
        }
        let payload = slice_to_bytes(send);
        let id = engine.ineighbor_allgather(comm.handle, &payload)?;
        drop(engine);
        let chunk = send.len();
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack_neighbor_parts(neighbors, chunk, recv)),
        )))
    }

    /// Nonblocking sparse total exchange (`MPI_Ineighbor_alltoall`):
    /// `recv` (same length as `send`) holds one block per neighbor slot
    /// on completion; blocks of `PROC_NULL` slots are left untouched.
    fn ineighbor_all_to_all<'buf, T: BufferElement>(
        &self,
        send: &[T],
        recv: &'buf mut [T],
    ) -> MpiResult<TypedRequest<'buf>> {
        let comm = self.as_comm();
        comm.env.jni.enter("Intracomm.Ineighbor_alltoall");
        let mut engine = comm.env.engine.lock();
        let neighbors = engine.topo_neighbors(comm.handle)?;
        let degree = neighbors.len();
        if recv.len() != send.len() {
            return Err(MPIException::new(
                ErrorClass::Count,
                format!(
                    "ineighbor_all_to_all: recv length {} differs from send length {}",
                    recv.len(),
                    send.len()
                ),
            ));
        }
        let chunks = split_neighbor_chunks(send, degree, "ineighbor_all_to_all")?;
        let id = engine.ineighbor_alltoall(comm.handle, &chunks)?;
        drop(engine);
        let chunk = send.len().checked_div(degree).unwrap_or(0);
        Ok(TypedRequest::new(Request::coll(
            Arc::clone(&comm.env),
            id,
            Some(unpack_neighbor_parts(neighbors, chunk, recv)),
        )))
    }

    // ------------------------------------------------------------------
    // One-sided communication (RMA windows; see crate::window)
    // ------------------------------------------------------------------

    /// Expose `local` for one-sided access by the other ranks
    /// (`MPI_Win_create`, collective). The returned [`Window`] borrows
    /// the slice for its whole lifetime; see the [`crate::window`] docs
    /// for the epoch model and memory rules.
    fn win_create<'buf, T: BufferElement>(
        &self,
        local: &'buf mut [T],
    ) -> MpiResult<Window<'buf, T>> {
        let comm = self.as_comm();
        Window::create(Arc::clone(&comm.env), comm.handle, local)
    }

    // ------------------------------------------------------------------
    // Object transport (paper §2.2, without the MPI.OBJECT plumbing)
    // ------------------------------------------------------------------

    /// Serialize `obj` and send it to `dest` (classic
    /// `Send(..., MPI.OBJECT, ...)` with a one-element array).
    fn send_obj<T: Serializable>(&self, obj: &T, dest: i32, tag: i32) -> MpiResult<()> {
        self.as_comm()
            .send_object(std::slice::from_ref(obj), 0, 1, dest, tag)
    }

    /// Receive one serialized object from `source` (classic
    /// `Recv(..., MPI.OBJECT, ...)`), returning it by value with the
    /// [`Status`].
    fn recv_obj<T: Serializable>(&self, source: i32, tag: i32) -> MpiResult<(T, Status)> {
        let (mut objects, status) = self.as_comm().recv_object::<T>(1, source, tag)?;
        match objects.pop() {
            Some(obj) => Ok((obj, status)),
            None => Err(MPIException::new(
                ErrorClass::Truncate,
                "recv_obj: peer sent an empty object message",
            )),
        }
    }

    /// Broadcast one serialized object from the root to every rank
    /// (object counterpart of [`broadcast`](Communicator::broadcast)).
    fn broadcast_obj<T: Serializable + Clone>(&self, obj: &T, root: usize) -> MpiResult<T> {
        let mut objects = self
            .as_intracomm()
            .bcast_object(std::slice::from_ref(obj), root)?;
        objects.pop().ok_or_else(|| {
            MPIException::new(
                ErrorClass::Truncate,
                "broadcast_obj: root sent an empty object message",
            )
        })
    }
}

/// Buffer capture for persistent collectives without local buffers
/// (barrier).
struct NoCollBufs;

impl PersistentCollBufs for NoCollBufs {
    fn pack(&mut self) -> Vec<u8> {
        Vec::new()
    }
    fn unpack(&mut self, _bytes: &[u8]) -> MpiResult<()> {
        Ok(())
    }
}

/// Buffer capture for a persistent broadcast: one slice is both the
/// root's input and every rank's output.
struct BcastCollBufs<'buf, T: BufferElement> {
    buf: &'buf mut [T],
    is_root: bool,
}

impl<T: BufferElement> PersistentCollBufs for BcastCollBufs<'_, T> {
    fn pack(&mut self) -> Vec<u8> {
        if self.is_root {
            slice_to_bytes(self.buf)
        } else {
            Vec::new()
        }
    }
    fn unpack(&mut self, bytes: &[u8]) -> MpiResult<()> {
        bytes_to_elements(self.buf, 0, bytes);
        Ok(())
    }
}

/// Buffer capture for the send/recv-shaped persistent collectives
/// (reduce, allreduce, allgather).
struct SendRecvCollBufs<'buf, T: BufferElement> {
    send: &'buf [T],
    recv: &'buf mut [T],
}

impl<T: BufferElement> PersistentCollBufs for SendRecvCollBufs<'_, T> {
    fn pack(&mut self) -> Vec<u8> {
        slice_to_bytes(self.send)
    }
    fn unpack(&mut self, bytes: &[u8]) -> MpiResult<()> {
        bytes_to_elements(self.recv, 0, bytes);
        Ok(())
    }
}

/// Convert the engine's per-neighbor byte parts to typed vectors.
fn parts_to_elements<T: BufferElement>(parts: Vec<Vec<u8>>) -> Vec<Vec<T>> {
    parts
        .into_iter()
        .map(|bytes| {
            let mut out = vec![T::default(); bytes.len() / T::width()];
            bytes_to_elements(&mut out, 0, &bytes);
            out
        })
        .collect()
}

/// Split `send` into `degree` equal per-neighbor chunks for the
/// neighbor total exchanges.
fn split_neighbor_chunks<T: BufferElement>(
    send: &[T],
    degree: usize,
    what: &str,
) -> MpiResult<Vec<Vec<u8>>> {
    if degree == 0 {
        if send.is_empty() {
            return Ok(Vec::new());
        }
        return Err(MPIException::new(
            ErrorClass::Count,
            format!("{what}: non-empty send on a degree-0 topology"),
        ));
    }
    if !send.len().is_multiple_of(degree) {
        return Err(MPIException::new(
            ErrorClass::Count,
            format!(
                "{what}: send length {} is not a multiple of the topology degree {degree}",
                send.len()
            ),
        ));
    }
    let chunk_bytes = send.len() / degree * T::width();
    let payload = slice_to_bytes(send);
    Ok((0..degree)
        .map(|j| payload[j * chunk_bytes..(j + 1) * chunk_bytes].to_vec())
        .collect())
}

/// Completion closure attached to an `ineighbor_*` request; consumes
/// the collective's outcome bytes when the request is waited on.
type NeighborUnpack<'buf> = Box<dyn FnOnce(&[u8]) -> MpiResult<()> + Send + 'buf>;

/// Unpack closure for the `ineighbor_*` requests: the collective's
/// outcome parts arrive flattened with `PROC_NULL` slots contributing
/// nothing, so the captured neighbor list maps the present chunks back
/// to their slots (absent slots leave `recv` untouched).
fn unpack_neighbor_parts<'buf, T: BufferElement>(
    neighbors: Vec<i32>,
    chunk: usize,
    recv: &'buf mut [T],
) -> NeighborUnpack<'buf> {
    Box::new(move |bytes: &[u8]| {
        let chunk_bytes = chunk * T::width();
        let mut cursor = 0;
        for (slot, &peer) in neighbors.iter().enumerate() {
            if peer == PROC_NULL {
                continue;
            }
            let end = (cursor + chunk_bytes).min(bytes.len());
            bytes_to_elements(
                &mut recv[slot * chunk..(slot + 1) * chunk],
                0,
                &bytes[cursor..end],
            );
            cursor = end;
        }
        Ok(())
    })
}

/// Cartesian-topology extensions of the idiomatic surface, implemented
/// by [`Cartcomm`](crate::Cartcomm).
///
/// The method names avoid the classic inherent names (`shift`,
/// `coords`), so importing this trait does not shadow the Java-style
/// surface (see the [module docs](crate::rs) on shadowing).
///
/// ```
/// use mpijava::rs::{CartCommunicator as _, Communicator as _};
/// use mpijava::MpiRuntime;
///
/// MpiRuntime::new(4).run(|mpi| {
///     // Periodic ring of 4.
///     let ring = mpi.comm_world().create_cart(&[4], &[true], false)?.unwrap();
///     let rank = ring.rank()?;
///     let (src, dst) = ring.cart_shift(0, 1)?;
///     assert_eq!(src as usize, (rank + 3) % 4);
///     assert_eq!(dst as usize, (rank + 1) % 4);
///     assert_eq!(ring.cart_coords(rank)?, ring.my_coords()?);
///     mpi.finalize()
/// }).unwrap();
/// ```
pub trait CartCommunicator: Communicator {
    /// Source and destination ranks of a shift along `dimension` by
    /// `disp` (classic `Shift`, tuple-returning): messages arrive from
    /// the first rank and go to the second; both are
    /// [`PROC_NULL`](crate::MPI::PROC_NULL) off a non-periodic edge.
    fn cart_shift(&self, dimension: usize, disp: i64) -> MpiResult<(i32, i32)>;

    /// Grid coordinates of `rank` (classic `Coords`).
    fn cart_coords(&self, rank: usize) -> MpiResult<Vec<usize>>;

    /// This process's own grid coordinates.
    fn my_coords(&self) -> MpiResult<Vec<usize>>;
}

impl CartCommunicator for crate::Cartcomm {
    fn cart_shift(&self, dimension: usize, disp: i64) -> MpiResult<(i32, i32)> {
        let parms = self.shift(dimension, disp)?;
        Ok((parms.rank_source, parms.rank_dest))
    }

    fn cart_coords(&self, rank: usize) -> MpiResult<Vec<usize>> {
        self.coords(rank)
    }

    fn my_coords(&self) -> MpiResult<Vec<usize>> {
        Ok(self.get()?.coords)
    }
}

/// Graph-topology extensions of the idiomatic surface, implemented by
/// [`Graphcomm`](crate::Graphcomm). Named to avoid the classic
/// inherent `neighbours(rank)`.
///
/// ```
/// use mpijava::rs::{Communicator as _, GraphCommunicator as _};
/// use mpijava::MpiRuntime;
///
/// MpiRuntime::new(4).run(|mpi| {
///     // Ring of 4 in the MPI-1 index/edges encoding.
///     let index = [2, 4, 6, 8];
///     let edges = [1, 3, 0, 2, 1, 3, 2, 0];
///     let graph = mpi.comm_world().create_graph(&index, &edges, false)?.unwrap();
///     let rank = graph.rank()?;
///     let mut got = graph.neighbors()?;
///     got.sort();
///     let mut expected = vec![(rank + 1) % 4, (rank + 3) % 4];
///     expected.sort();
///     assert_eq!(got, expected);
///     mpi.finalize()
/// }).unwrap();
/// ```
pub trait GraphCommunicator: Communicator {
    /// This process's adjacency list, in edge order (the slot order of
    /// the neighborhood collectives).
    fn neighbors(&self) -> MpiResult<Vec<usize>>;
}

impl GraphCommunicator for crate::Graphcomm {
    fn neighbors(&self) -> MpiResult<Vec<usize>> {
        let rank = self.as_comm().rank()?;
        self.neighbours(rank)
    }
}
