//! # mpi-native
//!
//! A from-scratch MPI-1.1 message-passing engine, playing the role of the
//! *native MPI library* (MPICH / WMPI) that the mpiJava wrapper of
//! Baker, Carpenter, Fox, Ko & Lim (IPPS 1999) binds to through JNI.
//!
//! The engine is deliberately structured like a small MPICH: a *device*
//! (from the `mpi-transport` crate) moves byte frames between ranks, and
//! this crate layers on top of it
//!
//! * message **matching** (context id, source, tag, wildcards,
//!   non-overtaking order) and the eager / rendezvous protocols
//!   ([`p2p`]),
//! * blocking, non-blocking and **persistent requests** with the full
//!   `Wait*`/`Test*` families ([`request`]),
//! * **groups** and their set algebra ([`group`]),
//! * **communicators** with private context ids, `dup`/`split`/`create`
//!   ([`comm`]),
//! * **collective operations** — barrier, broadcast, gather(v), scatter(v),
//!   allgather(v), alltoall(v), reduce, allreduce, reduce-scatter, scan —
//!   built over point-to-point on a separate collective context as a
//!   pluggable algorithm subsystem ([`coll`]): linear (paper-faithful
//!   baseline), binomial tree, recursive doubling and ring wire patterns
//!   behind a size-aware selector ([`coll::tuning`]) with an
//!   `MPIJAVA_COLL_ALG` override for ablations,
//! * **reduction operations** including `MAXLOC`/`MINLOC` and user
//!   functions ([`ops`]),
//! * **derived datatypes** and pack/unpack ([`datatype`], [`pack`]),
//! * **virtual topologies** (cartesian and graph, [`topology`]),
//! * environment services — `Wtime`, processor name, attributes, abort
//!   ([`mod@env`]),
//! * an MPI_T-flavored **observability subsystem** ([`trace`]): per-rank
//!   event tracing into a preallocated ring, a named-variable metrics
//!   registry ([`Engine::metrics_snapshot`]), and finalize-time JSONL
//!   dumps that the benchmark crate's `tracemerge` tool folds into one
//!   Chrome-traceable cross-rank timeline (`MPIJAVA_TRACE` grammar in
//!   [`mod@env`]),
//! * a [`universe::Universe`] launcher that plays `mpirun`, creating one
//!   engine per rank over a shared fabric and running them on threads.
//!
//! Every rank owns exactly one [`Engine`]; all MPI calls of that rank go
//! through it. The object-oriented binding of the paper is implemented in
//! the `mpijava` crate on top of this engine.

pub mod checkpoint;
pub mod coll;
pub mod comm;
pub mod datatype;
pub mod env;
pub mod error;
pub mod failure;
pub mod group;
pub mod ops;
pub mod p2p;
pub mod pack;
pub mod request;
pub mod rma;
pub mod topology;
pub mod trace;
pub mod types;
pub mod universe;

pub use coll::nb::{CollOutcome, CollRequestId, PersistentCollId};
pub use coll::{CollAlgorithm, CollOp, COLL_ALG_ENV};
pub use comm::{CommHandle, COMM_SELF, COMM_WORLD};
pub use datatype::DatatypeDef;
pub use error::{ErrorClass, MpiError, Result};
pub use group::{CompareResult, Group};
pub use mpi_transport::NodeMap;
pub use ops::{Op, PredefinedOp};
pub use request::RequestId;
pub use rma::{RmaGetId, WinHandle};
pub use trace::{
    EventKind, EventPhase, HistSnapshot, MetricsSnapshot, Pvar, PvarClass, TraceConfig, TraceEvent,
    TraceMode, WaitClass,
};
pub use types::{PrimitiveKind, SendMode, StatusInfo, ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED};
pub use universe::{Universe, UniverseConfig};

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use mpi_transport::Endpoint;

use comm::CommRecord;
use p2p::{PendingRendezvous, PostedRecv, RdvAssembly, UnexpectedMsg};
use request::RequestState;

/// Counters the engine keeps about its own activity. The benchmark harness
/// reads these to report, e.g., how many messages went eager vs rendezvous.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages sent with the eager protocol.
    pub eager_sends: u64,
    /// Messages sent with the rendezvous protocol.
    pub rendezvous_sends: u64,
    /// Rendezvous payloads that were pipelined as multiple segment frames
    /// (see [`Engine::set_segment_bytes`]).
    pub segmented_sends: u64,
    /// Messages that were matched from the unexpected queue.
    pub unexpected_hits: u64,
    /// Messages that matched an already-posted receive on arrival.
    pub posted_hits: u64,
    /// Total payload bytes sent (excluding engine control traffic).
    pub bytes_sent: u64,
    /// Total payload bytes received.
    pub bytes_received: u64,
    /// Payload bytes the engine datapath physically copied (send-side
    /// staging, segmented reassembly, [`Engine::recv_into`] delivery —
    /// the copy inventory in [`p2p`]'s module docs lists every site).
    /// The copy-accounting regression suite pins eager sends, rendezvous
    /// sends and `recv_into` at exactly one payload copy each through
    /// this counter.
    pub bytes_copied: u64,
    /// One-sided `put`/`accumulate` operations issued from this rank
    /// (origin-side count; see [`rma`]).
    pub rma_puts: u64,
    /// One-sided `get` operations issued from this rank (origin side).
    pub rma_gets: u64,
    /// Payload bytes moved by one-sided operations issued from this rank
    /// (put/accumulate payloads out, get replies requested in).
    pub rma_bytes: u64,
    /// RMA synchronization epochs this rank has completed: one per
    /// returned [`Engine::win_fence`], plus one per completed
    /// [`Engine::win_unlock`] passive-target epoch.
    pub epochs: u64,
    /// Collective calls served from the schedule cache (template
    /// instantiated instead of rebuilt — persistent `start()`s count
    /// here too; see the schedule-caching section of [`coll::nb`]).
    pub sched_cache_hits: u64,
    /// Cacheable collective calls that had to build their schedule from
    /// scratch (cold key, or the tag-window sequence wrapped
    /// mid-allocation).
    pub sched_cache_misses: u64,
    /// Progress-poll iterations executed by a background progress thread
    /// on this engine's behalf (see the `MPIJAVA_PROGRESS` grammar in
    /// [`mod@env`]).
    pub progress_thread_polls: u64,
}

/// Per-rank MPI engine. See the crate documentation.
pub struct Engine {
    pub(crate) endpoint: Box<dyn Endpoint>,
    pub(crate) world_rank: usize,
    pub(crate) world_size: usize,
    /// Rank → node placement of the fabric (flat unless the job was
    /// launched with a [`NodeMap`]). Drives the topology queries and the
    /// hierarchical collective tuning.
    pub(crate) nodes: NodeMap,
    pub(crate) comms: Vec<Option<CommRecord>>,
    pub(crate) context_to_comm: HashMap<u32, usize>,
    pub(crate) next_context: u32,
    pub(crate) requests: HashMap<u64, RequestState>,
    pub(crate) next_request: u64,
    /// Posted receives, FIFO per communicator context (see [`p2p`]'s
    /// matching notes: wildcards never cross contexts, so the split is
    /// semantics-preserving and kills the O(all posted) arrival scan).
    pub(crate) posted: HashMap<u32, VecDeque<PostedRecv>>,
    /// Unexpected arrivals, FIFO per communicator context.
    pub(crate) unexpected: HashMap<u32, VecDeque<UnexpectedMsg>>,
    /// Context ids of freed communicators. Context ids are never reused,
    /// so frames still in flight for these contexts are dropped on
    /// arrival instead of being parked unmatchably forever (8 bytes per
    /// freed communicator, vs. an unbounded payload queue). An *unknown*
    /// context is NOT sufficient to drop: a peer that finished
    /// constructing a communicator may legally send on it before this
    /// rank installs the record, and those frames must park.
    pub(crate) freed_contexts: std::collections::HashSet<u32>,
    pub(crate) pending_rendezvous: HashMap<u64, PendingRendezvous>,
    /// Receiver-side state of granted rendezvous transfers, keyed by
    /// `(sender world rank, sender token)` — tokens are only unique per
    /// sender, and concurrent collectives legally have several senders
    /// at the same token count.
    pub(crate) awaiting_rendezvous_data: HashMap<(u32, u64), RdvAssembly>,
    pub(crate) next_token: u64,
    pub(crate) eager_threshold: usize,
    /// Segment size for pipelined large-message transfers (`None`
    /// disables segmentation; see [`Engine::set_segment_bytes`]).
    pub(crate) segment_bytes: Option<usize>,
    /// Recycled payload staging buffers (see the copy inventory in
    /// [`p2p`]'s module docs).
    pub(crate) send_pool: Vec<Vec<u8>>,
    pub(crate) attached_buffer: Option<p2p::BsendBuffer>,
    pub(crate) start_time: Instant,
    pub(crate) processor_name: String,
    pub(crate) finalized: bool,
    pub(crate) aborted: bool,
    pub(crate) stats: EngineStats,
    pub(crate) keyvals: HashMap<i32, Vec<u8>>,
    pub(crate) forced_coll_alg: Option<coll::CollAlgorithm>,
    /// In-flight nonblocking collective schedules (see [`coll::nb`]).
    pub(crate) coll_requests: HashMap<u64, coll::nb::NbColl>,
    /// Per-communicator collective sequence counters for tag-window
    /// allocation (see [`coll::nb`]'s tag-window accounting).
    pub(crate) coll_seqs: HashMap<comm::CommHandle, u64>,
    /// Per-communicator *causal* collective sequence: bumped exactly once
    /// per collective start. Collectives are called in the same order on
    /// every member, so `(comm context, this counter)` is a cross-rank
    /// join key for the `coll`/`coll_round` trace brackets — unlike
    /// [`Engine::coll_seqs`] (several bumps per op for tag windows) or
    /// the local schedule id (a per-rank request number).
    pub(crate) coll_causal_seqs: HashMap<comm::CommHandle, u64>,
    /// Built-schedule templates, keyed per rank on the local call shape
    /// (see the schedule-caching section of [`coll::nb`]).
    pub(crate) sched_cache: HashMap<coll::nb::cache::SchedKey, coll::nb::cache::SchedTemplate>,
    /// Persistent collective operations created by the `*_init` entry
    /// points, keyed by [`coll::nb::cache::PersistentCollId`] value.
    pub(crate) persistent_colls: HashMap<u64, coll::nb::cache::PersistentColl>,
    /// Open one-sided memory windows, keyed by [`rma::WinHandle`] value
    /// (see [`rma`]'s epoch model and tag accounting).
    pub(crate) windows: HashMap<u64, rma::WindowState>,
    pub(crate) next_win: u64,
    /// Per-communicator window sequence counters: `win_create` is
    /// collective, so symmetric calls yield identical sequence numbers on
    /// every rank, which is what makes the per-window RMA tag channels
    /// line up without communication.
    pub(crate) win_seqs: HashMap<comm::CommHandle, u64>,
    /// World ranks declared dead (lease expiry or fault-plan kill).
    /// Membership is permanent; see [`mod@failure`].
    pub(crate) failed_ranks: std::collections::HashSet<usize>,
    /// Throttle clock for [`mod@failure`]'s transport liveness polls.
    pub(crate) last_failure_poll: Option<Instant>,
    /// Observability state: mode flags, the preallocated event ring and
    /// the latency histograms (see [`trace`]).
    pub(crate) tracer: trace::Tracer,
    /// Programmatic trace-dump directory; takes precedence over
    /// `MPIJAVA_TRACE_DIR` and the spool-root fallback (see
    /// [`Engine::dump_trace`]).
    trace_dir: Option<std::path::PathBuf>,
    /// Wall-clock anchor for the engine's monotonic event timestamps,
    /// written into every trace dump's meta line so `tracemerge` can
    /// align per-rank timelines.
    start_unix_ns: u128,
    /// The (op, algorithm) pair the most recent [`coll`] `choose()` call
    /// picked, parked here for the `coll` trace event `coll_start` emits
    /// (`choose` runs under `&self`, hence the `Cell`).
    pub(crate) last_choice: std::cell::Cell<Option<(coll::CollOp, coll::CollAlgorithm)>>,
}

/// Default payload size (bytes) above which standard-mode sends switch from
/// the eager to the rendezvous protocol. Matches the order of magnitude at
/// which the paper's SM-mode curves converge (Figure 5: offsets vanish
/// around 256 KB).
pub const DEFAULT_EAGER_THRESHOLD: usize = 128 * 1024;

impl Engine {
    /// Build an engine for one rank over the given endpoint.
    ///
    /// This is `MPI_Init` for a single rank; most users go through
    /// [`Universe::run`](universe::Universe::run), which builds the fabric
    /// and one engine per rank.
    pub fn new(endpoint: Box<dyn Endpoint>) -> Engine {
        let world_rank = endpoint.rank();
        let world_size = endpoint.size();
        let nodes = endpoint.node_map().clone();
        let mut engine = Engine {
            endpoint,
            world_rank,
            world_size,
            nodes,
            comms: Vec::new(),
            context_to_comm: HashMap::new(),
            next_context: 0,
            requests: HashMap::new(),
            next_request: 1,
            posted: HashMap::new(),
            unexpected: HashMap::new(),
            freed_contexts: std::collections::HashSet::new(),
            pending_rendezvous: HashMap::new(),
            awaiting_rendezvous_data: HashMap::new(),
            next_token: 1,
            eager_threshold: env::bytes_from_env(env::EAGER_LIMIT_ENV)
                .unwrap_or(DEFAULT_EAGER_THRESHOLD),
            // Same `> 0` normalization as `set_segment_bytes`: an
            // explicit 0 means "segmentation off", never Some(0).
            segment_bytes: env::bytes_from_env(env::SEGMENT_BYTES_ENV).filter(|&b| b > 0),
            send_pool: Vec::new(),
            attached_buffer: None,
            start_time: Instant::now(),
            processor_name: format!("rank-{world_rank}.mpijava-rs.local"),
            finalized: false,
            aborted: false,
            stats: EngineStats::default(),
            keyvals: HashMap::new(),
            forced_coll_alg: coll::CollAlgorithm::from_env(),
            coll_requests: HashMap::new(),
            coll_seqs: HashMap::new(),
            coll_causal_seqs: HashMap::new(),
            sched_cache: HashMap::new(),
            persistent_colls: HashMap::new(),
            windows: HashMap::new(),
            next_win: 1,
            win_seqs: HashMap::new(),
            failed_ranks: std::collections::HashSet::new(),
            last_failure_poll: None,
            tracer: trace::Tracer::new(env::trace_from_env().unwrap_or_default()),
            trace_dir: env::trace_dir_from_env(),
            start_unix_ns: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
            last_choice: std::cell::Cell::new(None),
        };
        engine.install_builtin_comms();
        engine
    }

    /// Override the eager/rendezvous switch-over point (bytes). Takes
    /// precedence over the `MPIJAVA_EAGER_LIMIT` environment override
    /// (see [`env::EAGER_LIMIT_ENV`]), which the engine read at
    /// construction time.
    pub fn set_eager_threshold(&mut self, bytes: usize) {
        self.eager_threshold = bytes;
    }

    /// Current eager/rendezvous switch-over point (bytes).
    pub fn eager_threshold(&self) -> usize {
        self.eager_threshold
    }

    /// Configure the segment size for pipelined large-message transfers:
    /// rendezvous payloads larger than `bytes` are shipped as a stream of
    /// zero-copy segment frames instead of one big frame, letting the
    /// receiver reassemble while later segments are still on the wire
    /// (and, through the pipelined broadcast of [`coll`], letting
    /// interior tree ranks forward segment *k* while receiving *k+1*).
    /// `None` disables segmentation (the default unless the
    /// `MPIJAVA_SEGMENT_BYTES` environment variable is set — see
    /// [`env::SEGMENT_BYTES_ENV`]).
    pub fn set_segment_bytes(&mut self, bytes: Option<usize>) {
        self.segment_bytes = bytes.filter(|&b| b > 0);
    }

    /// Current pipeline segment size, if segmentation is enabled.
    pub fn segment_bytes(&self) -> Option<usize> {
        self.segment_bytes
    }

    /// Pin (or with `None`, un-pin) the collective algorithm, overriding
    /// the size-aware tuning table of [`coll::tuning`] — the programmatic
    /// form of the `MPIJAVA_COLL_ALG` environment override.
    ///
    /// Collectives are cooperative, so the pin must be applied
    /// symmetrically on every rank of a communicator (the `Universe` /
    /// `MpiRuntime` launchers do this for you). A pinned algorithm that
    /// cannot implement a given operation falls back to the tuned choice;
    /// results are byte-identical either way.
    pub fn set_coll_algorithm(&mut self, alg: Option<coll::CollAlgorithm>) {
        self.forced_coll_alg = alg;
    }

    /// The pinned collective algorithm, if any (see
    /// [`set_coll_algorithm`](Engine::set_coll_algorithm)).
    pub fn coll_algorithm(&self) -> Option<coll::CollAlgorithm> {
        self.forced_coll_alg
    }

    /// This process's rank in `MPI_COMM_WORLD`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of processes in `MPI_COMM_WORLD`.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Rank → node placement of the fabric (flat unless the job was
    /// launched with a [`NodeMap`] / `MPIJAVA_NODES`).
    pub fn node_map(&self) -> &NodeMap {
        &self.nodes
    }

    /// The node this rank lives on.
    pub fn my_node(&self) -> usize {
        self.nodes.node_of(self.world_rank)
    }

    /// Activity counters (see [`EngineStats`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    // ---- observability (see the [`trace`] module) -------------------

    /// Reconfigure tracing, replacing any `MPIJAVA_TRACE` setting the
    /// engine read at construction. Rebuilds the event ring (preallocated
    /// for [`TraceMode::Events`], empty otherwise), so events and
    /// histograms recorded so far are discarded.
    pub fn set_trace(&mut self, config: trace::TraceConfig) {
        self.tracer = trace::Tracer::new(config);
    }

    /// The active trace configuration.
    pub fn trace_config(&self) -> trace::TraceConfig {
        self.tracer.config()
    }

    /// Set the directory trace dumps go to, overriding
    /// `MPIJAVA_TRACE_DIR` and the spool-root fallback (see
    /// [`Engine::dump_trace`]).
    pub fn set_trace_dir(&mut self, dir: impl Into<std::path::PathBuf>) {
        self.trace_dir = Some(dir.into());
    }

    /// The directory [`Engine::dump_trace`] would write to, if any:
    /// programmatic setting first, then `MPIJAVA_TRACE_DIR`, then
    /// `<spool root>/trace` when the fabric has a spool.
    pub fn trace_dir(&self) -> Option<std::path::PathBuf> {
        self.trace_dir
            .clone()
            .or_else(|| self.endpoint.spool_dir().map(|root| root.join("trace")))
    }

    /// The recorded events, oldest first (empty unless the mode is
    /// [`TraceMode::Events`]). Timestamps are nanoseconds on the
    /// engine's private monotonic clock.
    pub fn trace_events(&self) -> Vec<trace::TraceEvent> {
        self.tracer.events()
    }

    /// A point-in-time read of the metrics registry: every
    /// [`EngineStats`] counter as an `engine.*` pvar, queue-depth and
    /// in-flight gauges, per-peer `failure.*` liveness gauges when the
    /// device tracks leases, `transport.*` frame counters when the
    /// fabric was built with frame counters, and the latency histograms
    /// (recorded only when the mode is at least
    /// [`TraceMode::Counters`]).
    pub fn metrics_snapshot(&self) -> trace::MetricsSnapshot {
        use trace::{Pvar, PvarClass};
        let s = &self.stats;
        let counter = |name: &str, value: u64| Pvar {
            name: name.to_string(),
            class: PvarClass::Counter,
            value: value as i64,
        };
        let gauge = |name: String, value: i64| Pvar {
            name,
            class: PvarClass::Gauge,
            value,
        };
        let mut pvars = vec![
            counter("engine.eager_sends", s.eager_sends),
            counter("engine.rendezvous_sends", s.rendezvous_sends),
            counter("engine.segmented_sends", s.segmented_sends),
            counter("engine.unexpected_hits", s.unexpected_hits),
            counter("engine.posted_hits", s.posted_hits),
            counter("engine.bytes_sent", s.bytes_sent),
            counter("engine.bytes_received", s.bytes_received),
            counter("engine.bytes_copied", s.bytes_copied),
            counter("engine.rma_puts", s.rma_puts),
            counter("engine.rma_gets", s.rma_gets),
            counter("engine.rma_bytes", s.rma_bytes),
            counter("engine.epochs", s.epochs),
            counter("engine.sched_cache_hits", s.sched_cache_hits),
            counter("engine.sched_cache_misses", s.sched_cache_misses),
            counter("engine.progress_thread_polls", s.progress_thread_polls),
            counter("engine.trace.dropped", self.tracer.dropped()),
            gauge(
                "p2p.posted_depth".to_string(),
                self.posted.values().map(|q| q.len()).sum::<usize>() as i64,
            ),
            gauge(
                "p2p.unexpected_depth".to_string(),
                self.unexpected.values().map(|q| q.len()).sum::<usize>() as i64,
            ),
            gauge(
                "coll.outstanding".to_string(),
                self.coll_outstanding() as i64,
            ),
            gauge("rma.windows_open".to_string(), self.windows.len() as i64),
        ];
        for peer in self.endpoint.peer_liveness() {
            let prefix = format!("failure.peer{}", peer.rank);
            if let Some(age) = peer.heartbeat_age {
                pvars.push(gauge(
                    format!("{prefix}.heartbeat_age_ms"),
                    trace::millis_i64(age),
                ));
            }
            pvars.push(gauge(
                format!("{prefix}.lease_ms"),
                trace::millis_i64(peer.lease),
            ));
            pvars.push(gauge(format!("{prefix}.dead"), peer.dead as i64));
        }
        if let Some(f) = self.endpoint.frame_stats() {
            pvars.push(counter("transport.frames_sent", f.frames_sent));
            pvars.push(counter("transport.frames_received", f.frames_received));
            pvars.push(counter("transport.bytes_sent", f.bytes_sent));
            pvars.push(counter("transport.bytes_received", f.bytes_received));
        }
        let mut histograms = vec![
            self.tracer.p2p_latency.snapshot("p2p.latency"),
            self.tracer.coll_round.snapshot("coll.round_duration"),
        ];
        for class in trace::WaitClass::ALL {
            let h = self.tracer.wait_hist(class);
            pvars.push(counter(
                &format!("engine.wait.{}_count", class.label()),
                h.count(),
            ));
            pvars.push(counter(
                &format!("engine.wait.{}_ns", class.label()),
                h.total_ns(),
            ));
            histograms.push(h.snapshot(&format!("wait.{}", class.label())));
        }
        trace::MetricsSnapshot {
            rank: self.world_rank,
            pvars,
            histograms,
        }
    }

    /// Reset the trace ring and the latency histograms. [`EngineStats`]
    /// counters are cumulative and are not touched.
    pub fn metrics_reset(&mut self) {
        self.tracer.reset();
    }

    /// Dump the recorded events as JSONL into the resolved trace
    /// directory (see [`Engine::trace_dir`]), one file per rank named
    /// `trace-rank<r>.jsonl`. Returns the written path, or `None` when
    /// the mode is not [`TraceMode::Events`] or no directory is
    /// configured. Runs automatically from [`Engine::finalize`].
    pub fn dump_trace(&self) -> Result<Option<std::path::PathBuf>> {
        if !self.tracer.events_on() {
            return Ok(None);
        }
        match self.trace_dir() {
            Some(dir) => self.dump_trace_to(dir).map(Some),
            None => Ok(None),
        }
    }

    /// Dump the recorded events as JSONL into `dir` (created if needed),
    /// regardless of whether a trace directory is configured. This is
    /// how a rank that will never reach [`Engine::finalize`] — e.g. one
    /// about to die in a fault drill — preserves its timeline.
    pub fn dump_trace_to(&self, dir: impl Into<std::path::PathBuf>) -> Result<std::path::PathBuf> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            error::MpiError::new(
                ErrorClass::Other,
                format!("creating trace dir {}: {e}", dir.display()),
            )
        })?;
        let path = dir.join(format!("trace-rank{:05}.jsonl", self.world_rank));
        let meta = trace::DumpMeta {
            rank: self.world_rank,
            size: self.world_size,
            device: self.endpoint.kind().label().to_string(),
            start_unix_ns: self.start_unix_ns,
        };
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path).map_err(|e| {
            error::MpiError::new(
                ErrorClass::Other,
                format!("creating {}: {e}", path.display()),
            )
        })?);
        self.tracer.write_jsonl(&mut file, &meta).map_err(|e| {
            error::MpiError::new(
                ErrorClass::Other,
                format!("writing {}: {e}", path.display()),
            )
        })?;
        use std::io::Write as _;
        file.flush().map_err(|e| {
            error::MpiError::new(
                ErrorClass::Other,
                format!("flushing {}: {e}", path.display()),
            )
        })?;
        Ok(path)
    }

    /// Nanoseconds on the engine's private monotonic clock (the same
    /// clock event timestamps use).
    #[inline]
    pub(crate) fn clock_ns(&self) -> u64 {
        self.start_time.elapsed().as_nanos() as u64
    }

    /// Record a trace event stamped now. One branch when events are off
    /// — the hot-path cost the `MPIJAVA_TRACE=off` overhead gate pins.
    #[inline]
    pub(crate) fn emit(
        &mut self,
        kind: trace::EventKind,
        phase: trace::EventPhase,
        a: i64,
        b: i64,
        c: i64,
    ) {
        self.emit_full(kind, phase, a, b, c, 0, 0);
    }

    /// [`Engine::emit`] with the causal-stamp slots (`d`/`e`) — tokens
    /// on p2p intervals, `(ctx, cseq)` on collective brackets.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_full(
        &mut self,
        kind: trace::EventKind,
        phase: trace::EventPhase,
        a: i64,
        b: i64,
        c: i64,
        d: i64,
        e: i64,
    ) {
        if self.tracer.events_on() {
            let ts = self.clock_ns();
            self.tracer.record(ts, kind, phase, a, b, c, d, e);
        }
    }

    /// Record a trace event with a caller-supplied timestamp (for sites
    /// that already read the clock for a histogram sample).
    #[inline]
    pub(crate) fn emit_at(
        &mut self,
        ts_ns: u64,
        kind: trace::EventKind,
        phase: trace::EventPhase,
        a: i64,
        b: i64,
        c: i64,
    ) {
        self.emit_at_full(ts_ns, kind, phase, a, b, c, 0, 0);
    }

    /// [`Engine::emit_at`] with the causal-stamp slots (`d`/`e`).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_at_full(
        &mut self,
        ts_ns: u64,
        kind: trace::EventKind,
        phase: trace::EventPhase,
        a: i64,
        b: i64,
        c: i64,
        d: i64,
        e: i64,
    ) {
        if self.tracer.events_on() {
            self.tracer.record(ts_ns, kind, phase, a, b, c, d, e);
        }
    }

    /// Record a payload copy a binding layer performed on the engine's
    /// behalf — the delivery copy of a zero-copy receive completed
    /// outside the engine (e.g. unpacking a [`p2p`] completion `Bytes`
    /// into a typed user buffer) — keeping `bytes_copied` a faithful
    /// whole-datapath count.
    pub fn note_payload_copy(&mut self, len: usize) {
        self.stats.bytes_copied += len as u64;
    }

    /// Hand a spent completion payload back for reuse: if this was the
    /// last reference to an un-sliced transport buffer, its allocation
    /// feeds the send-staging pool (no copy either way).
    pub fn recycle_payload(&mut self, data: bytes::Bytes) {
        self.recycle(data);
    }

    /// True once [`Engine::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// `MPI_Finalize`: no further communication is allowed afterwards.
    ///
    /// The engine checks that no receive is still posted and no rendezvous
    /// is still outstanding, mirroring the standard's requirement that all
    /// pending communication is completed before finalizing.
    ///
    /// After a rank failure (or an abort) the usual leak checks would
    /// refuse forever — a survivor's outstanding operations toward the
    /// dead rank can never complete — so this path instead tears them
    /// down and finalizes cleanly (see [`mod@failure`]); requests left
    /// behind report the failure on a late `wait` instead of hanging.
    pub fn finalize(&mut self) -> Result<()> {
        if self.finalized {
            return error::err(ErrorClass::NotInitialized, "finalize called twice");
        }
        if !self.failed_ranks.is_empty() || self.aborted {
            self.abort_outstanding();
            self.autodump_trace();
            self.finalized = true;
            return Ok(());
        }
        if self.rma_open_epoch() {
            return error::err(
                ErrorClass::Other,
                "finalize called with an un-synced RMA epoch",
            );
        }
        if !self.windows.is_empty() {
            return error::err(ErrorClass::Other, "finalize called with open RMA windows");
        }
        if self.posted.values().any(|q| !q.is_empty())
            || !self.pending_rendezvous.is_empty()
            || self.coll_outstanding() > 0
        {
            return error::err(
                ErrorClass::Other,
                "finalize called with outstanding communication",
            );
        }
        if self.persistent_colls_active() > 0 || self.persistent_p2p_active() > 0 {
            return error::err(
                ErrorClass::Other,
                "finalize called with started persistent operations (wait them first)",
            );
        }
        self.autodump_trace();
        self.finalized = true;
        Ok(())
    }

    /// Finalize-time trace dump: best-effort, never turns a clean
    /// shutdown into an error (a rank dying in a fault drill still wants
    /// the survivors' dumps to land).
    fn autodump_trace(&self) {
        if let Err(e) = self.dump_trace() {
            eprintln!(
                "warning: rank {} could not dump its trace: {e}",
                self.world_rank
            );
        }
    }

    /// True while background-completable work is in flight on this
    /// engine: an outstanding collective schedule, an un-acked
    /// rendezvous handshake, or an open RMA epoch. A background
    /// progress thread polls *hot* (yielding, microsecond cadence)
    /// while this holds — the due-time link models release frames at
    /// their arrival instants, and a sleeping poller would add its
    /// whole sleep quantum of latency to every serial hop of a
    /// schedule — and falls back to sleeping between polls otherwise.
    pub fn background_work_pending(&self) -> bool {
        self.coll_outstanding() > 0 || !self.pending_rendezvous.is_empty() || self.rma_open_epoch()
    }

    /// Record one background progress-thread poll against this engine
    /// (drives [`EngineStats::progress_thread_polls`]). Every 1024th
    /// poll drops a `progress_burst` instant into the trace so merged
    /// timelines show where the background thread was spinning.
    pub fn note_progress_thread_poll(&mut self) {
        self.stats.progress_thread_polls += 1;
        if self.stats.progress_thread_polls.is_multiple_of(1024) {
            let total = self.stats.progress_thread_polls as i64;
            self.emit(
                trace::EventKind::ProgressBurst,
                trace::EventPhase::Instant,
                total,
                1024,
                0,
            );
        }
    }

    pub(crate) fn check_live(&self) -> Result<()> {
        if self.finalized {
            return error::err(ErrorClass::NotInitialized, "MPI already finalized");
        }
        if self.aborted {
            return error::err(ErrorClass::Aborted, "job aborted");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_transport::{DeviceKind, Fabric, FabricConfig};

    fn pair() -> (Engine, Engine) {
        let mut eps = Fabric::build(FabricConfig::new(2, DeviceKind::ShmFast))
            .unwrap()
            .into_endpoints();
        let b = Engine::new(eps.pop().unwrap());
        let a = Engine::new(eps.pop().unwrap());
        (a, b)
    }

    #[test]
    fn engine_reports_rank_and_size() {
        let (a, b) = pair();
        assert_eq!(a.world_rank(), 0);
        assert_eq!(b.world_rank(), 1);
        assert_eq!(a.world_size(), 2);
        assert_eq!(b.world_size(), 2);
    }

    #[test]
    fn finalize_is_idempotent_error() {
        let (mut a, _b) = pair();
        a.finalize().unwrap();
        assert!(a.is_finalized());
        assert!(a.finalize().is_err());
        assert!(a.check_live().is_err());
    }

    #[test]
    fn eager_threshold_is_configurable() {
        let (mut a, _b) = pair();
        assert_eq!(a.eager_threshold(), DEFAULT_EAGER_THRESHOLD);
        a.set_eager_threshold(1024);
        assert_eq!(a.eager_threshold(), 1024);
    }
}
