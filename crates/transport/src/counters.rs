//! Frame-level traffic counters for any fabric.
//!
//! The engine's observability registry (see the `mpi-native` `trace`
//! module) wants to report transport traffic — frames and payload bytes
//! actually pushed through the device, *below* the engine's own protocol
//! accounting — without teaching every device to count. Enabling
//! [`FabricConfig::with_frame_counters`](crate::FabricConfig::with_frame_counters)
//! wraps every endpoint of the fabric in a [`CountingEndpoint`], the
//! same wrapping pattern the fault injector uses. The wrapper goes
//! *outermost*, so it observes exactly what the engine observes: a frame
//! swallowed by a fault-plan drop still counts as sent (it left the
//! engine), and a killed rank's refused sends do not.
//!
//! The counters are relaxed atomics read through
//! [`Endpoint::frame_stats`]; overhead is four fetch-adds per frame.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::error::Result;
use crate::frame::Frame;
use crate::nodemap::NodeMap;
use crate::{DeviceKind, Endpoint, PeerLiveness};

/// A point-in-time read of one endpoint's frame traffic (see
/// [`Endpoint::frame_stats`]). Counts cover every frame kind — payload,
/// protocol control, RMA — because the wrapper sits below the engine's
/// protocol layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Frames this endpoint pushed into the fabric.
    pub frames_sent: u64,
    /// Frames this endpoint took out of its inbox.
    pub frames_received: u64,
    /// Payload bytes across the sent frames.
    pub bytes_sent: u64,
    /// Payload bytes across the received frames.
    pub bytes_received: u64,
}

/// An [`Endpoint`] wrapper counting frames and payload bytes. Built by
/// [`Fabric::build`](crate::Fabric::build) when the config enables frame
/// counters; delegates everything else to the wrapped device.
pub struct CountingEndpoint {
    inner: Box<dyn Endpoint>,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl CountingEndpoint {
    /// Wrap every endpoint of a fabric.
    pub(crate) fn wrap(endpoints: Vec<Box<dyn Endpoint>>) -> Vec<Box<dyn Endpoint>> {
        endpoints
            .into_iter()
            .map(|inner| {
                Box::new(CountingEndpoint {
                    inner,
                    frames_sent: AtomicU64::new(0),
                    frames_received: AtomicU64::new(0),
                    bytes_sent: AtomicU64::new(0),
                    bytes_received: AtomicU64::new(0),
                }) as Box<dyn Endpoint>
            })
            .collect()
    }

    fn note_received(&self, frame: &Frame) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
    }
}

impl Endpoint for CountingEndpoint {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, frame: Frame) -> Result<()> {
        let len = frame.payload.len() as u64;
        self.inner.send(frame)?;
        // Count only frames the device accepted: a killed rank's refused
        // sends never entered the fabric.
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Result<Frame> {
        let frame = self.inner.recv()?;
        self.note_received(&frame);
        Ok(frame)
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        let got = self.inner.try_recv()?;
        if let Some(frame) = &got {
            self.note_received(frame);
        }
        Ok(got)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>> {
        let got = self.inner.recv_timeout(timeout)?;
        if let Some(frame) = &got {
            self.note_received(frame);
        }
        Ok(got)
    }

    fn kind(&self) -> DeviceKind {
        self.inner.kind()
    }

    fn node_map(&self) -> &NodeMap {
        self.inner.node_map()
    }

    fn poll_failures(&self) -> Vec<usize> {
        self.inner.poll_failures()
    }

    fn spool_dir(&self) -> Option<&std::path::Path> {
        self.inner.spool_dir()
    }

    fn peer_liveness(&self) -> Vec<PeerLiveness> {
        self.inner.peer_liveness()
    }

    fn frame_stats(&self) -> Option<FrameStats> {
        Some(FrameStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameHeader, FrameKind};
    use crate::{Fabric, FabricConfig, FaultPlan};
    use bytes::Bytes;

    fn frame(src: usize, dst: usize, payload: &[u8]) -> Frame {
        Frame::new(
            FrameHeader {
                kind: FrameKind::Eager,
                src: src as u32,
                dst: dst as u32,
                tag: 1,
                context: 0,
                token: 0,
                msg_len: payload.len() as u64,
            },
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn counters_track_frames_and_bytes() {
        let config = FabricConfig::new(2, DeviceKind::ShmFast).with_frame_counters(true);
        let eps = Fabric::build(config).unwrap().into_endpoints();
        eps[0].send(frame(0, 1, b"hello")).unwrap();
        eps[0].send(frame(0, 1, b"world!")).unwrap();
        let _ = eps[1].recv().unwrap();
        assert!(eps[1].try_recv().unwrap().is_some());

        let s0 = eps[0].frame_stats().unwrap();
        assert_eq!(s0.frames_sent, 2);
        assert_eq!(s0.bytes_sent, 11);
        assert_eq!(s0.frames_received, 0);
        let s1 = eps[1].frame_stats().unwrap();
        assert_eq!(s1.frames_received, 2);
        assert_eq!(s1.bytes_received, 11);
    }

    #[test]
    fn plain_fabrics_report_no_frame_stats() {
        let eps = Fabric::build(FabricConfig::new(2, DeviceKind::ShmFast))
            .unwrap()
            .into_endpoints();
        assert!(eps[0].frame_stats().is_none());
    }

    #[test]
    fn counting_composes_with_fault_injection() {
        // Counting is outermost: the dropped frame still counts as sent
        // (it left the engine), the killed rank's refused send does not.
        let config = FabricConfig::new(2, DeviceKind::ShmFast)
            .with_faults(FaultPlan::parse("drop:0->1@1,kill:0@3").unwrap())
            .with_frame_counters(true);
        let eps = Fabric::build(config).unwrap().into_endpoints();
        eps[0].send(frame(0, 1, b"dropped")).unwrap();
        eps[0].send(frame(0, 1, b"ok")).unwrap();
        assert!(eps[0].send(frame(0, 1, b"refused")).is_err());
        let s0 = eps[0].frame_stats().unwrap();
        assert_eq!(s0.frames_sent, 2);
        // Only the undropped frame is deliverable.
        assert_eq!(&eps[1].recv().unwrap().payload[..], b"ok");
        assert!(eps[1].try_recv().unwrap().is_none());
        assert_eq!(eps[1].frame_stats().unwrap().frames_received, 1);
    }
}
