//! Collective operations (MPI-1.1 §4) as a pluggable algorithm subsystem
//! with schedule-driven nonblocking execution.
//!
//! The seed implemented every collective as linear fan-in/fan-out through
//! rank 0 — O(P) latency with all traffic serialized at the root. This
//! module keeps that wire pattern as the paper-faithful baseline
//! ([`linear`]) and adds three scalable patterns behind an explicit
//! selection layer:
//!
//! * [`tree`] — binomial trees for barrier / bcast / gather / scatter /
//!   reduce (O(log P) levels),
//! * [`rd`] — recursive doubling for barrier / allgather / allreduce on
//!   power-of-two communicators,
//! * [`ring`] — ring allgather / reduce-scatter / allreduce for large
//!   payloads (every link busy every round),
//! * [`pipeline`] — segmented pipelined (chain) bcast for huge payloads
//!   (interior ranks forward segment *k* while receiving *k+1*, so every
//!   link carries the payload exactly once; pin with
//!   `MPIJAVA_COLL_ALG=pipelined`),
//! * [`hier`] — leader-based hierarchical barrier / bcast / reduce /
//!   allreduce / allgather for multi-fabric jobs: intra-node traffic
//!   folds to the node leaders over the cheap fabric, the leaders run
//!   the flat tree/recursive-doubling schedules among themselves over
//!   the expensive link (auto-selected when the fabric's
//!   [`NodeMap`](mpi_transport::NodeMap) is non-trivial; pin with
//!   `MPIJAVA_COLL_ALG=hier`).
//!
//! Since the nonblocking-collectives work, every algorithm is expressed
//! as a round-based **schedule** (`nb::CollSchedule`) executed by an
//! incremental progress engine: `ibarrier` / `ibcast` / `igather` /
//! `iscatter` / `iallgather` / `ireduce` / `iallreduce` return a
//! [`nb::CollRequestId`] completed through [`Engine::coll_test`] /
//! [`Engine::coll_wait`], and the classic blocking collectives are thin
//! `start + wait` wrappers over the *same* schedules — the two paths
//! cannot diverge, and no per-algorithm blocking send/receive loops
//! remain. See [`nb`] for the schedule model, the progress semantics and
//! the tag-window accounting.
//!
//! [`tuning`] picks an algorithm from (operation, communicator size,
//! payload bytes, reduction-order policy, node topology); the choice can
//! be pinned with
//! [`CollAlgorithm`] via [`Engine::set_coll_algorithm`] or the
//! `MPIJAVA_COLL_ALG` environment variable ([`algorithm::COLL_ALG_ENV`]).
//! Whatever is selected, every algorithm produces byte-identical results
//! (the cross-algorithm equivalence suite in
//! `tests/coll_equivalence.rs` enforces it — including every
//! nonblocking collective against its blocking twin), which is why the
//! selection consults an [`OrderPolicy`] before re-associating a
//! reduction.
//!
//! ## Semantics every algorithm preserves
//!
//! * Reductions fold in rank order; non-commutative (but associative, as
//!   MPI requires) user operations see `(((r0 ∘ r1) ∘ …) ∘ rP-1)` up to
//!   re-association, and floating `SUM`/`PROD` — where re-association
//!   changes bits — always run the sequential linear fold.
//! * The `v` variants (per-rank lengths) work under every algorithm: the
//!   tree and recursive-doubling data movers carry explicit
//!   `(rank, payload)` framing, the ring derives the owner of each block
//!   from the round number.
//! * Single-rank communicators return immediately without touching the
//!   transport (no frames, no self-copies through the matching queues);
//!   their nonblocking requests are born complete.

pub mod algorithm;
pub mod hier;
pub mod linear;
pub mod nb;
pub mod neighborhood;
pub mod pipeline;
pub mod rd;
pub mod ring;
pub mod tree;
pub mod tuning;

pub use algorithm::{CollAlgorithm, COLL_ALG_ENV};
pub use nb::{CollOutcome, CollRequestId, PersistentCollId};
pub use tuning::{CollOp, OrderPolicy, TopoHint};

use nb::cache::{
    CacheLookup, OpKey, OpShape, PersistentColl, PersistentSpec, SchedKey, SchedTemplate,
};
use nb::{CollSchedule, Round, SlotId};

use crate::comm::CommHandle;
use crate::error::{err, ErrorClass, MpiError, Result};
use crate::ops::Op;
use crate::types::PrimitiveKind;
use crate::Engine;

/// Serialize `(rank, payload)` entries for the framed tree / recursive
/// doubling data movers: `u32 n`, then per entry `u32 rank`, `u64 len`,
/// payload bytes (all little-endian). Generic over the payload storage
/// so callers can frame borrowed chunks without copying them first.
pub(crate) fn frame_entries<B: AsRef<[u8]>>(entries: &[(u32, B)]) -> Vec<u8> {
    let total: usize = entries.iter().map(|(_, p)| 12 + p.as_ref().len()).sum();
    let mut wire = Vec::with_capacity(4 + total);
    wire.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (rank, payload) in entries {
        let payload = payload.as_ref();
        wire.extend_from_slice(&rank.to_le_bytes());
        wire.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        wire.extend_from_slice(payload);
    }
    wire
}

/// Inverse of [`frame_entries`], with bounds checking: a truncated or
/// corrupted frame (including an absurd declared count or a length that
/// would overflow) yields a malformed-frame error, never a panic or an
/// unbounded allocation.
pub(crate) fn unframe_entries(wire: &[u8]) -> Result<Vec<(u32, Vec<u8>)>> {
    let malformed = || MpiError::new(ErrorClass::Intern, "malformed collective frame");
    let field = |at: usize, len: usize| -> Result<&[u8]> {
        let end = at.checked_add(len).ok_or_else(malformed)?;
        wire.get(at..end).ok_or_else(malformed)
    };
    let n = u32::from_le_bytes(field(0, 4)?.try_into().unwrap()) as usize;
    // Each entry needs at least its 12-byte header, which bounds how many
    // the wire can really hold regardless of what the count claims.
    if n > wire.len() / 12 {
        return Err(malformed());
    }
    let mut entries = Vec::with_capacity(n);
    let mut cursor = 4usize;
    for _ in 0..n {
        let rank = u32::from_le_bytes(field(cursor, 4)?.try_into().unwrap());
        let len = u64::from_le_bytes(field(cursor + 4, 8)?.try_into().unwrap()) as usize;
        cursor += 12;
        entries.push((rank, field(cursor, len)?.to_vec()));
        cursor += len;
    }
    Ok(entries)
}

/// Turn framed `(rank, payload)` entries into the rank-ordered
/// one-buffer-per-rank shape the collective APIs return, verifying every
/// rank contributed exactly once.
pub(crate) fn entries_to_parts(entries: Vec<(u32, Vec<u8>)>, size: usize) -> Result<Vec<Vec<u8>>> {
    let mut parts: Vec<Option<Vec<u8>>> = vec![None; size];
    for (rank, payload) in entries {
        let slot = parts.get_mut(rank as usize).ok_or_else(|| {
            MpiError::new(ErrorClass::Intern, "collective frame rank out of range")
        })?;
        if slot.replace(payload).is_some() {
            return err(ErrorClass::Intern, "duplicate rank in collective frame");
        }
    }
    parts
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| MpiError::new(ErrorClass::Intern, "missing rank in collective frame"))
}

/// Append the finalize round that publishes slot `slot` as the
/// collective's `Buffer` outcome.
fn finalize_buffer(s: &mut CollSchedule, slot: SlotId) {
    s.push(Round::new().compute(move |ctx| {
        let buffer = ctx.take(slot)?;
        ctx.set_outcome(CollOutcome::Buffer(buffer));
        Ok(())
    }));
}

/// Append the finalize round that unframes slot `slot` into the
/// rank-ordered `Parts` outcome.
fn finalize_parts_from_frame(s: &mut CollSchedule, slot: SlotId, size: usize) {
    s.push(Round::new().compute(move |ctx| {
        let parts = entries_to_parts(unframe_entries(ctx.get(slot)?)?, size)?;
        ctx.set_outcome(CollOutcome::Parts(parts));
        Ok(())
    }));
}

impl Engine {
    fn validate_root(&self, comm: CommHandle, root: usize) -> Result<()> {
        let size = self.comm_size(comm)?;
        if root >= size {
            return err(
                ErrorClass::Root,
                format!("root {root} out of range for communicator of size {size}"),
            );
        }
        Ok(())
    }

    /// Select the algorithm for one dispatch. `bytes` must be a value
    /// every rank computes identically (0 for the payload-blind data
    /// movers — see the [`tuning`] module docs); likewise `topo`, which
    /// every rank derives from the same node map and member list.
    fn choose(
        &self,
        op: CollOp,
        size: usize,
        bytes: usize,
        policy: OrderPolicy,
        topo: TopoHint,
    ) -> CollAlgorithm {
        let alg = tuning::select(op, size, bytes, policy, topo, self.forced_coll_alg);
        // Remembered for the `coll` trace event the upcoming
        // `coll_start` emits — selection and schedule start are separate
        // layers, and threading (op, alg) through every schedule builder
        // just for observability would be noise.
        self.last_choice.set(Some((op, alg)));
        alg
    }

    /// The node-grouping of a communicator's members (see
    /// [`hier::CommTopology`]); identical on every member because it is
    /// derived from shared state (the fabric's node map and the member
    /// list) without communication.
    pub(crate) fn comm_topology(&self, comm: CommHandle) -> Result<hier::CommTopology> {
        Ok(hier::CommTopology::new(
            self.comm(comm)?.group.ranks(),
            &self.nodes,
        ))
    }

    /// The topology hint for one collective dispatch. Single-fabric
    /// jobs (the common case) skip the O(P) member grouping entirely;
    /// the full [`hier::CommTopology`] is only built on non-flat node
    /// maps — and rebuilt by the hier dispatch arm when it is actually
    /// selected, which only happens on such maps.
    fn topo_hint(&self, comm: CommHandle) -> Result<TopoHint> {
        if self.nodes.is_flat() {
            return Ok(TopoHint::FLAT);
        }
        Ok(self.comm_topology(comm)?.hint())
    }

    pub(crate) fn expect_buffer(outcome: CollOutcome) -> Result<Vec<u8>> {
        match outcome {
            CollOutcome::Buffer(b) => Ok(b),
            _ => err(ErrorClass::Intern, "collective outcome is not a buffer"),
        }
    }

    pub(crate) fn expect_parts(outcome: CollOutcome) -> Result<Vec<Vec<u8>>> {
        match outcome {
            CollOutcome::Parts(p) => Ok(p),
            _ => err(
                ErrorClass::Intern,
                "collective outcome is not per-rank parts",
            ),
        }
    }

    // ---------------------------------------------------------------------
    // Nonblocking entry points (validation, single-rank fast path,
    // schedule construction, start)
    // ---------------------------------------------------------------------

    /// `MPI_Ibarrier`: outcome [`CollOutcome::Done`].
    pub fn ibarrier(&mut self, comm: CommHandle) -> Result<CollRequestId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Done);
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let alg = self.choose(CollOp::Barrier, size, 0, OrderPolicy::Any, hint);
        let key = SchedKey {
            comm,
            alg,
            shape: OpShape::Barrier,
        };
        if let CacheLookup::Hit(s) = self.sched_cache_get(&key, Vec::new())? {
            return self.coll_start(comm, s);
        }
        let s = self.build_barrier(comm, rank, size, alg)?;
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    fn build_barrier(
        &mut self,
        comm: CommHandle,
        rank: usize,
        size: usize,
        alg: CollAlgorithm,
    ) -> Result<CollSchedule> {
        let mut s = CollSchedule::new();
        match alg {
            CollAlgorithm::Hierarchical => {
                let topo = self.comm_topology(comm)?;
                let w_in = self.sched_window(comm, &mut s);
                let w_lead = self.sched_window(comm, &mut s);
                let w_out = self.sched_window(comm, &mut s);
                hier::barrier(&mut s, w_in, w_lead, w_out, rank, &topo);
            }
            CollAlgorithm::RecursiveDoubling => {
                let win = self.sched_window(comm, &mut s);
                rd::barrier(&mut s, win, rank, size);
            }
            CollAlgorithm::BinomialTree => {
                let win = self.sched_window(comm, &mut s);
                tree::barrier(&mut s, win, rank, size);
            }
            _ => {
                let win = self.sched_window(comm, &mut s);
                linear::barrier(&mut s, win, rank, size);
            }
        }
        Ok(s)
    }

    /// `MPI_Ibcast`: `buf` is the payload on the root (ignored
    /// elsewhere); outcome [`CollOutcome::Buffer`] with the broadcast
    /// payload on every rank.
    pub fn ibcast(&mut self, comm: CommHandle, root: usize, buf: Vec<u8>) -> Result<CollRequestId> {
        self.check_live()?;
        self.validate_root(comm, root)?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Buffer(buf));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let alg = self.choose(CollOp::Bcast, size, 0, OrderPolicy::Any, hint);
        if alg == CollAlgorithm::Pipelined {
            // The segment chain is extended at run time from the payload
            // length: never templatable, so skip the cache entirely.
            let mut s = CollSchedule::new();
            let data = if rank == root {
                s.filled(buf)
            } else {
                s.empty()
            };
            let win = self.alloc_tag_window(comm);
            let seg = self
                .segment_bytes
                .unwrap_or(pipeline::DEFAULT_BCAST_SEGMENT_BYTES);
            pipeline::bcast(&mut s, win, rank, size, root, data, seg);
            finalize_buffer(&mut s, data);
            return self.coll_start(comm, s);
        }
        let key = SchedKey {
            comm,
            alg,
            shape: OpShape::Bcast { root },
        };
        let inputs = if rank == root { vec![buf] } else { Vec::new() };
        let buf = match self.sched_cache_get(&key, inputs)? {
            CacheLookup::Hit(s) => return self.coll_start(comm, s),
            CacheLookup::Miss(mut inputs) => inputs.pop().unwrap_or_default(),
        };
        let s = self.build_bcast(comm, rank, size, root, alg, buf)?;
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    /// Build the templatable broadcast schedules (everything but
    /// pipelined); `buf` is the root's payload, staged through an input
    /// slot so the schedule caches as a payload-free template.
    fn build_bcast(
        &mut self,
        comm: CommHandle,
        rank: usize,
        size: usize,
        root: usize,
        alg: CollAlgorithm,
        buf: Vec<u8>,
    ) -> Result<CollSchedule> {
        let mut s = CollSchedule::new();
        let data = if rank == root {
            s.input(buf)
        } else {
            s.empty()
        };
        match alg {
            CollAlgorithm::Hierarchical => {
                let topo = self.comm_topology(comm)?;
                let w_in = self.sched_window(comm, &mut s);
                let w_lead = self.sched_window(comm, &mut s);
                let w_out = self.sched_window(comm, &mut s);
                hier::bcast(&mut s, w_in, w_lead, w_out, rank, &topo, root, data);
            }
            CollAlgorithm::BinomialTree => {
                let win = self.sched_window(comm, &mut s);
                tree::bcast(&mut s, win, rank, size, root, data);
            }
            _ => {
                let win = self.sched_window(comm, &mut s);
                linear::bcast(&mut s, win, rank, size, root, data);
            }
        }
        finalize_buffer(&mut s, data);
        Ok(s)
    }

    /// `MPI_Igather` / `Igatherv`: outcome [`CollOutcome::Parts`] (rank
    /// order) on the root, [`CollOutcome::Done`] elsewhere.
    pub fn igather(&mut self, comm: CommHandle, root: usize, send: &[u8]) -> Result<CollRequestId> {
        self.check_live()?;
        self.validate_root(comm, root)?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Parts(vec![send.to_vec()]));
        }
        let rank = self.comm_rank(comm)?;
        let alg = self.choose(CollOp::Gather, size, 0, OrderPolicy::Any, TopoHint::FLAT);
        let key = SchedKey {
            comm,
            alg,
            shape: OpShape::Gather { root },
        };
        let own = match self.sched_cache_get(&key, vec![send.to_vec()])? {
            CacheLookup::Hit(s) => return self.coll_start(comm, s),
            CacheLookup::Miss(mut inputs) => inputs.pop().expect("one input"),
        };
        let s = self.build_gather(comm, rank, size, root, alg, own)?;
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    fn build_gather(
        &mut self,
        comm: CommHandle,
        rank: usize,
        size: usize,
        root: usize,
        alg: CollAlgorithm,
        payload: Vec<u8>,
    ) -> Result<CollSchedule> {
        let mut s = CollSchedule::new();
        let win = self.sched_window(comm, &mut s);
        let own = s.input(payload);
        let framed = match alg {
            CollAlgorithm::BinomialTree => tree::gather(&mut s, win, rank, size, root, own),
            _ => linear::gather(&mut s, win, rank, size, root, own),
        };
        if rank == root {
            finalize_parts_from_frame(&mut s, framed, size);
        }
        Ok(s)
    }

    /// `MPI_Iscatter` / `Iscatterv`: the root supplies one buffer per
    /// rank (`chunks`, rank order); outcome [`CollOutcome::Buffer`] with
    /// this rank's chunk.
    pub fn iscatter(
        &mut self,
        comm: CommHandle,
        root: usize,
        chunks: Option<&[Vec<u8>]>,
    ) -> Result<CollRequestId> {
        self.check_live()?;
        self.validate_root(comm, root)?;
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        if rank == root {
            let chunks = chunks.ok_or_else(|| {
                MpiError::new(ErrorClass::Buffer, "root must supply scatter chunks")
            })?;
            if chunks.len() != size {
                return err(
                    ErrorClass::Count,
                    format!("scatter needs {size} chunks, got {}", chunks.len()),
                );
            }
            if size == 1 {
                return self.coll_immediate(CollOutcome::Buffer(chunks[0].clone()));
            }
        }
        let mut s = CollSchedule::new();
        let win = self.alloc_tag_window(comm);
        let out = s.empty();
        match self.choose(CollOp::Scatter, size, 0, OrderPolicy::Any, TopoHint::FLAT) {
            CollAlgorithm::BinomialTree => {
                tree::scatter(&mut s, win, rank, size, root, chunks, out)
            }
            _ => {
                let dest_slots = chunks.map(|chunks| {
                    chunks
                        .iter()
                        .map(|chunk| s.filled(chunk.clone()))
                        .collect::<Vec<_>>()
                });
                linear::scatter(&mut s, win, rank, size, root, dest_slots, out);
            }
        }
        finalize_buffer(&mut s, out);
        self.coll_start(comm, s)
    }

    /// `MPI_Iallgather` / `Iallgatherv`: outcome [`CollOutcome::Parts`]
    /// (one buffer per rank, rank order) on every rank.
    pub fn iallgather(&mut self, comm: CommHandle, send: &[u8]) -> Result<CollRequestId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Parts(vec![send.to_vec()]));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let alg = self.choose(CollOp::Allgather, size, 0, OrderPolicy::Any, hint);
        let key = SchedKey {
            comm,
            alg,
            shape: OpShape::Allgather,
        };
        let own = match self.sched_cache_get(&key, vec![send.to_vec()])? {
            CacheLookup::Hit(s) => return self.coll_start(comm, s),
            CacheLookup::Miss(mut inputs) => inputs.pop().expect("one input"),
        };
        let s = self.build_allgather(comm, rank, size, alg, own)?;
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    fn build_allgather(
        &mut self,
        comm: CommHandle,
        rank: usize,
        size: usize,
        alg: CollAlgorithm,
        payload: Vec<u8>,
    ) -> Result<CollSchedule> {
        let mut s = CollSchedule::new();
        let own = s.input(payload);
        match alg {
            CollAlgorithm::Hierarchical => {
                let topo = self.comm_topology(comm)?;
                let w_in = self.sched_window(comm, &mut s);
                let w_lead_a = self.sched_window(comm, &mut s);
                let w_lead_b = self.sched_window(comm, &mut s);
                let w_out = self.sched_window(comm, &mut s);
                let framed =
                    hier::allgather(&mut s, w_in, w_lead_a, w_lead_b, w_out, rank, &topo, own);
                finalize_parts_from_frame(&mut s, framed, size);
            }
            CollAlgorithm::RecursiveDoubling => {
                let win = self.sched_window(comm, &mut s);
                let framed = rd::allgather(&mut s, win, rank, size, own);
                finalize_parts_from_frame(&mut s, framed, size);
            }
            CollAlgorithm::Ring => {
                let win = self.sched_window(comm, &mut s);
                let parts = ring::allgather(&mut s, win, rank, size, own);
                s.push(Round::new().compute(move |ctx| {
                    let mut out = Vec::with_capacity(parts.len());
                    for &slot in &parts {
                        out.push(ctx.take(slot)?);
                    }
                    ctx.set_outcome(CollOutcome::Parts(out));
                    Ok(())
                }));
            }
            _ => {
                // Linear composite: gather to rank 0, broadcast the framed
                // concatenation (per-rank lengths may differ — that is what
                // makes this double as allgatherv).
                let w1 = self.sched_window(comm, &mut s);
                let w2 = self.sched_window(comm, &mut s);
                let framed = linear::gather(&mut s, w1, rank, size, 0, own);
                linear::bcast(&mut s, w2, rank, size, 0, framed);
                finalize_parts_from_frame(&mut s, framed, size);
            }
        }
        Ok(s)
    }

    /// `MPI_Ireduce`: element-wise reduction of `count` elements of
    /// `kind` with `op`, rank order; outcome [`CollOutcome::Buffer`] on
    /// the root, [`CollOutcome::Done`] elsewhere.
    pub fn ireduce(
        &mut self,
        comm: CommHandle,
        root: usize,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<CollRequestId> {
        self.check_live()?;
        self.validate_root(comm, root)?;
        let need = self.reduce_need(send, kind, count, "reduce")?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Buffer(send[..need].to_vec()));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let policy = tuning::order_policy(op, kind);
        let alg = self.choose(CollOp::Reduce, size, need, policy, hint);
        let key = SchedKey {
            comm,
            alg,
            shape: OpShape::Reduce {
                root,
                kind,
                count,
                op: OpKey::of(op),
            },
        };
        let own = match self.sched_cache_get(&key, vec![send[..need].to_vec()])? {
            CacheLookup::Hit(s) => return self.coll_start(comm, s),
            CacheLookup::Miss(mut inputs) => inputs.pop().expect("one input"),
        };
        let s = self.build_reduce(comm, rank, size, root, alg, own, kind, count, op)?;
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_reduce(
        &mut self,
        comm: CommHandle,
        rank: usize,
        size: usize,
        root: usize,
        alg: CollAlgorithm,
        payload: Vec<u8>,
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<CollSchedule> {
        let mut s = CollSchedule::new();
        let own = s.input(payload);
        let out = match alg {
            CollAlgorithm::Hierarchical => {
                let topo = self.comm_topology(comm)?;
                let w_in = self.sched_window(comm, &mut s);
                let w_lead = self.sched_window(comm, &mut s);
                let w_out = self.sched_window(comm, &mut s);
                hier::reduce(
                    &mut s,
                    w_in,
                    w_lead,
                    w_out,
                    rank,
                    &topo,
                    root,
                    own,
                    kind,
                    count,
                    op.clone(),
                )
            }
            CollAlgorithm::BinomialTree => {
                let win = self.sched_window(comm, &mut s);
                tree::reduce(&mut s, win, rank, size, root, own, kind, count, op.clone())
            }
            _ => {
                let win = self.sched_window(comm, &mut s);
                linear::reduce(&mut s, win, rank, size, root, own, kind, count, op.clone())
            }
        };
        if rank == root {
            finalize_buffer(&mut s, out);
        }
        Ok(s)
    }

    /// `MPI_Iallreduce`: outcome [`CollOutcome::Buffer`] with the full
    /// reduction on every rank.
    pub fn iallreduce(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<CollRequestId> {
        self.check_live()?;
        let need = self.reduce_need(send, kind, count, "allreduce")?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Buffer(send[..need].to_vec()));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let policy = tuning::order_policy(op, kind);
        let alg = self.choose(CollOp::Allreduce, size, need, policy, hint);
        if alg == CollAlgorithm::Ring {
            // Ring allreduce: reduce-scatter into P near-equal
            // segments, then ring-allgather the reduced segments back
            // — the classic bandwidth-optimal large-payload allreduce.
            // The segments are staged straight from the caller's buffer
            // at build time: never templatable, so skip the cache (and
            // its payload staging copy) entirely.
            let mut s = CollSchedule::new();
            let w1 = self.alloc_tag_window(comm);
            let w2 = self.alloc_tag_window(comm);
            let base = count / size;
            let extra = count % size;
            let counts: Vec<usize> = (0..size).map(|i| base + usize::from(i < extra)).collect();
            let segs =
                ring::reduce_scatter(&mut s, w1, rank, size, &send[..need], &counts, kind, op);
            let parts = ring::allgather(&mut s, w2, rank, size, segs[rank]);
            let joined = s.empty();
            s.push(Round::new().compute(move |ctx| {
                let mut out = Vec::new();
                for &slot in &parts {
                    out.extend_from_slice(&ctx.take(slot)?);
                }
                ctx.put(joined, out);
                Ok(())
            }));
            finalize_buffer(&mut s, joined);
            return self.coll_start(comm, s);
        }
        let key = SchedKey {
            comm,
            alg,
            shape: OpShape::Allreduce {
                kind,
                count,
                op: OpKey::of(op),
            },
        };
        let own = match self.sched_cache_get(&key, vec![send[..need].to_vec()])? {
            CacheLookup::Hit(s) => return self.coll_start(comm, s),
            CacheLookup::Miss(mut inputs) => inputs.pop().expect("one input"),
        };
        let s = self.build_allreduce(comm, rank, size, alg, own, kind, count, op)?;
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    /// Build the templatable allreduce schedules (everything but ring,
    /// which the dispatcher keeps on the uncached path).
    #[allow(clippy::too_many_arguments)]
    fn build_allreduce(
        &mut self,
        comm: CommHandle,
        rank: usize,
        size: usize,
        alg: CollAlgorithm,
        payload: Vec<u8>,
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<CollSchedule> {
        let mut s = CollSchedule::new();
        let own = s.input(payload);
        let out = match alg {
            CollAlgorithm::Hierarchical => {
                let topo = self.comm_topology(comm)?;
                let w_in = self.sched_window(comm, &mut s);
                let w_lead_a = self.sched_window(comm, &mut s);
                let w_lead_b = self.sched_window(comm, &mut s);
                let w_out = self.sched_window(comm, &mut s);
                hier::allreduce(
                    &mut s,
                    w_in,
                    w_lead_a,
                    w_lead_b,
                    w_out,
                    rank,
                    &topo,
                    own,
                    kind,
                    count,
                    op.clone(),
                )
            }
            CollAlgorithm::RecursiveDoubling => {
                let win = self.sched_window(comm, &mut s);
                rd::allreduce(&mut s, win, rank, size, own, kind, count, op.clone())
            }
            CollAlgorithm::BinomialTree => {
                let w1 = self.sched_window(comm, &mut s);
                let w2 = self.sched_window(comm, &mut s);
                let reduced = tree::reduce(&mut s, w1, rank, size, 0, own, kind, count, op.clone());
                tree::bcast(&mut s, w2, rank, size, 0, reduced);
                reduced
            }
            // `supported` never offers Pipelined or Ring here (ring is
            // handled by the dispatcher), so only the linear composite
            // remains.
            _ => {
                let w1 = self.sched_window(comm, &mut s);
                let w2 = self.sched_window(comm, &mut s);
                let reduced =
                    linear::reduce(&mut s, w1, rank, size, 0, own, kind, count, op.clone());
                linear::bcast(&mut s, w2, rank, size, 0, reduced);
                reduced
            }
        };
        finalize_buffer(&mut s, out);
        Ok(s)
    }

    // ---------------------------------------------------------------------
    // Blocking entry points: start + wait over the same schedules
    // ---------------------------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: CommHandle) -> Result<()> {
        let req = self.ibarrier(comm)?;
        self.coll_wait(req)?;
        Ok(())
    }

    /// `MPI_Bcast`: `buf` is the payload on the root and is overwritten on
    /// every other rank.
    pub fn bcast(&mut self, comm: CommHandle, root: usize, buf: &mut Vec<u8>) -> Result<()> {
        // Validate before taking the buffer so a rejected call leaves
        // the caller's payload untouched.
        self.check_live()?;
        self.validate_root(comm, root)?;
        let req = self.ibcast(comm, root, std::mem::take(buf))?;
        *buf = Self::expect_buffer(self.coll_wait(req)?)?;
        Ok(())
    }

    /// `MPI_Gather` / `MPI_Gatherv`: every rank contributes `send`; the root
    /// receives one buffer per rank (in rank order), everyone else `None`.
    pub fn gather(
        &mut self,
        comm: CommHandle,
        root: usize,
        send: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>> {
        let req = self.igather(comm, root, send)?;
        match self.coll_wait(req)? {
            CollOutcome::Done => Ok(None),
            outcome => Ok(Some(Self::expect_parts(outcome)?)),
        }
    }

    /// `MPI_Scatter` / `MPI_Scatterv`: the root supplies one buffer per rank
    /// (`chunks`, rank order); every rank receives its own chunk.
    pub fn scatter(
        &mut self,
        comm: CommHandle,
        root: usize,
        chunks: Option<&[Vec<u8>]>,
    ) -> Result<Vec<u8>> {
        let req = self.iscatter(comm, root, chunks)?;
        Self::expect_buffer(self.coll_wait(req)?)
    }

    /// `MPI_Allgather` / `MPI_Allgatherv`: returns one buffer per rank on
    /// every rank.
    pub fn allgather(&mut self, comm: CommHandle, send: &[u8]) -> Result<Vec<Vec<u8>>> {
        let req = self.iallgather(comm, send)?;
        Self::expect_parts(self.coll_wait(req)?)
    }

    /// Engine-internal alias used by communicator construction.
    pub(crate) fn allgather_bytes(
        &mut self,
        comm: CommHandle,
        send: &[u8],
    ) -> Result<Vec<Vec<u8>>> {
        self.allgather(comm, send)
    }

    /// `MPI_Ialltoall` / `Ialltoallv`: `chunks[d]` goes to rank `d`;
    /// outcome [`CollOutcome::Parts`] with the chunk received from every
    /// rank.
    pub fn ialltoall(&mut self, comm: CommHandle, chunks: &[Vec<u8>]) -> Result<CollRequestId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        if chunks.len() != size {
            return err(
                ErrorClass::Count,
                format!("alltoall needs {size} chunks, got {}", chunks.len()),
            );
        }
        if size == 1 {
            return self.coll_immediate(CollOutcome::Parts(vec![chunks[0].clone()]));
        }
        let rank = self.comm_rank(comm)?;
        // The posted pairwise exchange is already contention-free; no
        // alternative algorithm is implemented (see tuning table).
        let mut s = CollSchedule::new();
        let win = self.alloc_tag_window(comm);
        linear::alltoall(&mut s, win, rank, size, chunks);
        self.coll_start(comm, s)
    }

    /// `MPI_Alltoall` / `MPI_Alltoallv`: `chunks[d]` goes to rank `d`;
    /// returns the chunk received from every rank.
    pub fn alltoall(&mut self, comm: CommHandle, chunks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let req = self.ialltoall(comm, chunks)?;
        Self::expect_parts(self.coll_wait(req)?)
    }

    /// `MPI_Reduce`: element-wise reduction of `count` elements of `kind`
    /// with `op`, rank order, result on the root.
    pub fn reduce(
        &mut self,
        comm: CommHandle,
        root: usize,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<Option<Vec<u8>>> {
        let req = self.ireduce(comm, root, send, kind, count, op)?;
        match self.coll_wait(req)? {
            CollOutcome::Done => Ok(None),
            outcome => Ok(Some(Self::expect_buffer(outcome)?)),
        }
    }

    /// `MPI_Allreduce`: the reduction delivered to every rank.
    pub fn allreduce(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<Vec<u8>> {
        let req = self.iallreduce(comm, send, kind, count, op)?;
        Self::expect_buffer(self.coll_wait(req)?)
    }

    /// `MPI_Ireduce_scatter`: outcome [`CollOutcome::Buffer`] with this
    /// rank's `counts[rank]`-element slice of the reduced vector.
    pub fn ireduce_scatter(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        counts: &[usize],
        kind: PrimitiveKind,
        op: &Op,
    ) -> Result<CollRequestId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        if counts.len() != size {
            return err(
                ErrorClass::Count,
                format!("reduce_scatter needs {size} counts, got {}", counts.len()),
            );
        }
        let total: usize = counts.iter().sum();
        let need = self.reduce_need(send, kind, total, "reduce_scatter")?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Buffer(send[..need].to_vec()));
        }
        let rank = self.comm_rank(comm)?;
        let policy = tuning::order_policy(op, kind);
        let mut s = CollSchedule::new();
        let out = match self.choose(CollOp::ReduceScatter, size, need, policy, TopoHint::FLAT) {
            CollAlgorithm::Ring => {
                let win = self.alloc_tag_window(comm);
                let segs =
                    ring::reduce_scatter(&mut s, win, rank, size, &send[..need], counts, kind, op);
                segs[rank]
            }
            _ => {
                // Linear composite: reduce the full vector at rank 0,
                // then scatter `counts[i]`-element segments.
                let w1 = self.alloc_tag_window(comm);
                let w2 = self.alloc_tag_window(comm);
                let own = s.filled(send[..need].to_vec());
                let reduced =
                    linear::reduce(&mut s, w1, rank, size, 0, own, kind, total, op.clone());
                let out = s.empty();
                if rank == 0 {
                    let dest_slots: Vec<SlotId> = (0..size).map(|_| s.empty()).collect();
                    let bridge_slots = dest_slots.clone();
                    let counts = counts.to_vec();
                    let elem = kind.size();
                    s.push(Round::new().compute(move |ctx| {
                        let full = ctx.take(reduced)?;
                        let mut cursor = 0usize;
                        for (&slot, &c) in bridge_slots.iter().zip(&counts) {
                            let bytes = c * elem;
                            ctx.put(slot, full[cursor..cursor + bytes].to_vec());
                            cursor += bytes;
                        }
                        Ok(())
                    }));
                    linear::scatter(&mut s, w2, rank, size, 0, Some(dest_slots), out);
                } else {
                    linear::scatter(&mut s, w2, rank, size, 0, None, out);
                }
                out
            }
        };
        finalize_buffer(&mut s, out);
        self.coll_start(comm, s)
    }

    /// `MPI_Reduce_scatter`: reduce the full vector, deliver `counts[i]`
    /// elements of the result to rank `i`.
    pub fn reduce_scatter(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        counts: &[usize],
        kind: PrimitiveKind,
        op: &Op,
    ) -> Result<Vec<u8>> {
        let req = self.ireduce_scatter(comm, send, counts, kind, op)?;
        let my_chunk = Self::expect_buffer(self.coll_wait(req)?)?;
        debug_assert_eq!(my_chunk.len(), counts[self.comm_rank(comm)?] * kind.size());
        Ok(my_chunk)
    }

    /// `MPI_Iscan`: inclusive prefix reduction in rank order; outcome
    /// [`CollOutcome::Buffer`] with this rank's prefix. The prefix chain
    /// *is* sequential, so the linear pipeline is the only algorithm.
    pub fn iscan(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<CollRequestId> {
        self.check_live()?;
        let need = self.reduce_need(send, kind, count, "scan")?;
        let size = self.comm_size(comm)?;
        if size == 1 {
            return self.coll_immediate(CollOutcome::Buffer(send[..need].to_vec()));
        }
        let rank = self.comm_rank(comm)?;
        let key = SchedKey {
            comm,
            alg: CollAlgorithm::Linear,
            shape: OpShape::Scan {
                kind,
                count,
                op: OpKey::of(op),
            },
        };
        let own = match self.sched_cache_get(&key, vec![send[..need].to_vec()])? {
            CacheLookup::Hit(s) => return self.coll_start(comm, s),
            CacheLookup::Miss(mut inputs) => inputs.pop().expect("one input"),
        };
        let mut s = CollSchedule::new();
        let win = self.sched_window(comm, &mut s);
        let own = s.input(own);
        let acc = linear::scan(&mut s, win, rank, size, own, kind, count, op.clone());
        finalize_buffer(&mut s, acc);
        self.sched_cache_put(key, &s);
        self.coll_start(comm, s)
    }

    /// `MPI_Scan`: inclusive prefix reduction in rank order.
    pub fn scan(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<Vec<u8>> {
        let req = self.iscan(comm, send, kind, count, op)?;
        Self::expect_buffer(self.coll_wait(req)?)
    }

    // ---------------------------------------------------------------------
    // Persistent collectives (`MPI_Barrier_init` family): build the
    // schedule once at init, start it many times. Init is a collective
    // call — every member must call it in the same order relative to
    // other collectives on the communicator, because it consumes tag
    // windows from the shared sequence (and pins them for reuse by
    // every subsequent `start()`).
    // ---------------------------------------------------------------------

    /// `MPI_Barrier_init`: a reusable barrier. Start iterations with
    /// [`Engine::coll_start_persistent`] (payload ignored).
    pub fn barrier_init(&mut self, comm: CommHandle) -> Result<PersistentCollId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        let spec = PersistentSpec::Barrier;
        if size == 1 {
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let alg = self.choose(CollOp::Barrier, size, 0, OrderPolicy::Any, hint);
        let s = self.build_barrier(comm, rank, size, alg)?;
        self.register_persistent_template(comm, alg, OpShape::Barrier, spec, s)
    }

    /// `MPI_Bcast_init`: a reusable broadcast from `root`. `len` is the
    /// payload length the root will pass to every `start()` (ignored on
    /// other ranks, which receive whatever arrives).
    pub fn bcast_init(
        &mut self,
        comm: CommHandle,
        root: usize,
        len: usize,
    ) -> Result<PersistentCollId> {
        self.check_live()?;
        self.validate_root(comm, root)?;
        let size = self.comm_size(comm)?;
        let rank = self.comm_rank(comm)?;
        let spec = PersistentSpec::Bcast {
            root,
            root_len: (rank == root).then_some(len),
        };
        if size == 1 {
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let hint = self.topo_hint(comm)?;
        let alg = self.choose(CollOp::Bcast, size, 0, OrderPolicy::Any, hint);
        if alg == CollAlgorithm::Pipelined {
            // Not templatable (see `ibcast`); every start re-dispatches.
            // Symmetric: the selection is identical on every rank.
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let s = self.build_bcast(comm, rank, size, root, alg, Vec::new())?;
        self.register_persistent_template(comm, alg, OpShape::Bcast { root }, spec, s)
    }

    /// `MPI_Reduce_init`: a reusable rank-order reduction to `root`.
    pub fn reduce_init(
        &mut self,
        comm: CommHandle,
        root: usize,
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<PersistentCollId> {
        self.check_live()?;
        self.validate_root(comm, root)?;
        let size = self.comm_size(comm)?;
        let spec = PersistentSpec::Reduce {
            root,
            kind,
            count,
            op: op.clone(),
        };
        if size == 1 {
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let policy = tuning::order_policy(op, kind);
        let need = kind.size() * count;
        let alg = self.choose(CollOp::Reduce, size, need, policy, hint);
        let shape = OpShape::Reduce {
            root,
            kind,
            count,
            op: OpKey::of(op),
        };
        let s = self.build_reduce(comm, rank, size, root, alg, Vec::new(), kind, count, op)?;
        self.register_persistent_template(comm, alg, shape, spec, s)
    }

    /// `MPI_Allreduce_init`: a reusable allreduce. Each `start()` takes
    /// this rank's `count * kind.size()`-byte contribution; the wait's
    /// outcome is the full reduction, as for `iallreduce`.
    pub fn allreduce_init(
        &mut self,
        comm: CommHandle,
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<PersistentCollId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        let spec = PersistentSpec::Allreduce {
            kind,
            count,
            op: op.clone(),
        };
        if size == 1 {
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let policy = tuning::order_policy(op, kind);
        let need = kind.size() * count;
        let alg = self.choose(CollOp::Allreduce, size, need, policy, hint);
        if alg == CollAlgorithm::Ring {
            // Not templatable (see `iallreduce`); every start
            // re-dispatches. Symmetric: identical selection everywhere.
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let shape = OpShape::Allreduce {
            kind,
            count,
            op: OpKey::of(op),
        };
        let s = self.build_allreduce(comm, rank, size, alg, Vec::new(), kind, count, op)?;
        self.register_persistent_template(comm, alg, shape, spec, s)
    }

    /// `MPI_Allgather_init`: a reusable allgather (per-rank lengths may
    /// vary between starts — the wire format is length-independent).
    pub fn allgather_init(&mut self, comm: CommHandle) -> Result<PersistentCollId> {
        self.check_live()?;
        let size = self.comm_size(comm)?;
        let spec = PersistentSpec::Allgather;
        if size == 1 {
            return Ok(self.register_persistent_spec(comm, spec));
        }
        let rank = self.comm_rank(comm)?;
        let hint = self.topo_hint(comm)?;
        let alg = self.choose(CollOp::Allgather, size, 0, OrderPolicy::Any, hint);
        let s = self.build_allgather(comm, rank, size, alg, Vec::new())?;
        self.register_persistent_template(comm, alg, OpShape::Allgather, spec, s)
    }

    /// Register a persistent collective that re-dispatches its transient
    /// form on every start (single-rank comms, non-templatable
    /// algorithms).
    fn register_persistent_spec(
        &mut self,
        comm: CommHandle,
        spec: PersistentSpec,
    ) -> PersistentCollId {
        self.register_persistent_coll(PersistentColl {
            comm,
            spec,
            template: None,
            active: None,
        })
    }

    /// Capture an init-built schedule as the persistent operation's
    /// pinned template, seeding the transient schedule cache with the
    /// same image on the way (the built schedule is never started — its
    /// windows belong to the template).
    fn register_persistent_template(
        &mut self,
        comm: CommHandle,
        alg: CollAlgorithm,
        shape: OpShape,
        spec: PersistentSpec,
        s: CollSchedule,
    ) -> Result<PersistentCollId> {
        let template = SchedTemplate::capture(&s);
        self.sched_cache_put(SchedKey { comm, alg, shape }, &s);
        Ok(self.register_persistent_coll(PersistentColl {
            comm,
            spec,
            template,
            active: None,
        }))
    }

    /// Agree on the maximum of a `u32` across the communicator (used for
    /// context-id allocation).
    pub(crate) fn allreduce_u32_max(&mut self, comm: CommHandle, value: u32) -> Result<u32> {
        let bytes = (value as i64).to_le_bytes();
        let out = self.allreduce(
            comm,
            &bytes,
            PrimitiveKind::Long,
            1,
            &Op::Predefined(crate::ops::PredefinedOp::Max),
        )?;
        Ok(i64::from_le_bytes(out[..8].try_into().unwrap()) as u32)
    }

    fn reduce_need(
        &self,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        what: &str,
    ) -> Result<usize> {
        let need = kind.size() * count;
        if send.len() < need {
            return err(
                ErrorClass::Count,
                format!("{what}: buffer has {} bytes, need {need}", send.len()),
            );
        }
        Ok(need)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{COMM_SELF, COMM_WORLD};
    use crate::ops::PredefinedOp;
    use crate::universe::Universe;
    use mpi_transport::DeviceKind;

    fn ints(values: &[i32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn to_ints(bytes: &[u8]) -> Vec<i32> {
        bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn barrier_completes_on_all_ranks() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            for _ in 0..3 {
                engine.barrier(COMM_WORLD).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn bcast_distributes_roots_buffer() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let mut buf = if engine.world_rank() == 2 {
                b"broadcast payload".to_vec()
            } else {
                Vec::new()
            };
            engine.bcast(COMM_WORLD, 2, &mut buf).unwrap();
            assert_eq!(&buf, b"broadcast payload");
        })
        .unwrap();
    }

    #[test]
    fn gather_collects_in_rank_order() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let send = vec![rank as u8; rank + 1]; // different lengths (gatherv)
            let got = engine.gather(COMM_WORLD, 0, &send).unwrap();
            if rank == 0 {
                let parts = got.unwrap();
                assert_eq!(parts.len(), 4);
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p.len(), r + 1);
                    assert!(p.iter().all(|&b| b == r as u8));
                }
            } else {
                assert!(got.is_none());
            }
        })
        .unwrap();
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        Universe::run(3, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let chunks: Option<Vec<Vec<u8>>> = if rank == 1 {
                Some((0..3).map(|r| vec![r as u8 * 10; r + 1]).collect())
            } else {
                None
            };
            let mine = engine.scatter(COMM_WORLD, 1, chunks.as_deref()).unwrap();
            assert_eq!(mine.len(), rank + 1);
            assert!(mine.iter().all(|&b| b == rank as u8 * 10));
        })
        .unwrap();
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let parts = engine
                .allgather(COMM_WORLD, &[rank as u8, (rank * 2) as u8])
                .unwrap();
            assert_eq!(parts.len(), 4);
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as u8, (r * 2) as u8]);
            }
        })
        .unwrap();
    }

    #[test]
    fn alltoall_transposes_chunks() {
        Universe::run(3, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            // chunk sent from rank r to rank d = [r, d]
            let chunks: Vec<Vec<u8>> = (0..3).map(|d| vec![rank as u8, d as u8]).collect();
            let got = engine.alltoall(COMM_WORLD, &chunks).unwrap();
            for (src, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u8, rank as u8]);
            }
        })
        .unwrap();
    }

    #[test]
    fn reduce_sums_in_rank_order() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank() as i32;
            let send = ints(&[rank, rank * 10]);
            let got = engine
                .reduce(
                    COMM_WORLD,
                    0,
                    &send,
                    PrimitiveKind::Int,
                    2,
                    &Op::Predefined(PredefinedOp::Sum),
                )
                .unwrap();
            if engine.world_rank() == 0 {
                assert_eq!(to_ints(&got.unwrap()), vec![6, 60]);
            } else {
                assert!(got.is_none());
            }
        })
        .unwrap();
    }

    #[test]
    fn allreduce_max_everywhere() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank() as i32;
            let send = ints(&[rank, -rank]);
            let got = engine
                .allreduce(
                    COMM_WORLD,
                    &send,
                    PrimitiveKind::Int,
                    2,
                    &Op::Predefined(PredefinedOp::Max),
                )
                .unwrap();
            assert_eq!(to_ints(&got), vec![3, 0]);
        })
        .unwrap();
    }

    #[test]
    fn scan_computes_inclusive_prefix() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank() as i32;
            let send = ints(&[rank + 1]);
            let got = engine
                .scan(
                    COMM_WORLD,
                    &send,
                    PrimitiveKind::Int,
                    1,
                    &Op::Predefined(PredefinedOp::Sum),
                )
                .unwrap();
            let expected: i32 = (1..=rank + 1).sum();
            assert_eq!(to_ints(&got), vec![expected]);
        })
        .unwrap();
    }

    #[test]
    fn reduce_scatter_splits_reduced_vector() {
        Universe::run(3, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank() as i32;
            // Every rank contributes [rank; 6]; sum = [0+1+2; 6] = [3; 6].
            let send = ints(&[rank; 6]);
            let counts = [1usize, 2, 3];
            let got = engine
                .reduce_scatter(
                    COMM_WORLD,
                    &send,
                    &counts,
                    PrimitiveKind::Int,
                    &Op::Predefined(PredefinedOp::Sum),
                )
                .unwrap();
            let vals = to_ints(&got);
            assert_eq!(vals.len(), counts[rank as usize]);
            assert!(vals.iter().all(|&v| v == 3));
        })
        .unwrap();
    }

    #[test]
    fn collectives_work_on_split_communicators() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let sub = engine
                .comm_split(COMM_WORLD, (rank % 2) as i32, rank as i32)
                .unwrap()
                .unwrap();
            let send = ints(&[rank as i32]);
            let got = engine
                .allreduce(
                    sub,
                    &send,
                    PrimitiveKind::Int,
                    1,
                    &Op::Predefined(PredefinedOp::Sum),
                )
                .unwrap();
            // evens: 0 + 2 = 2; odds: 1 + 3 = 4
            let expected = if rank % 2 == 0 { 2 } else { 4 };
            assert_eq!(to_ints(&got), vec![expected]);
        })
        .unwrap();
    }

    #[test]
    fn user_defined_op_in_allreduce() {
        Universe::run(3, DeviceKind::ShmFast, |engine| {
            use std::sync::Arc;
            let op = Op::User(Arc::new(|incoming, acc, _kind, count| {
                for i in 0..count {
                    let a = i32::from_le_bytes(acc[i * 4..(i + 1) * 4].try_into().unwrap());
                    let b = i32::from_le_bytes(incoming[i * 4..(i + 1) * 4].try_into().unwrap());
                    acc[i * 4..(i + 1) * 4].copy_from_slice(&(a * 10 + b).to_le_bytes());
                }
                Ok(())
            }));
            let rank = engine.world_rank() as i32;
            let got = engine
                .allreduce(COMM_WORLD, &ints(&[rank + 1]), PrimitiveKind::Int, 1, &op)
                .unwrap();
            // fold in rank order: ((1*10+2)*10+3) = 123
            assert_eq!(to_ints(&got), vec![123]);
        })
        .unwrap();
    }

    #[test]
    fn invalid_roots_and_counts_are_rejected() {
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let mut buf = Vec::new();
            assert!(engine.bcast(COMM_WORLD, 5, &mut buf).is_err());
            assert!(engine.gather(COMM_WORLD, 9, b"x").is_err());
            assert!(engine.alltoall(COMM_WORLD, &[vec![0u8]]).is_err());
        })
        .unwrap();
    }

    #[test]
    fn forced_algorithms_still_produce_correct_results() {
        for alg in CollAlgorithm::ALL {
            Universe::run(4, DeviceKind::ShmFast, move |engine| {
                engine.set_coll_algorithm(Some(alg));
                let rank = engine.world_rank() as i32;
                let got = engine
                    .allreduce(
                        COMM_WORLD,
                        &ints(&[rank]),
                        PrimitiveKind::Int,
                        1,
                        &Op::Predefined(PredefinedOp::Sum),
                    )
                    .unwrap();
                assert_eq!(to_ints(&got), vec![6], "{alg}");
                let mut buf = if rank == 1 { vec![9u8; 33] } else { Vec::new() };
                engine.bcast(COMM_WORLD, 1, &mut buf).unwrap();
                assert_eq!(buf, vec![9u8; 33], "{alg}");
            })
            .unwrap();
        }
    }

    /// Satellite: every collective on a single-rank communicator returns
    /// immediately without touching the transport.
    #[test]
    fn size_one_fast_paths_skip_the_transport() {
        Universe::run(1, DeviceKind::ShmFast, |engine| {
            let op = Op::Predefined(PredefinedOp::Sum);
            engine.barrier(COMM_WORLD).unwrap();
            let mut buf = b"solo".to_vec();
            engine.bcast(COMM_WORLD, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"solo");
            let parts = engine.gather(COMM_WORLD, 0, b"g").unwrap().unwrap();
            assert_eq!(parts, vec![b"g".to_vec()]);
            let chunk = engine
                .scatter(COMM_WORLD, 0, Some(&[b"s".to_vec()]))
                .unwrap();
            assert_eq!(chunk, b"s".to_vec());
            let all = engine.allgather(COMM_WORLD, b"ag").unwrap();
            assert_eq!(all, vec![b"ag".to_vec()]);
            let exchanged = engine.alltoall(COMM_WORLD, &[b"a2a".to_vec()]).unwrap();
            assert_eq!(exchanged, vec![b"a2a".to_vec()]);
            let reduced = engine
                .reduce(COMM_WORLD, 0, &ints(&[7]), PrimitiveKind::Int, 1, &op)
                .unwrap()
                .unwrap();
            assert_eq!(to_ints(&reduced), vec![7]);
            let allred = engine
                .allreduce(COMM_WORLD, &ints(&[8]), PrimitiveKind::Int, 1, &op)
                .unwrap();
            assert_eq!(to_ints(&allred), vec![8]);
            let rs = engine
                .reduce_scatter(COMM_WORLD, &ints(&[4, 5]), &[2], PrimitiveKind::Int, &op)
                .unwrap();
            assert_eq!(to_ints(&rs), vec![4, 5]);
            let scanned = engine
                .scan(COMM_WORLD, &ints(&[6]), PrimitiveKind::Int, 1, &op)
                .unwrap();
            assert_eq!(to_ints(&scanned), vec![6]);
            let stats = engine.stats();
            assert_eq!(stats.eager_sends + stats.rendezvous_sends, 0);
            assert_eq!(stats.bytes_sent, 0);
            assert_eq!(stats.bytes_received, 0);
        })
        .unwrap();
    }

    /// COMM_SELF is a single-rank communicator even in a multi-rank world,
    /// so its collectives must take the same fast path.
    #[test]
    fn comm_self_collectives_use_the_fast_path() {
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let before = engine.stats().clone();
            let rank = engine.world_rank() as i32;
            let got = engine
                .allreduce(
                    COMM_SELF,
                    &ints(&[rank]),
                    PrimitiveKind::Int,
                    1,
                    &Op::Predefined(PredefinedOp::Sum),
                )
                .unwrap();
            assert_eq!(to_ints(&got), vec![rank]);
            engine.barrier(COMM_SELF).unwrap();
            let after = engine.stats();
            assert_eq!(
                before.eager_sends + before.rendezvous_sends,
                after.eager_sends + after.rendezvous_sends
            );
        })
        .unwrap();
    }

    /// Tentpole smoke: every hierarchical collective over a genuine
    /// hybrid fabric (2 nodes × 4 ranks), including non-leader roots
    /// (the extra intra-node hop) and variable-length contributions.
    #[test]
    fn hierarchical_collectives_work_over_a_hybrid_fabric() {
        use crate::UniverseConfig;
        use mpi_transport::NodeMap;
        let config = UniverseConfig::new(8, DeviceKind::Hybrid)
            .with_nodes(NodeMap::regular(2, 4))
            .with_coll_algorithm(CollAlgorithm::Hierarchical);
        Universe::run_with_config(config, |engine| {
            let rank = engine.world_rank();
            let sum = Op::Predefined(PredefinedOp::Sum);
            engine.barrier(COMM_WORLD).unwrap();

            // Bcast from a non-leader root (rank 5 lives on node 1,
            // whose leader is rank 4): exercises the root hop.
            let mut buf = if rank == 5 {
                b"hier".to_vec()
            } else {
                Vec::new()
            };
            engine.bcast(COMM_WORLD, 5, &mut buf).unwrap();
            assert_eq!(&buf, b"hier");

            // Allreduce on every rank.
            let got = engine
                .allreduce(
                    COMM_WORLD,
                    &ints(&[rank as i32, 1]),
                    PrimitiveKind::Int,
                    2,
                    &sum,
                )
                .unwrap();
            assert_eq!(to_ints(&got), vec![28, 8]);

            // Reduce to a non-leader root (delivery hop).
            let got = engine
                .reduce(
                    COMM_WORLD,
                    3,
                    &ints(&[rank as i32]),
                    PrimitiveKind::Int,
                    1,
                    &sum,
                )
                .unwrap();
            if rank == 3 {
                assert_eq!(to_ints(&got.unwrap()), vec![28]);
            } else {
                assert!(got.is_none());
            }

            // Allgatherv with variable (incl. zero) lengths.
            let contribution = vec![rank as u8; rank % 3];
            let parts = engine.allgather(COMM_WORLD, &contribution).unwrap();
            assert_eq!(parts.len(), 8);
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as u8; r % 3], "rank {r}");
            }

            // And the nonblocking twin of one of them, driven by test().
            let req = engine
                .iallreduce(COMM_WORLD, &ints(&[1]), PrimitiveKind::Int, 1, &sum)
                .unwrap();
            let outcome = loop {
                if let Some(outcome) = engine.coll_test(req).unwrap() {
                    break outcome;
                }
                std::thread::yield_now();
            };
            assert_eq!(to_ints(&outcome.into_buffer()), vec![8]);
            engine.finalize().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn frame_helpers_round_trip() {
        let entries = vec![
            (3u32, vec![1u8, 2, 3]),
            (0u32, Vec::new()),
            (2u32, vec![9u8; 100]),
            (1u32, vec![7u8]),
        ];
        let wire = frame_entries(&entries);
        let back = unframe_entries(&wire).unwrap();
        assert_eq!(back, entries);
        let parts = entries_to_parts(back, 4).unwrap();
        assert_eq!(parts[0], Vec::<u8>::new());
        assert_eq!(parts[3], vec![1, 2, 3]);
        // Truncated wire is rejected, not panicked on.
        assert!(unframe_entries(&wire[..wire.len() - 1]).is_err());
        // A corrupted count prefix must error, not attempt a huge alloc.
        assert!(unframe_entries(&[0xff, 0xff, 0xff, 0xff]).is_err());
        // Missing / duplicate ranks are rejected.
        assert!(entries_to_parts(vec![(0, Vec::new())], 2).is_err());
        assert!(entries_to_parts(vec![(0, Vec::new()), (0, Vec::new())], 2).is_err());
    }

    // -----------------------------------------------------------------
    // Nonblocking entry points
    // -----------------------------------------------------------------

    /// All seven nonblocking collectives complete through `coll_wait` and
    /// match their blocking twins' results.
    #[test]
    fn nonblocking_collectives_complete_via_wait() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let sum = Op::Predefined(PredefinedOp::Sum);

            let req = engine.ibarrier(COMM_WORLD).unwrap();
            assert_eq!(engine.coll_wait(req).unwrap(), CollOutcome::Done);

            let buf = if rank == 1 {
                b"nb-bcast".to_vec()
            } else {
                Vec::new()
            };
            let req = engine.ibcast(COMM_WORLD, 1, buf).unwrap();
            assert_eq!(
                engine.coll_wait(req).unwrap().into_buffer(),
                b"nb-bcast".to_vec()
            );

            let req = engine.igather(COMM_WORLD, 2, &[rank as u8; 3]).unwrap();
            let outcome = engine.coll_wait(req).unwrap();
            if rank == 2 {
                let parts = outcome.into_parts().unwrap();
                assert_eq!(parts.len(), 4);
                for (r, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![r as u8; 3]);
                }
            } else {
                assert_eq!(outcome, CollOutcome::Done);
            }

            let chunks: Option<Vec<Vec<u8>>> = if rank == 0 {
                Some((0..4).map(|r| vec![r as u8; r + 1]).collect())
            } else {
                None
            };
            let req = engine.iscatter(COMM_WORLD, 0, chunks.as_deref()).unwrap();
            assert_eq!(
                engine.coll_wait(req).unwrap().into_buffer(),
                vec![rank as u8; rank + 1]
            );

            let req = engine.iallgather(COMM_WORLD, &[rank as u8]).unwrap();
            let parts = engine.coll_wait(req).unwrap().into_parts().unwrap();
            assert_eq!(parts, (0..4).map(|r| vec![r as u8]).collect::<Vec<_>>());

            let req = engine
                .ireduce(
                    COMM_WORLD,
                    3,
                    &ints(&[rank as i32]),
                    PrimitiveKind::Int,
                    1,
                    &sum,
                )
                .unwrap();
            let outcome = engine.coll_wait(req).unwrap();
            if rank == 3 {
                assert_eq!(to_ints(&outcome.into_buffer()), vec![6]);
            } else {
                assert_eq!(outcome, CollOutcome::Done);
            }

            let req = engine
                .iallreduce(
                    COMM_WORLD,
                    &ints(&[rank as i32 + 1]),
                    PrimitiveKind::Int,
                    1,
                    &sum,
                )
                .unwrap();
            assert_eq!(
                to_ints(&engine.coll_wait(req).unwrap().into_buffer()),
                vec![10]
            );
        })
        .unwrap();
    }

    /// A nonblocking collective completes through non-parking `coll_test`
    /// polling alone.
    #[test]
    fn nonblocking_allreduce_completes_via_test() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank() as i32;
            let sum = Op::Predefined(PredefinedOp::Sum);
            let req = engine
                .iallreduce(COMM_WORLD, &ints(&[rank]), PrimitiveKind::Int, 1, &sum)
                .unwrap();
            let outcome = loop {
                if let Some(outcome) = engine.coll_test(req).unwrap() {
                    break outcome;
                }
                std::thread::yield_now();
            };
            assert_eq!(to_ints(&outcome.into_buffer()), vec![6]);
        })
        .unwrap();
    }

    /// Several collectives in flight concurrently on the same
    /// communicator occupy distinct tag windows and complete in any wait
    /// order.
    #[test]
    fn concurrent_collectives_in_flight_do_not_interfere() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let sum = Op::Predefined(PredefinedOp::Sum);
            let r1 = engine
                .iallreduce(
                    COMM_WORLD,
                    &ints(&[rank as i32]),
                    PrimitiveKind::Int,
                    1,
                    &sum,
                )
                .unwrap();
            let buf = if rank == 0 { vec![7u8; 50] } else { Vec::new() };
            let r2 = engine.ibcast(COMM_WORLD, 0, buf).unwrap();
            let r3 = engine.iallgather(COMM_WORLD, &[rank as u8; 2]).unwrap();
            let r4 = engine.ibarrier(COMM_WORLD).unwrap();
            // Complete in reverse order of issue.
            assert_eq!(engine.coll_wait(r4).unwrap(), CollOutcome::Done);
            let parts = engine.coll_wait(r3).unwrap().into_parts().unwrap();
            assert_eq!(parts, (0..4).map(|r| vec![r as u8; 2]).collect::<Vec<_>>());
            assert_eq!(engine.coll_wait(r2).unwrap().into_buffer(), vec![7u8; 50]);
            assert_eq!(
                to_ints(&engine.coll_wait(r1).unwrap().into_buffer()),
                vec![6]
            );
        })
        .unwrap();
    }

    /// Outstanding (unfinished, unwaited) collectives block `finalize`;
    /// abandoned ones quiesce and leave no posted receives behind.
    #[test]
    fn abandoned_collectives_quiesce_before_finalize() {
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank() as i32;
            let sum = Op::Predefined(PredefinedOp::Sum);
            let req = engine
                .iallreduce(COMM_WORLD, &ints(&[rank]), PrimitiveKind::Int, 1, &sum)
                .unwrap();
            engine.coll_abandon(req).unwrap();
            assert_eq!(engine.coll_outstanding(), 0);
            engine.finalize().unwrap();
        })
        .unwrap();
    }

    /// Repeating a collective with the same shape replays the cached
    /// schedule template (fresh payload, fresh tag windows) instead of
    /// rebuilding it, and still computes the right answer.
    #[test]
    fn schedule_cache_replays_templates_across_calls() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let sum = Op::Predefined(PredefinedOp::Sum);
            let rank = engine.world_rank() as i32;
            let miss0 = engine.stats().sched_cache_misses;
            for round in 0..5i32 {
                let got = engine
                    .allreduce(
                        COMM_WORLD,
                        &ints(&[rank * round]),
                        PrimitiveKind::Int,
                        1,
                        &sum,
                    )
                    .unwrap();
                assert_eq!(to_ints(&got), vec![6 * round]);
            }
            // One build, four replays.
            assert_eq!(engine.stats().sched_cache_misses, miss0 + 1);
            assert!(engine.stats().sched_cache_hits >= 4);
        })
        .unwrap();
    }

    /// Every cacheable collective survives the template round-trip:
    /// the second call (a cache hit) must agree with the first.
    #[test]
    fn cached_schedules_match_fresh_builds_for_all_ops() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let sum = Op::Predefined(PredefinedOp::Sum);
            for _ in 0..2 {
                engine.barrier(COMM_WORLD).unwrap();
                let mut buf = if rank == 1 {
                    ints(&[42, 43])
                } else {
                    Vec::new()
                };
                engine.bcast(COMM_WORLD, 1, &mut buf).unwrap();
                assert_eq!(to_ints(&buf), vec![42, 43]);
                let gathered = engine.gather(COMM_WORLD, 2, &[rank as u8; 3]).unwrap();
                if rank == 2 {
                    let parts = gathered.unwrap();
                    assert_eq!(parts, (0..4).map(|r| vec![r as u8; 3]).collect::<Vec<_>>());
                } else {
                    assert!(gathered.is_none());
                }
                let parts = engine.allgather(COMM_WORLD, &[rank as u8]).unwrap();
                assert_eq!(parts, (0..4).map(|r| vec![r as u8]).collect::<Vec<_>>());
                let reduced = engine
                    .reduce(COMM_WORLD, 0, &ints(&[1]), PrimitiveKind::Int, 1, &sum)
                    .unwrap();
                if rank == 0 {
                    assert_eq!(to_ints(&reduced.unwrap()), vec![4]);
                }
                let scanned = engine
                    .scan(COMM_WORLD, &ints(&[1]), PrimitiveKind::Int, 1, &sum)
                    .unwrap();
                assert_eq!(to_ints(&scanned), vec![rank as i32 + 1]);
            }
            assert!(engine.stats().sched_cache_hits >= 6);
        })
        .unwrap();
    }

    /// Payloads past the cache's input-byte cutoff bypass the template
    /// store entirely — every call rebuilds (the build cost is noise
    /// against the transfer at that size) and nothing that large is
    /// ever captured.
    #[test]
    fn large_payloads_bypass_the_schedule_cache() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            // Pin a *cacheable* algorithm: the tuned selector would pick
            // the ring at this size, which never consults the cache.
            engine.forced_coll_alg = Some(CollAlgorithm::BinomialTree);
            let sum = Op::Predefined(PredefinedOp::Sum);
            let rank = engine.world_rank() as i32;
            let count = nb::cache::SCHED_CACHE_MAX_INPUT_BYTES / 4 + 1;
            let send: Vec<i32> = vec![rank; count];
            let bytes: Vec<u8> = send.iter().flat_map(|v| v.to_le_bytes()).collect();
            let hits0 = engine.stats().sched_cache_hits;
            let miss0 = engine.stats().sched_cache_misses;
            for _ in 0..2 {
                let got = engine
                    .allreduce(COMM_WORLD, &bytes, PrimitiveKind::Int, count, &sum)
                    .unwrap();
                assert_eq!(to_ints(&got), vec![6i32; count]);
            }
            assert_eq!(engine.stats().sched_cache_hits, hits0);
            assert_eq!(engine.stats().sched_cache_misses, miss0 + 2);
            assert!(engine.sched_cache.is_empty());
        })
        .unwrap();
    }

    /// Freeing a communicator drops its cached schedule templates (a
    /// recycled handle must start cold, not replay a dead comm's wiring).
    #[test]
    fn comm_free_drops_cached_schedules() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let sub = engine
                .comm_split(COMM_WORLD, (rank % 2) as i32, rank as i32)
                .unwrap()
                .unwrap();
            let sum = Op::Predefined(PredefinedOp::Sum);
            for _ in 0..2 {
                engine
                    .allreduce(sub, &ints(&[1]), PrimitiveKind::Int, 1, &sum)
                    .unwrap();
            }
            assert!(engine.sched_cache.keys().any(|k| k.comm == sub));
            engine.comm_free(sub).unwrap();
            assert!(!engine.sched_cache.keys().any(|k| k.comm == sub));
        })
        .unwrap();
    }

    /// A persistent allreduce built once replays across starts with
    /// fresh payloads, reusing its pinned template (cache hits, no new
    /// builds after init).
    #[test]
    fn persistent_allreduce_replays_with_fresh_payloads() {
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let sum = Op::Predefined(PredefinedOp::Sum);
            let rank = engine.world_rank() as i32;
            let op = engine
                .allreduce_init(COMM_WORLD, PrimitiveKind::Int, 1, &sum)
                .unwrap();
            let misses_after_init = engine.stats().sched_cache_misses;
            for round in 1..=4i32 {
                engine
                    .coll_start_persistent(op, &ints(&[rank * round]))
                    .unwrap();
                let outcome = engine.coll_wait_persistent(op).unwrap();
                assert_eq!(to_ints(&outcome.into_buffer()), vec![6 * round]);
            }
            assert_eq!(engine.stats().sched_cache_misses, misses_after_init);
            engine.coll_free_persistent(op).unwrap();
            assert_eq!(engine.persistent_colls_registered(), 0);
        })
        .unwrap();
    }

    /// Persistent barrier, bcast and allgather round-trip; bcast
    /// payloads vary per start on the root.
    #[test]
    fn persistent_bcast_barrier_allgather_round_trip() {
        Universe::run(3, DeviceKind::ShmFast, |engine| {
            let rank = engine.world_rank();
            let barrier = engine.barrier_init(COMM_WORLD).unwrap();
            let bcast = engine.bcast_init(COMM_WORLD, 0, 4).unwrap();
            let allgather = engine.allgather_init(COMM_WORLD).unwrap();
            for round in 0..3u8 {
                engine.coll_start_persistent(barrier, &[]).unwrap();
                assert_eq!(
                    engine.coll_wait_persistent(barrier).unwrap(),
                    CollOutcome::Done
                );
                let payload = if rank == 0 {
                    vec![round; 4]
                } else {
                    Vec::new()
                };
                engine.coll_start_persistent(bcast, &payload).unwrap();
                let got = engine.coll_wait_persistent(bcast).unwrap().into_buffer();
                assert_eq!(got, vec![round; 4]);
                engine
                    .coll_start_persistent(allgather, &[rank as u8, round])
                    .unwrap();
                let parts = engine
                    .coll_wait_persistent(allgather)
                    .unwrap()
                    .into_parts()
                    .unwrap();
                assert_eq!(
                    parts,
                    (0..3).map(|r| vec![r as u8, round]).collect::<Vec<_>>()
                );
            }
            for op in [barrier, bcast, allgather] {
                engine.coll_free_persistent(op).unwrap();
            }
        })
        .unwrap();
    }

    /// Double-start without an intervening wait is refused; an inactive
    /// persistent op reports `Done` from wait/test, matching `MPI_Test`
    /// on an inactive persistent request.
    #[test]
    fn persistent_double_start_is_refused() {
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let sum = Op::Predefined(PredefinedOp::Sum);
            let op = engine
                .allreduce_init(COMM_WORLD, PrimitiveKind::Int, 1, &sum)
                .unwrap();
            assert_eq!(engine.coll_wait_persistent(op).unwrap(), CollOutcome::Done);
            engine.coll_start_persistent(op, &ints(&[1])).unwrap();
            assert!(engine.coll_start_persistent(op, &ints(&[1])).is_err());
            engine.coll_wait_persistent(op).unwrap();
            engine.coll_free_persistent(op).unwrap();
        })
        .unwrap();
    }

    /// `finalize` refuses while a persistent start is in flight; freeing
    /// the operation quiesces it so finalize can proceed.
    #[test]
    fn finalize_refuses_active_persistent_collectives() {
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let sum = Op::Predefined(PredefinedOp::Sum);
            let op = engine
                .allreduce_init(COMM_WORLD, PrimitiveKind::Int, 1, &sum)
                .unwrap();
            engine.coll_start_persistent(op, &ints(&[1])).unwrap();
            assert!(engine.finalize().is_err());
            engine.coll_free_persistent(op).unwrap();
            assert_eq!(engine.persistent_colls_active(), 0);
            engine.finalize().unwrap();
        })
        .unwrap();
    }

    /// Persistent collectives work under every forced algorithm,
    /// including the non-templatable ones (ring allreduce re-dispatches
    /// per start).
    #[test]
    fn persistent_collectives_under_forced_algorithms() {
        for alg in CollAlgorithm::ALL {
            Universe::run(4, DeviceKind::ShmFast, move |engine| {
                engine.set_coll_algorithm(Some(alg));
                let sum = Op::Predefined(PredefinedOp::Sum);
                let rank = engine.world_rank() as i32;
                let op = engine
                    .allreduce_init(COMM_WORLD, PrimitiveKind::Int, 4, &sum)
                    .unwrap();
                for round in 1..=2i32 {
                    engine
                        .coll_start_persistent(op, &ints(&[rank * round; 4]))
                        .unwrap();
                    let got = engine.coll_wait_persistent(op).unwrap().into_buffer();
                    assert_eq!(to_ints(&got), vec![6 * round; 4], "{alg}");
                }
                engine.coll_free_persistent(op).unwrap();
            })
            .unwrap();
        }
    }
}
