//! Reproduction of **Table 1** of the paper: one-way time for 1-byte
//! messages over every stack, in Shared-Memory and Distributed-Memory mode.
//!
//! ```text
//! cargo run --release -p mpi-bench --bin table1 [--calibrate-1999] [--reps N]
//! ```

use mpi_bench::pingpong::{run_pingpong, Calibration, Mode, PingPongSpec, Stack};
use mpi_bench::report::format_table1;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let calibration = if args.iter().any(|a| a == "--calibrate-1999") {
        Calibration::Era1999
    } else {
        Calibration::Structural
    };
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200usize);

    println!("mpiJava reproduction — Table 1 (1-byte message latency)");
    println!(
        "calibration: {}  reps per measurement: {reps}",
        match calibration {
            Calibration::Structural => "structural (no synthetic 1999 costs)",
            Calibration::Era1999 => "calibrated to the paper's 1999 hardware regime",
        }
    );
    println!();

    let mut rows = Vec::new();
    for mode in [Mode::SharedMemory, Mode::DistributedMemory] {
        let mut entries = Vec::new();
        for stack in Stack::all() {
            let spec = PingPongSpec {
                stack,
                mode,
                calibration,
                sizes: vec![1],
                reps: if mode == Mode::DistributedMemory {
                    reps.min(50)
                } else {
                    reps
                },
                warmup: 5,
                trace: None,
            };
            let points = run_pingpong(&spec);
            entries.push((stack, points[0].one_way_us));
            eprintln!(
                "  measured {:>8} {:>2}: {:>10.1} us",
                stack.label(),
                mode.label(),
                points[0].one_way_us
            );
        }
        rows.push((mode, entries));
    }

    println!("{}", format_table1(&rows));
    println!("Paper's Table 1 for comparison (one-way microseconds, 1999 hardware):");
    println!("      Wsock     WMPI-C     WMPI-J    MPICH-C    MPICH-J");
    println!("  SM  144.8       67.2      161.4      148.7      374.6");
    println!("  DM  244.9      623.9      689.7      679.1      961.2");
}
