//! CI gate for the observability subsystem's overhead claims: on the
//! shared-memory PingPong (the paper's §4.2 microbenchmark, wrapper
//! stack), tracing must be effectively free when `off` and cheap when
//! `counters`.
//!
//! ```text
//! cargo run --release -p mpi-bench --bin traceoverhead [-- REPS]
//! ```
//!
//! Method: the 1-byte latency (the regime where a per-message hook cost
//! would show) is measured round-robin — baseline `off`, a second
//! independent `off`, `counters`, `events` — for several rounds, and
//! each mode keeps its best (minimum) time. Gating on minima of
//! interleaved rounds cancels warm-up and host-load drift. Gates:
//!
//! * `off` vs `off` baseline within **3%** — the branch-on-enum hooks
//!   must leave the disabled path at measurement-noise cost;
//! * `counters` vs `off` within **10%** — two clock reads and a
//!   histogram bucket per message;
//! * `events` is reported (ring writes are bounded but not gated here;
//!   the trace smoke covers correctness).

use mpi_bench::{run_pingpong, Mode, PingPongSpec, Stack};
use mpijava::TraceConfig;

const ROUNDS: usize = 7;
const OFF_TOLERANCE: f64 = 1.03;
const COUNTERS_TOLERANCE: f64 = 1.10;

fn one_byte_latency_us(trace: TraceConfig, reps: usize) -> f64 {
    let spec = PingPongSpec::new(Stack::WmpiJava, Mode::SharedMemory)
        .cap_size(1)
        .reps(reps)
        .trace(trace);
    run_pingpong(&spec)[0].one_way_us
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("REPS must be a number"))
        .unwrap_or(2000);

    let mut best = [f64::INFINITY; 4];
    let modes = [
        ("off (baseline)", TraceConfig::off()),
        ("off", TraceConfig::off()),
        ("counters", TraceConfig::counters()),
        ("events", TraceConfig::events()),
    ];
    for round in 0..ROUNDS {
        for (slot, (_, trace)) in modes.iter().enumerate() {
            let us = one_byte_latency_us(*trace, reps);
            if us < best[slot] {
                best[slot] = us;
            }
        }
        println!(
            "round {}/{ROUNDS}: best us/msg = {:.3} | {:.3} | {:.3} | {:.3}",
            round + 1,
            best[0],
            best[1],
            best[2],
            best[3]
        );
    }

    let baseline = best[0];
    for (slot, (label, _)) in modes.iter().enumerate().skip(1) {
        println!(
            "{label:>14}: {:.3} us/msg ({:+.1}% vs baseline)",
            best[slot],
            (best[slot] / baseline - 1.0) * 100.0
        );
    }
    let off_ratio = best[1] / baseline;
    let counters_ratio = best[2] / baseline;
    assert!(
        off_ratio <= OFF_TOLERANCE,
        "off-mode pingpong regressed: {off_ratio:.3}x the off baseline (gate {OFF_TOLERANCE}x)"
    );
    assert!(
        counters_ratio <= COUNTERS_TOLERANCE,
        "counters-mode pingpong costs {counters_ratio:.3}x the off baseline (gate {COUNTERS_TOLERANCE}x)"
    );
    println!(
        "gate passed: off within {:.0}%, counters within {:.0}%",
        (OFF_TOLERANCE - 1.0) * 100.0,
        (COUNTERS_TOLERANCE - 1.0) * 100.0
    );
}
