//! Offline stand-in for the `bytes` crate: a cheaply cloneable,
//! reference-counted, immutable byte buffer with the `Bytes` API subset
//! this workspace uses. Cloning shares the underlying allocation, so a
//! frame payload can be handed to several queues without copying — the
//! property the transport layer relies on.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything).
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Copy `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn conversions_and_views() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), b"hello");
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
    }
}
