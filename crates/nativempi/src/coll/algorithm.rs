//! The collective algorithm identifiers and the `MPIJAVA_COLL_ALG`
//! override.
//!
//! Which wire pattern a collective uses is normally decided by the tuning
//! table in [`tuning`](super::tuning). For ablations the choice can be
//! pinned, either programmatically
//! ([`Engine::set_coll_algorithm`](crate::Engine::set_coll_algorithm),
//! `MpiRuntime::coll_algorithm` in the binding) or through the
//! [`COLL_ALG_ENV`] environment variable, which every engine reads once at
//! construction time. A pinned algorithm that cannot implement the
//! requested operation (see [`tuning::supported`](super::tuning::supported))
//! falls back to the tuned choice, so a forced run is always correct —
//! just possibly less interesting.

use std::fmt;
use std::str::FromStr;

/// Environment variable pinning the collective algorithm for ablations:
/// `MPIJAVA_COLL_ALG=linear|tree|rd|ring|pipelined|hier`. Unset, empty
/// or `auto` keeps the tuned size-aware selection. Every rank of a job
/// reads the same process environment, so the choice is symmetric by
/// construction.
pub const COLL_ALG_ENV: &str = "MPIJAVA_COLL_ALG";

/// The collective wire patterns the engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollAlgorithm {
    /// Root-centric fan-in/fan-out — the paper-faithful baseline the seed
    /// shipped with. O(P) serialized latency at the root, but the only
    /// pattern that reproduces the *sequential* rank-ordered reduction
    /// fold bit-for-bit (which floating `SUM`/`PROD` require).
    Linear,
    /// Binomial tree: barrier, bcast, gather, scatter, reduce. O(log P)
    /// rounds; reductions merge sibling rank blocks left-to-right, so any
    /// associative operation (all MPI operations, by contract) reduces in
    /// rank order.
    BinomialTree,
    /// Recursive doubling: barrier, allgather, allreduce on power-of-two
    /// communicators. O(log P) rounds with pairwise exchanges.
    RecursiveDoubling,
    /// Ring: allgather, reduce-scatter, allreduce (reduce-scatter +
    /// allgather). O(P) rounds but every link is busy every round, so it
    /// has the best bandwidth term for large payloads.
    Ring,
    /// Pipelined segmented broadcast: the payload streams along a chain
    /// in fixed-size segments, so interior ranks forward segment *k*
    /// while receiving *k+1* and every link carries the payload exactly
    /// once (see [`super::pipeline`]). Pin explicitly for huge payloads;
    /// the tuned selector stays on the plain tree because bcast
    /// selection is payload-blind.
    Pipelined,
    /// Leader-based hierarchical collectives for multi-fabric jobs
    /// (see [`super::hier`]): reduce/gather intra-node to the node
    /// leader over the cheap fabric, run the flat tree/recursive-
    /// doubling schedule among the leaders over the expensive one, then
    /// broadcast intra-node — the inter-node link carries each payload
    /// the minimum number of times. The tuned selector picks this
    /// automatically when the fabric's node map is non-trivial; on a
    /// flat (or one-rank-per-node) map it falls back to the flat
    /// algorithms.
    Hierarchical,
}

impl CollAlgorithm {
    /// Every algorithm, in ablation-sweep order.
    pub const ALL: [CollAlgorithm; 6] = [
        CollAlgorithm::Linear,
        CollAlgorithm::BinomialTree,
        CollAlgorithm::RecursiveDoubling,
        CollAlgorithm::Ring,
        CollAlgorithm::Pipelined,
        CollAlgorithm::Hierarchical,
    ];

    /// Position in [`CollAlgorithm::ALL`] (the trace-event encoding).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&a| a == self).unwrap_or(0)
    }

    /// Stable label used in benchmark output and accepted by [`FromStr`].
    pub fn label(self) -> &'static str {
        match self {
            CollAlgorithm::Linear => "linear",
            CollAlgorithm::BinomialTree => "tree",
            CollAlgorithm::RecursiveDoubling => "rd",
            CollAlgorithm::Ring => "ring",
            CollAlgorithm::Pipelined => "pipelined",
            CollAlgorithm::Hierarchical => "hier",
        }
    }

    /// Read the [`COLL_ALG_ENV`] override from the process environment.
    /// Unset, empty or `auto` mean "no override"; an unrecognized value
    /// is rejected *loudly* — a warning on stderr naming the accepted
    /// values — and falls back to the tuned selection, so a typo in an
    /// ablation run cannot silently measure the wrong algorithm.
    pub fn from_env() -> Option<CollAlgorithm> {
        match std::env::var(COLL_ALG_ENV) {
            Ok(value) => match CollAlgorithm::parse_override(&value) {
                Ok(choice) => choice,
                Err(()) => {
                    eprintln!(
                        "warning: {COLL_ALG_ENV}={value:?} is not a recognized collective \
                         algorithm (expected linear|tree|rd|ring|pipelined|hier|auto); \
                         falling back to the tuned selection"
                    );
                    None
                }
            },
            Err(_) => None,
        }
    }

    /// Parse an override value: `Ok(None)` for the explicit no-override
    /// spellings (empty, `auto`), `Ok(Some(_))` for a recognized
    /// algorithm, `Err(())` for anything else. Factored out of
    /// [`CollAlgorithm::from_env`] so the rejection rule is unit-testable
    /// without racing on the process environment.
    #[allow(clippy::result_unit_err)] // mirrors the FromStr impl's unit error
    pub fn parse_override(value: &str) -> std::result::Result<Option<CollAlgorithm>, ()> {
        let trimmed = value.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("auto") {
            return Ok(None);
        }
        trimmed.parse().map(Some)
    }
}

impl fmt::Display for CollAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for CollAlgorithm {
    type Err = ();

    fn from_str(s: &str) -> std::result::Result<CollAlgorithm, ()> {
        match s.trim().to_ascii_lowercase().as_str() {
            "linear" => Ok(CollAlgorithm::Linear),
            "tree" | "binomial" | "binomial-tree" => Ok(CollAlgorithm::BinomialTree),
            "rd" | "recursive-doubling" | "recursive_doubling" => {
                Ok(CollAlgorithm::RecursiveDoubling)
            }
            "ring" => Ok(CollAlgorithm::Ring),
            "pipelined" | "pipeline" | "segmented" => Ok(CollAlgorithm::Pipelined),
            "hier" | "hierarchical" => Ok(CollAlgorithm::Hierarchical),
            _ => Err(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_fromstr() {
        for alg in CollAlgorithm::ALL {
            assert_eq!(alg.label().parse::<CollAlgorithm>().unwrap(), alg);
        }
    }

    #[test]
    fn aliases_and_rejections() {
        assert_eq!(
            "recursive-doubling".parse::<CollAlgorithm>().unwrap(),
            CollAlgorithm::RecursiveDoubling
        );
        assert_eq!(
            "Binomial".parse::<CollAlgorithm>().unwrap(),
            CollAlgorithm::BinomialTree
        );
        assert!("auto".parse::<CollAlgorithm>().is_err());
        assert!("".parse::<CollAlgorithm>().is_err());
        assert!("quantum".parse::<CollAlgorithm>().is_err());
    }

    /// Satellite: the env-override parser distinguishes "explicitly no
    /// override" from "unrecognized" (which `from_env` warns about and
    /// rejects) instead of silently defaulting either way.
    #[test]
    fn env_override_parsing_rejects_unknown_values_explicitly() {
        // Recognized algorithms pass through.
        assert_eq!(
            CollAlgorithm::parse_override("ring"),
            Ok(Some(CollAlgorithm::Ring))
        );
        assert_eq!(
            CollAlgorithm::parse_override("  Binomial-Tree  "),
            Ok(Some(CollAlgorithm::BinomialTree))
        );
        // The deliberate no-override spellings.
        assert_eq!(CollAlgorithm::parse_override(""), Ok(None));
        assert_eq!(CollAlgorithm::parse_override("  "), Ok(None));
        assert_eq!(CollAlgorithm::parse_override("auto"), Ok(None));
        assert_eq!(CollAlgorithm::parse_override("AUTO"), Ok(None));
        // Anything else is an error, not a silent default.
        assert_eq!(CollAlgorithm::parse_override("quantum"), Err(()));
        assert_eq!(CollAlgorithm::parse_override("treee"), Err(()));
        assert_eq!(CollAlgorithm::parse_override("linear,ring"), Err(()));
    }
}
