//! Tests for the `MPI.OBJECT` extension (paper §2.2): sending arrays of
//! serializable objects through the wrapper.

use mpijava::serial::{ObjectInputStream, ObjectOutputStream};
use mpijava::{ErrorClass, MpiResult, MpiRuntime, Serializable};

#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: i32,
    samples: Vec<f64>,
    label: String,
    flag: Option<bool>,
}

impl Serializable for Record {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        out.write(&self.id);
        out.write(&self.samples);
        out.write(&self.label);
        out.write(&self.flag);
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        Ok(Record {
            id: input.read()?,
            samples: input.read()?,
            label: input.read()?,
            flag: input.read()?,
        })
    }
}

fn sample_records(seed: i32) -> Vec<Record> {
    (0..5)
        .map(|i| Record {
            id: seed * 10 + i,
            samples: (0..i as usize).map(|j| j as f64 * 0.5).collect(),
            label: format!("record-{seed}-{i}"),
            flag: if i % 2 == 0 { Some(true) } else { None },
        })
        .collect()
}

#[test]
fn objects_round_trip_between_ranks() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            if world.rank()? == 0 {
                let records = sample_records(3);
                world.send_object(&records, 0, records.len(), 1, 42)?;
            } else {
                let (records, status) = world.recv_object::<Record>(10, 0, 42)?;
                assert_eq!(status.source(), 0);
                assert_eq!(records, sample_records(3));
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn object_buffers_respect_offset_and_count() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            if world.rank()? == 0 {
                let records = sample_records(1);
                // Send only records[2..4].
                world.send_object(&records, 2, 2, 1, 1)?;
            } else {
                let (records, _) = world.recv_object::<Record>(2, 0, 1)?;
                assert_eq!(records.len(), 2);
                assert_eq!(records[0].id, 12);
                assert_eq!(records[1].id, 13);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn receiving_more_objects_than_expected_is_an_error() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            if world.rank()? == 0 {
                let records = sample_records(0);
                world.send_object(&records, 0, 5, 1, 2)?;
            } else {
                let err = world.recv_object::<Record>(2, 0, 2).unwrap_err();
                assert_eq!(err.class, ErrorClass::Truncate);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn broadcast_of_objects() {
    MpiRuntime::new(3)
        .run(|mpi| {
            let world = mpi.comm_world();
            let mine = if world.rank()? == 1 {
                sample_records(9)
            } else {
                Vec::new()
            };
            let everyone = world.bcast_object(&mine, 1)?;
            assert_eq!(everyone, sample_records(9));
            Ok(())
        })
        .unwrap();
}

#[test]
fn object_and_primitive_traffic_interleave() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            if rank == 0 {
                world.send(&[5i32], 0, 1, &mpijava::Datatype::int(), 1, 1)?;
                world.send_object(&sample_records(7), 0, 5, 1, 1)?;
                world.send(&[6i32], 0, 1, &mpijava::Datatype::int(), 1, 1)?;
            } else {
                let mut a = [0i32; 1];
                world.recv(&mut a, 0, 1, &mpijava::Datatype::int(), 0, 1)?;
                let (records, _) = world.recv_object::<Record>(5, 0, 1)?;
                let mut b = [0i32; 1];
                world.recv(&mut b, 0, 1, &mpijava::Datatype::int(), 0, 1)?;
                assert_eq!(a, [5]);
                assert_eq!(b, [6]);
                assert_eq!(records.len(), 5);
            }
            Ok(())
        })
        .unwrap();
}
