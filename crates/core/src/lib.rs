//! # mpijava — an object-oriented Rust interface to MPI
//!
//! A faithful reproduction of the API described in
//! *mpiJava: An Object-Oriented Java Interface to MPI*
//! (Baker, Carpenter, Fox, Ko, Lim — IPPS/SPDP 1999 workshop), implemented
//! in Rust on top of the [`mpi_native`] engine (the stand-in for the native
//! MPI libraries — MPICH, WMPI — the paper binds to through JNI).
//!
//! ## Class hierarchy (paper Figure 1)
//!
//! | mpiJava class | this crate |
//! |---|---|
//! | `MPI`        | [`MPI`] (per-rank environment object)        |
//! | `Comm`       | [`comm::Comm`]                               |
//! | `Intracomm`  | [`intracomm::Intracomm`]                     |
//! | `Cartcomm`   | [`cartcomm::Cartcomm`]                       |
//! | `Graphcomm`  | [`graphcomm::Graphcomm`]                     |
//! | `Group`      | [`group::Group`]                             |
//! | `Datatype`   | [`datatype::Datatype`]                       |
//! | `Status`     | [`status::Status`]                           |
//! | `Request`    | [`request::Request`]                         |
//! | `Prequest`   | [`request::Prequest`]                        |
//! | `Op`         | [`op::Op`]                                   |
//! | `MPIException` | [`exception::MPIException`]                |
//!
//! Java statics do not translate directly to a thread-per-rank Rust
//! program, so `MPI.Init` becomes [`MpiRuntime::run`]: it plays `mpirun`,
//! starting one thread per rank and handing each an [`MPI`] environment
//! whose `comm_world()` is that rank's `MPI.COMM_WORLD`.
//!
//! ```no_run
//! use mpijava::{Datatype, MpiRuntime};
//!
//! // The paper's Figure 3 "Hello there" program, two ranks.
//! MpiRuntime::new(2).run(|mpi| {
//!     let world = mpi.comm_world();
//!     if world.rank()? == 0 {
//!         let msg: Vec<u16> = "Hello, there".encode_utf16().collect();
//!         world.send(&msg, 0, msg.len(), &Datatype::char(), 1, 99)?;
//!     } else {
//!         let mut buf = vec![0u16; 20];
//!         let status = world.recv(&mut buf, 0, 20, &Datatype::char(), 0, 99)?;
//!         let n = status.get_count(&Datatype::char()).unwrap();
//!         println!("received: {}", String::from_utf16_lossy(&buf[..n]));
//!     }
//!     mpi.finalize()
//! }).unwrap();
//! ```
//!
//! ## The layers of the paper's Figure 4
//!
//! | paper layer | here |
//! |---|---|
//! | `MPIprog.java` + `import mpi.*` | your program + this crate |
//! | JNI C stubs | [`jni`] (simulated, measurable boundary) |
//! | Native MPI library | the [`mpi_native`] engine |
//! | OS / network | the `mpi-transport` devices (SHM, p4-style, TCP + link model) |
//!
//! ## Two API surfaces: classic (paper-faithful) and idiomatic ([`rs`])
//!
//! The classes above reproduce mpiJava's Java argument conventions
//! exactly — that is the paper's contract, and the IBM test suite runs
//! against it unchanged. The [`rs`] module layers an idiomatic Rust
//! surface on top: the [`rs::Communicator`] trait (implemented by
//! [`Intracomm`], [`Cartcomm`] and [`Graphcomm`]) whose methods are
//! slice-native and infer the [`Datatype`] from the buffer element type
//! ([`BufferElement::datatype`]). Both surfaces cross the same simulated
//! JNI boundary, so the paper's overhead measurements apply to either.
//!
//! | classic (Java conventions) | idiomatic ([`rs::Communicator`]) |
//! |---|---|
//! | `send(buf, off, count, datatype, dest, tag)` | [`send(&buf[off..off+count], dest, tag)`](rs::Communicator::send) |
//! | `recv(buf, off, count, datatype, src, tag)` | [`recv_into(&mut buf[..], src, tag)`](rs::Communicator::recv_into) |
//! | `sendrecv(sbuf, soff, scount, stype, dest, stag, rbuf, roff, rcount, rtype, src, rtag)` | [`sendrecv(&sbuf, dest, stag, &mut rbuf, src, rtag)`](rs::Communicator::sendrecv) |
//! | `isend(buf, off, count, datatype, dest, tag)` → [`Request`] | [`isend(&buf, dest, tag)`](rs::Communicator::isend) → [`rs::TypedRequest`] |
//! | `irecv(buf, off, count, datatype, src, tag)` → [`Request`] | [`irecv_into(&mut buf, src, tag)`](rs::Communicator::irecv_into) → [`rs::TypedRequest`] |
//! | `Request::wait_all(&mut [...])` | [`TypedRequest::wait_all(batch)`](request::TypedRequest::wait_all), or drop the handles |
//! | `bcast(buf, off, count, datatype, root)` | [`broadcast(&mut buf, root)`](rs::Communicator::broadcast) |
//! | `reduce(sbuf, soff, rbuf, roff, count, datatype, op, root)` | [`reduce_into(&sbuf, &mut rbuf, Op::sum(), root)`](rs::Communicator::reduce_into) |
//! | `allreduce(sbuf, soff, rbuf, roff, count, datatype, op)` | [`all_reduce(&sbuf, &mut rbuf, Op::sum())`](rs::Communicator::all_reduce) |
//! | `scan(sbuf, soff, rbuf, roff, count, datatype, op)` | [`scan_into(&sbuf, &mut rbuf, Op::sum())`](rs::Communicator::scan_into) |
//! | `gather(sbuf, soff, scount, stype, rbuf, roff, rcount, rtype, root)` | [`gather_into(&sbuf, &mut rbuf, root)`](rs::Communicator::gather_into) |
//! | `allgather(sbuf, soff, scount, stype, rbuf, roff, rcount, rtype)` | [`all_gather(&sbuf, &mut rbuf)`](rs::Communicator::all_gather) |
//! | `scatter(sbuf, soff, scount, stype, rbuf, roff, rcount, rtype, root)` | [`scatter_from(&sbuf, &mut rbuf, root)`](rs::Communicator::scatter_from) |
//! | `alltoall(sbuf, soff, scount, stype, rbuf, roff, rcount, rtype)` | [`all_to_all(&sbuf, &mut rbuf)`](rs::Communicator::all_to_all) |
//! | `send_object(&[obj], 0, 1, dest, tag)` | [`send_obj(&obj, dest, tag)`](rs::Communicator::send_obj) |
//! | `recv_object::<T>(1, src, tag)` | [`recv_obj::<T>(src, tag)`](rs::Communicator::recv_obj) |
//! | `bcast_object(&[obj], root)` | [`broadcast_obj(&obj, root)`](rs::Communicator::broadcast_obj) |
//! | `status.get_count(&Datatype::char())` | [`status.count_elements::<u16>()`](Status::count_elements) |
//! | — (mpiJava is MPI-1: no one-sided ops) | [`win_create(&mut buf)`](rs::Communicator::win_create) → [`rs::Window`] with `put` / `get` / `accumulate` and `fence` / `lock` / `flush` / `unlock` epochs |
//! | — (no neighborhood collectives) | [`topo_neighbors()`](rs::Communicator::topo_neighbors), [`neighbor_all_gather(&buf)`](rs::Communicator::neighbor_all_gather), [`neighbor_all_to_all(&buf)`](rs::Communicator::neighbor_all_to_all) on `Cartcomm` / `Graphcomm` |
//! | `shift(direction, disp)` → `ShiftParms` | [`cart_shift(direction, disp)`](rs::CartCommunicator::cart_shift) → `(src, dst)` |
//! | `coords(rank)` / `get().coords` | [`cart_coords(rank)`](rs::CartCommunicator::cart_coords) / [`my_coords()`](rs::CartCommunicator::my_coords) |
//! | `neighbours(rank)` | [`neighbors()`](rs::GraphCommunicator::neighbors) (own adjacency) |
//!
//! The classic names stay reachable on the same objects (via `Deref`)
//! as long as the trait is not imported; see the [`rs`] module docs for
//! the one shadowing caveat when both styles share a source file.
//!
//! ### Nonblocking collectives: the third column
//!
//! Every collective additionally has a futures-style nonblocking form on
//! the idiomatic surface. The returned [`rs::TypedRequest`] is the same
//! handle type the point-to-point `isend`/`irecv_into` return, so one
//! heterogeneous [`TypedRequest::wait_all`](request::TypedRequest::wait_all)
//! batch can mix the two. Blocking collectives are themselves
//! `start + wait` over the *same* engine schedules (see
//! `mpi_native::coll::nb`), so the two forms cannot diverge; results are
//! byte-identical, enforced by the cross-algorithm equivalence suite.
//!
//! | classic (blocking) | idiomatic blocking | idiomatic nonblocking |
//! |---|---|---|
//! | `barrier()` | [`barrier()`](rs::Communicator::barrier) | [`ibarrier()`](rs::Communicator::ibarrier) |
//! | `bcast(buf, off, count, ty, root)` | [`broadcast(&mut buf, root)`](rs::Communicator::broadcast) | [`ibroadcast(&mut buf, root)`](rs::Communicator::ibroadcast) |
//! | `reduce(...)` | [`reduce_into(...)`](rs::Communicator::reduce_into) | [`ireduce_into(...)`](rs::Communicator::ireduce_into) |
//! | `allreduce(...)` | [`all_reduce(...)`](rs::Communicator::all_reduce) | [`iall_reduce(...)`](rs::Communicator::iall_reduce) |
//! | `gather(...)` | [`gather_into(...)`](rs::Communicator::gather_into) | [`igather_into(...)`](rs::Communicator::igather_into) |
//! | `allgather(...)` | [`all_gather(...)`](rs::Communicator::all_gather) | [`iall_gather(...)`](rs::Communicator::iall_gather) |
//! | `scatter(...)` | [`scatter_from(...)`](rs::Communicator::scatter_from) | [`iscatter_from(...)`](rs::Communicator::iscatter_from) |
//! | `alltoall(...)` | [`all_to_all(...)`](rs::Communicator::all_to_all) | [`iall_to_all(...)`](rs::Communicator::iall_to_all) |
//! | `reduce_scatter(...)` | — (classic only) | [`ireduce_scatter_into(...)`](rs::Communicator::ireduce_scatter_into) (equal counts) |
//! | `scan(...)` | [`scan_into(...)`](rs::Communicator::scan_into) | [`iscan_into(...)`](rs::Communicator::iscan_into) |
//! | — (no classic neighborhood ops) | [`neighbor_all_gather(...)`](rs::Communicator::neighbor_all_gather) | [`ineighbor_all_gather(...)`](rs::Communicator::ineighbor_all_gather) |
//! | — | [`neighbor_all_to_all(...)`](rs::Communicator::neighbor_all_to_all) | [`ineighbor_all_to_all(...)`](rs::Communicator::ineighbor_all_to_all) |
//!
//! ### Persistent operations: the fourth column
//!
//! Operations issued repeatedly with the same shape — the halo exchange
//! of an iterative solver, the allreduce of every optimizer step — pay
//! the argument validation, algorithm selection, and (for collectives)
//! schedule construction on *every* call. The persistent forms hoist
//! that one-time cost into an `*_init` call and make each iteration a
//! cheap [`start()`](rs::PersistentRequest::start) /
//! [`wait()`](rs::PersistentRequest::wait) pair over a
//! [`rs::PersistentRequest`], mirroring `MPI_Send_init` / `MPI_Start`
//! and the MPI-4 persistent collectives. Collective `*_init` calls are
//! collective and pin a pre-built engine schedule (see
//! `mpi_native::coll::nb`'s schedule cache), so `start()` replays the
//! wire pattern without rebuilding it.
//!
//! | blocking | nonblocking | persistent (init + start/wait) |
//! |---|---|---|
//! | `send(...)` | [`isend(...)`](rs::Communicator::isend) | [`send_init(...)`](rs::Communicator::send_init) |
//! | `recv_into(...)` | [`irecv_into(...)`](rs::Communicator::irecv_into) | [`recv_init(...)`](rs::Communicator::recv_init) |
//! | `barrier()` | [`ibarrier()`](rs::Communicator::ibarrier) | [`barrier_init()`](rs::Communicator::barrier_init) |
//! | `broadcast(...)` | [`ibroadcast(...)`](rs::Communicator::ibroadcast) | [`broadcast_init(...)`](rs::Communicator::broadcast_init) |
//! | `reduce_into(...)` | [`ireduce_into(...)`](rs::Communicator::ireduce_into) | [`reduce_init_into(...)`](rs::Communicator::reduce_init_into) |
//! | `all_reduce(...)` | [`iall_reduce(...)`](rs::Communicator::iall_reduce) | [`all_reduce_init(...)`](rs::Communicator::all_reduce_init) |
//! | `all_gather(...)` | [`iall_gather(...)`](rs::Communicator::iall_gather) | [`all_gather_init(...)`](rs::Communicator::all_gather_init) |
//!
//! The classic surface keeps its paper-faithful persistent pair:
//! `Comm.Send_init` / `Comm.Recv_init` returning a [`Prequest`].
//!
//! ### Progress: manual (default) and background-thread
//!
//! By default progress happens inside `test()`/`wait()` calls (and
//! inside any blocking engine entry point): interleave occasional
//! `test()` calls with computation to overlap communication and
//! computation — the `icollectives` overlap cells of the collectives
//! benchmark measure exactly that.
//!
//! With [`MpiRuntime::progress`]`(`[`ProgressMode::Thread`]`)` (or
//! `MPIJAVA_PROGRESS=thread` in the environment) each rank additionally
//! runs a background progress thread that keeps draining the engine —
//! nonblocking-collective schedules, the rendezvous/segment pipeline,
//! and passive-target RMA — while the application computes, so overlap
//! requires **zero** manual `test()` calls and a one-sided `lock`/`put`
//! hits a compute-bound target without waiting for it to enter an MPI
//! call. The engine is serialized behind a mutex, so the binding
//! provides [`ThreadLevel::Multiple`] regardless of the level requested
//! via [`MpiRuntime::thread_level`] (the progress thread itself only
//! needs `Serialized`).
//!
//! ### Observability: counters, metrics, and cross-rank timelines
//!
//! The engine underneath every communicator carries an MPI_T-style
//! observability subsystem (mpiJava predates the MPI_T tools interface
//! by over a decade; this is the one deliberate modernization). Three
//! modes, selected per run by [`MpiRuntime::trace`] /
//! [`UniverseConfig::with_trace`](mpi_native::UniverseConfig) or the
//! `MPIJAVA_TRACE` environment variable
//! (`off | counters | events[:capacity]`; programmatic wins):
//!
//! | mode | cost | what you get |
//! |---|---|---|
//! | `off` (default) | one branch per hook | [`EngineStats`] counters only |
//! | `counters` | + clock reads | latency/duration histograms, transport frame counters |
//! | `events` | + ring writes | per-rank event ring, dumped to JSONL at finalize |
//!
//! Reading them, cheapest to richest:
//!
//! * [`rs::Communicator::stats`] (or [`MPI::engine_stats`]) — the raw
//!   [`EngineStats`] counters: eager vs rendezvous sends, posted vs
//!   unexpected matches, bytes moved/copied, RMA and schedule-cache
//!   activity. Always on.
//! * [`rs::Communicator::metrics_snapshot`] (or
//!   [`MPI::metrics_snapshot`]) — a [`MetricsSnapshot`] of named
//!   performance variables: every counter as an `engine.*` pvar,
//!   queue-depth gauges (`p2p.posted_depth`, `coll.outstanding`, …),
//!   per-peer liveness gauges (`failure.peer<N>.heartbeat_age_ms`),
//!   `transport.*` frame counters, and the `p2p.latency` /
//!   `coll.round_duration` histograms.
//!   [`rs::Communicator::metrics_reset`] clears the resettables;
//!   monotonic counters are never reset.
//! * In `events` mode every rank records p2p protocol intervals,
//!   collective rounds, RMA epochs, and failure-detector observations
//!   into a fixed-capacity ring (allocation-free, overwrite-oldest).
//!   [`MPI::finalize`] dumps it as `trace-rank<NNNNN>.jsonl` into
//!   `MPIJAVA_TRACE_DIR` / [`MpiRuntime::trace_dir`] (on the spool
//!   device, `<spool>/trace` by default), and the `tracemerge` binary
//!   in `mpi-bench` merges all ranks into one wall-clock-aligned Chrome
//!   `trace_event` timeline — one track per rank, loadable in
//!   `chrome://tracing` or Perfetto. A rank that dies without
//!   finalizing can still be post-mortemed: survivors' dumps record its
//!   last observed heartbeats and the `rank_failed` declaration, and
//!   [`MPI::dump_trace_to`] force-dumps from a signal-handler-style
//!   escape hatch.

pub mod buffer;
pub mod cartcomm;
pub mod comm;
pub mod datatype;
pub mod exception;
pub mod graphcomm;
pub mod group;
pub mod intracomm;
pub mod jni;
pub mod op;
pub mod request;
pub mod rs;
pub mod serial;
pub mod status;
pub mod window;

pub use buffer::BufferElement;
pub use cartcomm::{CartParms, Cartcomm, ShiftParms};
pub use comm::Comm;
pub use datatype::Datatype;
pub use exception::{MPIException, MpiResult};
pub use graphcomm::{GraphParms, Graphcomm};
pub use group::Group;
pub use intracomm::Intracomm;
pub use jni::{JniConfig, JniStatsSnapshot, MarshalMode};
pub use op::Op;
pub use request::{PersistentRequest, Prequest, Request, TypedRequest};
pub use serial::{ObjectInputStream, ObjectOutputStream, Serializable};
pub use status::Status;
pub use window::{GetToken, Window};

// Re-export the pieces of the lower layers that appear in this crate's API.
pub use mpi_native::env::{
    ProgressMode, FAULT_ENV, LEASE_MS_ENV, PROGRESS_ENV, SPOOL_DIR_ENV, TRACE_DIR_ENV, TRACE_ENV,
};
pub use mpi_native::{
    CollAlgorithm, CompareResult, EngineStats, ErrorClass, EventKind, EventPhase, HistSnapshot,
    MetricsSnapshot, PrimitiveKind, Pvar, PvarClass, TraceConfig, TraceEvent, TraceMode, WaitClass,
};
pub use mpi_transport::{
    DeviceKind, DeviceProfile, FaultAction, FaultPlan, NetworkModel, NodeMap, DEFAULT_LEASE,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mpi_native::comm::{COMM_SELF, COMM_WORLD};
use mpi_native::Engine;
use parking_lot::Mutex;

/// Per-rank shared state: the engine (native MPI library) plus the
/// simulated JNI boundary. Every class of the binding holds an
/// `Arc<RankEnv>`.
pub(crate) struct RankEnv {
    pub(crate) engine: Mutex<Engine>,
    pub(crate) jni: jni::JniBoundary,
}

/// Thread support levels of `MPI_Init_thread` (MPI-2 §8.7).
///
/// The engine sits behind a per-rank mutex, so every call is internally
/// serialized and the binding always *provides*
/// [`Multiple`](ThreadLevel::Multiple) — the requested level passed to
/// [`MpiRuntime::thread_level`] is a floor, never a cap. The background
/// progress thread ([`ProgressMode::Thread`]) needs `Serialized`
/// internally, which is therefore always available.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadLevel {
    /// `MPI_THREAD_SINGLE`: only one thread will execute.
    #[default]
    Single,
    /// `MPI_THREAD_FUNNELED`: only the main thread makes MPI calls.
    Funneled,
    /// `MPI_THREAD_SERIALIZED`: any thread, one at a time.
    Serialized,
    /// `MPI_THREAD_MULTIPLE`: any thread, concurrently.
    Multiple,
}

/// Handle to one rank's background progress thread
/// ([`ProgressMode::Thread`]): a loop that opportunistically takes the
/// engine lock and drives one full progress sweep — incoming frames,
/// nonblocking-collective schedules, the rendezvous/segment pipeline,
/// and the RMA windows — then yields. Blocking MPI calls are untouched
/// (they progress the engine themselves while holding the lock); the
/// thread's contribution is progress while the application computes
/// *outside* MPI calls. Dropping the handle stops and joins the thread.
struct ProgressThread {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressThread {
    /// Interval between polls while the engine is idle (no in-flight
    /// work) or the application thread holds the lock (a blocking call
    /// progresses the engine itself).
    const POLL_INTERVAL: std::time::Duration = std::time::Duration::from_micros(20);
    /// Interval closing each busy-poll burst while work *is* in
    /// flight. The thread then polls in bursts: [`Self::BUSY_BURST`]
    /// yield-separated polls (near-zero latency whenever a core is
    /// free, so due frames release on time) followed by one short
    /// sleep (so a rank-per-core-starved machine still gets its
    /// application threads scheduled — pure spinning would crowd them
    /// out and cost more than the poll latency it saves).
    const BUSY_POLL_INTERVAL: std::time::Duration = std::time::Duration::from_micros(5);
    /// Yield-separated polls per busy burst.
    const BUSY_BURST: u32 = 2;

    fn spawn(env: Arc<RankEnv>) -> ProgressThread {
        let stop = Arc::new(AtomicBool::new(false));
        let observed = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mpijava-progress".into())
            .spawn(move || {
                let mut burst = 0u32;
                while !observed.load(Ordering::Relaxed) {
                    let mut hot = false;
                    if let Some(mut engine) = env.engine.try_lock() {
                        if engine.is_finalized() || engine.is_aborted() {
                            break;
                        }
                        // A progress error (e.g. a peer's abort landing)
                        // surfaces at the application's next engine
                        // call; the thread just keeps the pump running.
                        let _ = engine.progress_poll();
                        engine.note_progress_thread_poll();
                        hot = engine.background_work_pending();
                    }
                    if hot && burst < Self::BUSY_BURST {
                        burst += 1;
                        std::thread::yield_now();
                    } else {
                        burst = 0;
                        std::thread::sleep(if hot {
                            Self::BUSY_POLL_INTERVAL
                        } else {
                            Self::POLL_INTERVAL
                        });
                    }
                }
            })
            .expect("spawn progress thread");
        ProgressThread {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The `MPI` class of the binding: global services for one rank
/// (the paper's `MPI.Init`, `MPI.Finalize`, `MPI.COMM_WORLD`, `MPI.Wtime`,
/// constants, and the predefined datatypes of Figure 2 via [`Datatype`]).
pub struct MPI {
    env: Arc<RankEnv>,
    world: Intracomm,
    self_comm: Intracomm,
    thread_level: ThreadLevel,
}

impl MPI {
    /// `MPI.ANY_SOURCE`
    pub const ANY_SOURCE: i32 = mpi_native::ANY_SOURCE;
    /// `MPI.ANY_TAG`
    pub const ANY_TAG: i32 = mpi_native::ANY_TAG;
    /// `MPI.PROC_NULL`
    pub const PROC_NULL: i32 = mpi_native::PROC_NULL;
    /// `MPI.UNDEFINED`
    pub const UNDEFINED: i32 = mpi_native::UNDEFINED;
    /// `MPI.TAG_UB`
    pub const TAG_UB: i32 = mpi_native::types::TAG_UB;

    /// Wrap an already-initialized engine (this is `MPI.Init`; normally
    /// called for you by [`MpiRuntime::run`]).
    pub fn init(engine: Engine, jni_config: JniConfig) -> MPI {
        Self::init_thread(engine, jni_config, ThreadLevel::Single).0
    }

    /// `MPI.Init_thread(required)`: like [`init`](MPI::init), also
    /// returning the *provided* thread level. The engine is serialized
    /// behind a per-rank mutex, so every request is granted
    /// [`ThreadLevel::Multiple`].
    pub fn init_thread(
        engine: Engine,
        jni_config: JniConfig,
        required: ThreadLevel,
    ) -> (MPI, ThreadLevel) {
        let provided = required.max(ThreadLevel::Multiple);
        let env = Arc::new(RankEnv {
            engine: Mutex::new(engine),
            jni: jni::JniBoundary::new(jni_config),
        });
        let world = Intracomm::new(Arc::clone(&env), COMM_WORLD);
        let self_comm = Intracomm::new(Arc::clone(&env), COMM_SELF);
        (
            MPI {
                env,
                world,
                self_comm,
                thread_level: provided,
            },
            provided,
        )
    }

    /// `MPI.Query_thread()`: the provided thread support level
    /// ([`ThreadLevel::Multiple`] — see [`MPI::init_thread`]).
    pub fn query_thread(&self) -> ThreadLevel {
        self.thread_level
    }

    /// `MPI.COMM_WORLD`.
    pub fn comm_world(&self) -> Intracomm {
        self.world.clone()
    }

    /// `MPI.COMM_SELF`.
    pub fn comm_self(&self) -> Intracomm {
        self.self_comm.clone()
    }

    /// `MPI.Wtime()`.
    pub fn wtime(&self) -> f64 {
        self.env.engine.lock().wtime()
    }

    /// `MPI.Wtick()`.
    pub fn wtick(&self) -> f64 {
        self.env.engine.lock().wtick()
    }

    /// `MPI.Get_processor_name()`.
    pub fn get_processor_name(&self) -> String {
        self.env.engine.lock().processor_name().to_string()
    }

    /// `MPI.Initialized()`.
    pub fn initialized(&self) -> bool {
        !self.env.engine.lock().is_finalized()
    }

    /// `MPI.Finalize()`.
    pub fn finalize(&self) -> MpiResult<()> {
        self.env.jni.enter("MPI.Finalize");
        Ok(self.env.engine.lock().finalize()?)
    }

    /// `MPI.Buffer_attach(size)` (for `Bsend`).
    pub fn buffer_attach(&self, size: usize) -> MpiResult<()> {
        self.env.jni.enter("MPI.Buffer_attach");
        Ok(self.env.engine.lock().buffer_attach(size)?)
    }

    /// `MPI.Buffer_detach()`: returns the detached capacity.
    pub fn buffer_detach(&self) -> MpiResult<usize> {
        self.env.jni.enter("MPI.Buffer_detach");
        Ok(self.env.engine.lock().buffer_detach()?)
    }

    /// Counters of the simulated JNI boundary (calls, bytes marshalled).
    pub fn jni_stats(&self) -> JniStatsSnapshot {
        self.env.jni.stats()
    }

    /// Counters of the underlying engine (eager vs rendezvous, bytes).
    pub fn engine_stats(&self) -> EngineStats {
        self.env.engine.lock().stats().clone()
    }

    /// MPI_T-style snapshot of this rank's performance variables:
    /// every [`EngineStats`] counter as a named pvar, queue-depth and
    /// liveness gauges, transport frame counters (when enabled), and the
    /// latency histograms. See `mpi_native::trace` for the registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.env.engine.lock().metrics_snapshot()
    }

    /// Reset the resettable metrics (histograms and the trace ring);
    /// monotonic engine counters are unaffected.
    pub fn metrics_reset(&self) {
        self.env.engine.lock().metrics_reset()
    }

    /// Dump this rank's trace ring as JSONL into `dir`
    /// (`trace-rank{NNNNN}.jsonl`), regardless of whether a trace
    /// directory was configured — the escape hatch for a rank that will
    /// never reach `finalize` (e.g. a fault-drill victim). Returns the
    /// file written.
    pub fn dump_trace_to(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> MpiResult<std::path::PathBuf> {
        Ok(self.env.engine.lock().dump_trace_to(dir)?)
    }

    /// Direct access to the engine, used by the benchmark harness to run
    /// the "native C MPI" baseline on exactly the same substrate the
    /// wrapper uses (the paper's WMPI-C / MPICH-C series).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.env.engine.lock())
    }
}

/// Job launcher: plays `mpirun` + `MPI.Init` for an SPMD closure.
#[derive(Debug, Clone)]
pub struct MpiRuntime {
    size: usize,
    device: DeviceKind,
    network: NetworkModel,
    profile: DeviceProfile,
    nodes: Option<NodeMap>,
    inter_network: NetworkModel,
    inter_profile: DeviceProfile,
    eager_threshold: Option<usize>,
    segment_bytes: Option<usize>,
    coll_algorithm: Option<CollAlgorithm>,
    progress: Option<ProgressMode>,
    spool_dir: Option<std::path::PathBuf>,
    lease: Option<std::time::Duration>,
    faults: Option<FaultPlan>,
    trace: Option<TraceConfig>,
    trace_dir: Option<std::path::PathBuf>,
    thread_level: ThreadLevel,
    jni: JniConfig,
}

impl MpiRuntime {
    /// `size` ranks over the optimised shared-memory device.
    pub fn new(size: usize) -> MpiRuntime {
        MpiRuntime {
            size,
            device: DeviceKind::ShmFast,
            network: NetworkModel::unshaped(),
            profile: DeviceProfile::default(),
            nodes: None,
            inter_network: NetworkModel::unshaped(),
            inter_profile: DeviceProfile::default(),
            eager_threshold: None,
            segment_bytes: None,
            coll_algorithm: None,
            progress: None,
            spool_dir: None,
            lease: None,
            faults: None,
            trace: None,
            trace_dir: None,
            thread_level: ThreadLevel::Single,
            jni: JniConfig::default(),
        }
    }

    /// Select the transport device (`ShmFast` ~ WMPI, `ShmP4` ~ MPICH,
    /// `Tcp` ~ the distributed-memory configuration).
    pub fn device(mut self, device: DeviceKind) -> Self {
        self.device = device;
        self
    }

    /// Attach a link model (used for DM-mode experiments).
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Attach a synthetic per-message device cost (calibration).
    pub fn profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Place ranks on nodes (see [`NodeMap`]): the `Hybrid` device
    /// routes intra-node traffic over the shm-class path and inter-node
    /// traffic over the modelled link, the engine's topology queries
    /// report the placement, and the collective tuner auto-selects the
    /// hierarchical algorithms when the map is non-trivial. Takes
    /// precedence over the `MPIJAVA_NODES` environment override.
    pub fn nodes(mut self, nodes: NodeMap) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Attach an inter-node link model (hybrid device).
    pub fn inter_network(mut self, network: NetworkModel) -> Self {
        self.inter_network = network;
        self
    }

    /// Attach an inter-node cost profile (hybrid device).
    pub fn inter_profile(mut self, profile: DeviceProfile) -> Self {
        self.inter_profile = profile;
        self
    }

    /// Override the eager/rendezvous threshold.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = Some(bytes);
        self
    }

    /// Enable segmented (pipelined) large-message transfers with this
    /// segment size on every rank (rendezvous payloads stream as
    /// zero-copy segment frames; the `pipelined` bcast algorithm streams
    /// them down the tree). Equivalent to `MPIJAVA_SEGMENT_BYTES`.
    pub fn segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = Some(bytes);
        self
    }

    /// Pin the collective algorithm on every rank, overriding the
    /// size-aware tuning table (ablations; see `mpi_native::coll`). The
    /// classic and idiomatic collective surfaces both route through the
    /// engine's selector, so the pin affects either API uniformly.
    pub fn coll_algorithm(mut self, alg: CollAlgorithm) -> Self {
        self.coll_algorithm = Some(alg);
        self
    }

    /// Select the progress model (see [`ProgressMode`]):
    /// [`Thread`](ProgressMode::Thread) runs one background progress
    /// thread per rank, so nonblocking operations, rendezvous pipelines
    /// and passive-target RMA advance while the application computes —
    /// zero manual `test()` calls. Takes precedence over the
    /// `MPIJAVA_PROGRESS` environment override; unset defaults to
    /// [`Manual`](ProgressMode::Manual).
    pub fn progress(mut self, mode: ProgressMode) -> Self {
        self.progress = Some(mode);
        self
    }

    /// Keep spooled frames under `dir` across process lifetimes
    /// ([`DeviceKind::Spool`] only) — the substrate for late-join and
    /// checkpoint/restart. Takes precedence over the
    /// `MPIJAVA_SPOOL_DIR` environment override; unset means an
    /// ephemeral per-job temp directory.
    pub fn spool_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spool_dir = Some(dir.into());
        self
    }

    /// Set the heartbeat lease for failure detection: a rank whose lease
    /// goes unrefreshed for longer than this is reported dead to its
    /// peers, and blocking calls naming it error with
    /// [`ErrorClass::RankFailed`] instead of hanging. Takes precedence
    /// over the `MPIJAVA_LEASE_MS` environment override; unset keeps
    /// [`DEFAULT_LEASE`].
    pub fn lease(mut self, lease: std::time::Duration) -> Self {
        self.lease = Some(lease);
        self
    }

    /// Inject a deterministic [`FaultPlan`] (kill/drop/delay — testing
    /// tool). Takes precedence over the `MPIJAVA_FAULT` environment
    /// override.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Select the observability mode on every rank (see [`TraceConfig`]):
    /// `counters` adds latency histograms and transport frame counters
    /// to the always-on [`EngineStats`]; `events` additionally records
    /// begin/end/instant events into a per-rank ring dumped as JSONL at
    /// finalize. Takes precedence over the `MPIJAVA_TRACE` environment
    /// override; unset defaults to [`TraceMode::Off`].
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Directory for the per-rank JSONL trace dumps (created if
    /// needed). Takes precedence over the `MPIJAVA_TRACE_DIR`
    /// environment override; unset falls back to `<spool>/trace` on the
    /// spool device, else no automatic dump.
    pub fn trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Request a thread support level (`MPI_Init_thread`'s `required`).
    /// The binding always provides [`ThreadLevel::Multiple`] (the engine
    /// is mutex-serialized), so every request is honored;
    /// [`MPI::query_thread`] reports the provided level.
    pub fn thread_level(mut self, level: ThreadLevel) -> Self {
        self.thread_level = level;
        self
    }

    /// Configure the simulated JNI boundary (marshal mode, per-call cost).
    pub fn jni(mut self, config: JniConfig) -> Self {
        self.jni = config;
        self
    }

    /// Start `size` ranks, each running `f` with its own [`MPI`]
    /// environment, and return the per-rank results in rank order.
    pub fn run<T, F>(&self, f: F) -> MpiResult<Vec<T>>
    where
        T: Send,
        F: Fn(&MPI) -> MpiResult<T> + Send + Sync,
    {
        let config = mpi_native::UniverseConfig {
            size: self.size,
            device: self.device,
            network: self.network,
            profile: self.profile,
            eager_threshold: self.eager_threshold,
            segment_bytes: self.segment_bytes,
            coll_algorithm: self.coll_algorithm,
            nodes: self.nodes.clone(),
            inter_profile: self.inter_profile,
            inter_network: self.inter_network,
            progress: self.progress,
            processor_name_prefix: None,
            spool_dir: self.spool_dir.clone(),
            lease: self.lease,
            faults: self.faults.clone(),
            trace: self.trace,
            trace_dir: self.trace_dir.clone(),
        };
        let mut fabric_config = mpi_transport::FabricConfig::new(self.size, self.device)
            .with_network(self.network)
            .with_profile(self.profile)
            .with_nodes(config.resolved_nodes())
            .with_inter_network(self.inter_network)
            .with_inter_profile(self.inter_profile)
            .with_lease(config.resolved_lease())
            .with_faults(config.resolved_faults());
        if let Some(dir) = config.resolved_spool_dir() {
            fabric_config = fabric_config.with_spool_dir(dir);
        }
        let trace = config.resolved_trace();
        let trace_dir = config.resolved_trace_dir();
        if trace.mode != TraceMode::Off {
            // Any observability beyond the engine counters also turns on
            // the transport-level frame counters.
            fabric_config = fabric_config.with_frame_counters(true);
        }
        let progress = config.resolved_progress();
        let _ = config; // UniverseConfig documents the mapping; we build directly.
        let endpoints = mpi_transport::Fabric::build(fabric_config)
            .map_err(mpi_native::MpiError::from)?
            .into_endpoints();
        let f = &f;
        let jni = self.jni;
        let eager = self.eager_threshold;
        let segment = self.segment_bytes;
        let coll = self.coll_algorithm;
        let thread_level = self.thread_level;
        let trace_set = self.trace.is_some();
        let trace_dir = &trace_dir;

        let results: Vec<MpiResult<T>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for endpoint in endpoints {
                handles.push(scope.spawn(move || {
                    let mut engine = Engine::new(endpoint);
                    if let Some(bytes) = eager {
                        engine.set_eager_threshold(bytes);
                    }
                    if segment.is_some() {
                        engine.set_segment_bytes(segment);
                    }
                    if coll.is_some() {
                        engine.set_coll_algorithm(coll);
                    }
                    // Engine::new already folded the MPIJAVA_TRACE env in;
                    // only override when configured programmatically.
                    if trace_set {
                        engine.set_trace(trace);
                    }
                    if let Some(dir) = trace_dir {
                        engine.set_trace_dir(dir.clone());
                    }
                    let (mpi, _provided) = MPI::init_thread(engine, jni, thread_level);
                    // Background progress: one thread per rank, stopped
                    // and joined (via the guard's drop) before the
                    // rank's result is returned.
                    let progress_guard = (progress == ProgressMode::Thread)
                        .then(|| ProgressThread::spawn(Arc::clone(&mpi.env)));
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mpi)));
                    drop(progress_guard);
                    match outcome {
                        Ok(result) => result,
                        Err(panic) => {
                            // Unblock the other ranks, then report.
                            mpi.with_engine(|e| {
                                let _ = e.abort(COMM_WORLD, 1);
                            });
                            let msg = panic
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "rank panicked".to_string());
                            Err(MPIException::new(ErrorClass::Aborted, msg))
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(MPIException::new(ErrorClass::Intern, "rank thread crashed"))
                    })
                })
                .collect()
        });

        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_there_figure_3() {
        // The minimal program of the paper's Figure 3, adapted to Rust.
        MpiRuntime::new(2)
            .run(|mpi| {
                let world = mpi.comm_world();
                let myrank = world.rank()?;
                if myrank == 0 {
                    let message: Vec<u16> = "Hello, there".encode_utf16().collect();
                    world.send(&message, 0, message.len(), &Datatype::char(), 1, 99)?;
                } else {
                    let mut message = vec![0u16; 20];
                    let status = world.recv(&mut message, 0, 20, &Datatype::char(), 0, 99)?;
                    let n = status.get_count(&Datatype::char()).unwrap();
                    assert_eq!(String::from_utf16_lossy(&message[..n]), "Hello, there");
                }
                mpi.finalize()?;
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn constants_match_the_engine() {
        assert_eq!(MPI::ANY_SOURCE, -1);
        assert_eq!(MPI::ANY_TAG, -1);
        // Constant-true by construction; the test pins the contract.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(MPI::PROC_NULL < 0 && MPI::UNDEFINED < 0);
        }
    }

    #[test]
    fn wtime_and_processor_name_are_usable() {
        MpiRuntime::new(1)
            .run(|mpi| {
                assert!(mpi.wtime() >= 0.0);
                assert!(mpi.wtick() > 0.0 && mpi.wtick() < 1e-3);
                assert!(!mpi.get_processor_name().is_empty());
                assert!(mpi.initialized());
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn jni_stats_count_wrapper_traffic() {
        let results = MpiRuntime::new(2)
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let data = vec![rank as i32; 256];
                let mut recv = vec![0i32; 256];
                let peer = (1 - rank) as i32;
                world.sendrecv(
                    &data,
                    0,
                    256,
                    &Datatype::int(),
                    peer,
                    0,
                    &mut recv,
                    0,
                    256,
                    &Datatype::int(),
                    peer,
                    0,
                )?;
                Ok(mpi.jni_stats())
            })
            .unwrap();
        for stats in results {
            assert!(stats.calls >= 2);
            assert!(stats.bytes_in >= 1024);
            assert!(stats.bytes_out >= 1024);
        }
    }

    #[test]
    fn panics_become_errors_not_hangs() {
        let result = MpiRuntime::new(2).run(|mpi| {
            let world = mpi.comm_world();
            if world.rank()? == 0 {
                panic!("deliberate");
            }
            let mut buf = [0u8; 1];
            // Never satisfied; must be unblocked by the abort.
            let _ = world.recv(&mut buf, 0, 1, &Datatype::byte(), 0, 1234);
            Ok(())
        });
        assert!(result.is_err());
    }
}
