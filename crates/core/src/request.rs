//! The `Request` and `Prequest` classes (mpiJava `Request`, `Prequest`).
//!
//! A non-blocking receive in mpiJava hands the Java array to the wrapper,
//! which fills it when the communication completes. The Rust equivalent is
//! a [`Request`] that mutably borrows the receive buffer until it has been
//! waited on (or freed), so the type system enforces the rule MPI states
//! informally: do not touch a buffer while a non-blocking operation is
//! using it.
//!
//! `Prequest` is the persistent variant created by `Send_init` /
//! `Recv_init` and restarted with `Start` / `Startall` (mpiJava routes
//! `Start` through `Prequest`).

use std::sync::Arc;

use mpi_native::{CollOutcome, CollRequestId, ErrorClass, PersistentCollId, RequestId};

use crate::exception::{MPIException, MpiResult};
use crate::status::Status;
use crate::RankEnv;

type UnpackOnce<'buf> = Box<dyn FnOnce(&[u8]) -> MpiResult<()> + Send + 'buf>;
type UnpackMut<'buf> = Box<dyn FnMut(&[u8]) -> MpiResult<()> + Send + 'buf>;
type Repack<'buf> = Box<dyn Fn() -> MpiResult<Vec<u8>> + Send + 'buf>;

/// What engine object a [`Request`] completes: a point-to-point request
/// or a nonblocking-collective schedule. The two share every completion
/// surface (`wait`, `test`, batches, RAII), which is what lets a
/// heterogeneous [`TypedRequest::wait_all`] batch mix them freely.
#[derive(Debug, Clone, Copy)]
enum ReqId {
    P2p(RequestId),
    Coll(CollRequestId),
}

/// Handle to an outstanding non-blocking operation.
pub struct Request<'buf> {
    env: Arc<RankEnv>,
    id: ReqId,
    unpack: Option<UnpackOnce<'buf>>,
    done: bool,
}

impl std::fmt::Debug for Request<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("id", &self.id)
            .field("done", &self.done)
            .finish()
    }
}

impl<'buf> Request<'buf> {
    pub(crate) fn send(env: Arc<RankEnv>, id: RequestId) -> Request<'static> {
        Request {
            env,
            id: ReqId::P2p(id),
            unpack: None,
            done: false,
        }
    }

    pub(crate) fn recv(
        env: Arc<RankEnv>,
        id: RequestId,
        unpack: UnpackOnce<'buf>,
    ) -> Request<'buf> {
        Request {
            env,
            id: ReqId::P2p(id),
            unpack: Some(unpack),
            done: false,
        }
    }

    /// A nonblocking-collective request ([`crate::rs`]'s `i*` collective
    /// methods). `unpack` delivers the collective's outcome bytes
    /// (gather-family outcomes arrive flattened in rank order) into the
    /// caller's buffer; `None` for outcome-free collectives (barrier)
    /// and rooted collectives on non-root ranks.
    pub(crate) fn coll(
        env: Arc<RankEnv>,
        id: CollRequestId,
        unpack: Option<UnpackOnce<'buf>>,
    ) -> Request<'buf> {
        Request {
            env,
            id: ReqId::Coll(id),
            unpack,
            done: false,
        }
    }

    /// Engine-level id (exposed for diagnostics); `None` for
    /// collective-backed requests, whose engine handle lives in a
    /// different id space.
    pub fn id(&self) -> Option<RequestId> {
        match self.id {
            ReqId::P2p(id) => Some(id),
            ReqId::Coll(_) => None,
        }
    }

    /// True once the request has been waited on / tested to completion.
    pub fn is_void(&self) -> bool {
        self.done
    }

    fn finish(&mut self, completion: mpi_native::request::Completion) -> MpiResult<Status> {
        self.done = true;
        if let (Some(unpack), Some(data)) = (self.unpack.take(), completion.data.as_ref()) {
            unpack(data)?;
        }
        Ok(Status::from_info(completion.status))
    }

    fn finish_coll(&mut self, outcome: CollOutcome) -> MpiResult<Status> {
        self.done = true;
        let data: Option<Vec<u8>> = match outcome {
            CollOutcome::Done => None,
            CollOutcome::Buffer(buffer) => Some(buffer),
            CollOutcome::Parts(parts) => Some(parts.into_iter().flatten().collect()),
        };
        if let (Some(unpack), Some(bytes)) = (self.unpack.take(), data.as_ref()) {
            unpack(bytes)?;
        }
        let mut info = mpi_native::StatusInfo::empty();
        info.count_bytes = data.map_or(0, |d| d.len());
        Ok(Status::from_info(info))
    }

    /// Engine-side completion check without the simulated JNI crossing —
    /// the building block of the batched waits over mixed batches.
    fn poll(&mut self) -> MpiResult<Option<Status>> {
        if self.done {
            return Ok(None);
        }
        match self.id {
            ReqId::P2p(id) => {
                let completion = self.env.engine.lock().test(id)?;
                match completion {
                    Some(completion) => Ok(Some(self.finish(completion)?)),
                    None => Ok(None),
                }
            }
            ReqId::Coll(id) => {
                let outcome = self.env.engine.lock().coll_test(id)?;
                match outcome {
                    Some(outcome) => Ok(Some(self.finish_coll(outcome)?)),
                    None => Ok(None),
                }
            }
        }
    }

    /// `Request.Wait()`: block until complete, fill the receive buffer and
    /// return the `Status`.
    pub fn wait(&mut self) -> MpiResult<Status> {
        if self.done {
            return Err(MPIException::new(
                ErrorClass::Request,
                "request has already completed",
            ));
        }
        self.env.jni.enter("Request.Wait");
        match self.id {
            ReqId::P2p(id) => {
                let completion = self.env.engine.lock().wait(id)?;
                self.finish(completion)
            }
            ReqId::Coll(id) => {
                let outcome = self.env.engine.lock().coll_wait(id)?;
                self.finish_coll(outcome)
            }
        }
    }

    /// `Request.Test()`: `Some(status)` if complete, `None` otherwise (the
    /// paper's null-for-failure convention, §2.1).
    pub fn test(&mut self) -> MpiResult<Option<Status>> {
        if self.done {
            return Ok(None);
        }
        self.env.jni.enter("Request.Test");
        self.poll()
    }

    /// `Request.Cancel()`. Nonblocking collectives cannot be cancelled
    /// (the standard's rule — every rank participates).
    pub fn cancel(&mut self) -> MpiResult<()> {
        self.env.jni.enter("Request.Cancel");
        match self.id {
            ReqId::P2p(id) => Ok(self.env.engine.lock().cancel(id)?),
            ReqId::Coll(_) => Err(MPIException::new(
                ErrorClass::Unsupported,
                "nonblocking collectives cannot be cancelled",
            )),
        }
    }

    /// `Request.Free()`: release the request without inspecting its
    /// completion. A pending point-to-point receive is withdrawn from
    /// the engine; a collective request cannot be withdrawn (every rank
    /// participates), so it is driven to completion and its outcome
    /// discarded — the handle quiesces either way.
    pub fn free(mut self) -> MpiResult<()> {
        self.env.jni.enter("Request.Free");
        self.done = true;
        match self.id {
            ReqId::P2p(id) => Ok(self.env.engine.lock().request_free(id)?),
            ReqId::Coll(id) => Ok(self.env.engine.lock().coll_abandon(id)?),
        }
    }

    /// Abandon the handle without blocking — the panic-unwind escape
    /// hatch. A point-to-point receive is withdrawn; a collective's
    /// engine-side schedule is left in place (driving it could block on
    /// peers that will never act once this rank's abort lands, and the
    /// job is about to tear down anyway).
    pub(crate) fn forget(mut self) {
        self.done = true;
        if let ReqId::P2p(id) = self.id {
            let _ = self.env.engine.lock().request_free(id);
        }
    }

    /// `Request.Waitall(requests)`: complete every request, returning the
    /// statuses in order.
    pub fn wait_all(requests: &mut [Request<'buf>]) -> MpiResult<Vec<Status>> {
        requests.iter_mut().map(|r| r.wait()).collect()
    }

    /// `Request.Waitany(requests)`: wait for one to complete; its index is
    /// recorded in the returned status (`status.index()`), mirroring the
    /// extra field the paper adds to `Status`. Batches mixing
    /// point-to-point and collective requests are completed by polling
    /// (each poll drives the engine's progress, collectives included).
    pub fn wait_any(requests: &mut [Request<'buf>]) -> MpiResult<Status> {
        if requests.is_empty() {
            return Err(MPIException::new(
                ErrorClass::Request,
                "Waitany on empty array",
            ));
        }
        let env = Arc::clone(&requests[0].env);
        env.jni.enter("Request.Waitany");
        let all_p2p = requests
            .iter()
            .all(|r| r.done || matches!(r.id, ReqId::P2p(_)));
        if !all_p2p {
            // Mixed batch: poll each member (each poll drives the
            // engine's progress), then park on the transport until the
            // next frame instead of spinning — anything still pending
            // after a full poll is waiting on remote frames.
            loop {
                let mut any_pending = false;
                for (slot, request) in requests.iter_mut().enumerate() {
                    if request.done {
                        continue;
                    }
                    any_pending = true;
                    if let Some(status) = request.poll()? {
                        return Ok(Status::from_info(mpi_native::StatusInfo {
                            index: slot as i32,
                            source: status.source(),
                            tag: status.tag(),
                            count_bytes: status.count_bytes(),
                            cancelled: status.test_cancelled(),
                        }));
                    }
                }
                if !any_pending {
                    return Err(MPIException::new(
                        ErrorClass::Request,
                        "Waitany: every request has already completed",
                    ));
                }
                env.engine.lock().progress_wait()?;
            }
        }
        let pending: Vec<RequestId> = requests
            .iter()
            .filter(|r| !r.done)
            .filter_map(|r| match r.id {
                ReqId::P2p(id) => Some(id),
                ReqId::Coll(_) => None,
            })
            .collect();
        if pending.is_empty() {
            return Err(MPIException::new(
                ErrorClass::Request,
                "Waitany: every request has already completed",
            ));
        }
        let (_, completion) = env.engine.lock().wait_any(&pending)?;
        // Map the completed engine request back to its position in the
        // caller's array.
        let completed_id = pending[completion.status.index as usize];
        let slot = requests
            .iter()
            .position(|r| matches!(r.id, ReqId::P2p(id) if id == completed_id))
            .expect("completed request came from this array");
        let mut status = requests[slot].finish(completion)?;
        status = Status::from_info(mpi_native::StatusInfo {
            index: slot as i32,
            source: status.source(),
            tag: status.tag(),
            count_bytes: status.count_bytes(),
            cancelled: status.test_cancelled(),
        });
        Ok(status)
    }

    /// `Request.Testall(requests)`: statuses if every request is complete,
    /// `None` otherwise — **all-or-nothing**, exactly like the standard's
    /// `MPI_Testall`: when the call returns `None`, no member has been
    /// consumed and no receive buffer has been filled, even for members
    /// that are individually complete (they are harvested by the
    /// eventual successful `test_all`, a `wait`, or an individual
    /// `test`). This holds for pure point-to-point batches and for
    /// batches mixing point-to-point and collective requests alike.
    pub fn test_all(requests: &mut [Request<'buf>]) -> MpiResult<Option<Vec<Status>>> {
        if requests.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let env = Arc::clone(&requests[0].env);
        env.jni.enter("Request.Testall");
        let all_p2p = requests
            .iter()
            .all(|r| r.done || matches!(r.id, ReqId::P2p(_)));
        if !all_p2p {
            // Mixed batch: drive progress once without consuming
            // anything, then check completion non-destructively. Only
            // when the whole batch is complete does anyone's buffer get
            // filled.
            {
                let mut engine = env.engine.lock();
                engine.progress_poll()?;
                for request in requests.iter() {
                    if request.done {
                        continue;
                    }
                    let complete = match request.id {
                        ReqId::P2p(id) => engine.is_complete(id)?,
                        ReqId::Coll(id) => engine.coll_is_complete(id)?,
                    };
                    if !complete {
                        return Ok(None);
                    }
                }
            }
            let mut statuses = Vec::with_capacity(requests.len());
            for request in requests.iter_mut() {
                match request.poll()? {
                    Some(status) => statuses.push(status),
                    // Already consumed before this call (request.done).
                    None => statuses.push(Status::from_info(mpi_native::StatusInfo::empty())),
                }
            }
            return Ok(Some(statuses));
        }
        let ids: Vec<RequestId> = requests
            .iter()
            .filter(|r| !r.done)
            .filter_map(|r| match r.id {
                ReqId::P2p(id) => Some(id),
                ReqId::Coll(_) => None,
            })
            .collect();
        let completions = env.engine.lock().test_all(&ids)?;
        match completions {
            None => Ok(None),
            Some(completions) => {
                let mut statuses = Vec::with_capacity(requests.len());
                let mut it = completions.into_iter();
                for request in requests.iter_mut() {
                    if request.done {
                        statuses.push(Status::from_info(mpi_native::StatusInfo::empty()));
                    } else {
                        let completion = it.next().expect("one completion per pending request");
                        statuses.push(request.finish(completion)?);
                    }
                }
                Ok(Some(statuses))
            }
        }
    }
}

/// RAII handle to a non-blocking operation of the idiomatic API
/// ([`crate::rs`]).
///
/// Wraps a [`Request`] with ownership-driven completion semantics:
///
/// * [`wait`](TypedRequest::wait) consumes the handle and returns the
///   [`Status`] — a completed request cannot be waited on twice by
///   construction, so the "request has already completed" error of the
///   classic API is unrepresentable (waiting after [`test`] reported
///   completion returns the cached status);
/// * dropping a pending handle **blocks until the operation completes**
///   (completion on drop), so a receive buffer's mutable borrow is never
///   released while the engine might still write to it — the guarantee
///   MPI states informally becomes a compile-time rule. For a receive
///   that may never match, use [`free`](TypedRequest::free) (or
///   [`cancel`](TypedRequest::cancel)) as the escape hatch before the
///   handle goes out of scope;
/// * [`wait_all`](TypedRequest::wait_all) completes a heterogeneous batch
///   (sends and receives over buffers of different element types) in
///   order.
///
/// The lifetime `'buf` is the borrow of the receive buffer (sends, whose
/// payload is marshalled at call time, carry `'static` internally and
/// covariantly shorten to the caller's buffer lifetime).
///
/// [`test`]: TypedRequest::test
pub struct TypedRequest<'buf> {
    inner: Option<Request<'buf>>,
    /// Status cached when `test()` observes completion, so a later
    /// `wait()` can return it instead of erroring.
    status: Option<Status>,
}

impl std::fmt::Debug for TypedRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypedRequest")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<'buf> TypedRequest<'buf> {
    pub(crate) fn new(inner: Request<'buf>) -> TypedRequest<'buf> {
        TypedRequest {
            inner: Some(inner),
            status: None,
        }
    }

    /// Engine-level id (exposed for diagnostics); `None` for
    /// collective-backed requests.
    pub fn id(&self) -> Option<RequestId> {
        self.inner.as_ref().expect("pending request").id()
    }

    /// Block until the operation completes, fill the receive buffer, and
    /// return the [`Status`]. Consumes the handle. If the operation
    /// already completed through [`test`](TypedRequest::test), returns
    /// the status that test observed.
    pub fn wait(mut self) -> MpiResult<Status> {
        let mut request = self.inner.take().expect("pending request");
        if request.is_void() {
            let status = self.status.take();
            return Ok(status.unwrap_or_else(|| Status::from_info(mpi_native::StatusInfo::empty())));
        }
        request.wait()
    }

    /// `Some(status)` if the operation has completed (filling the receive
    /// buffer), `None` if it is still in flight. Once completion has been
    /// observed, further calls keep returning the same status.
    pub fn test(&mut self) -> MpiResult<Option<Status>> {
        match self.inner.as_mut() {
            Some(request) if !request.is_void() => {
                let status = request.test()?;
                if let Some(status) = &status {
                    self.status = Some(status.clone());
                }
                Ok(status)
            }
            _ => Ok(self.status.clone()),
        }
    }

    /// True once the request has completed via [`test`](TypedRequest::test).
    pub fn is_complete(&self) -> bool {
        self.inner.as_ref().map(Request::is_void).unwrap_or(true)
    }

    /// `Request.Cancel()`: ask the engine to cancel the pending
    /// operation. The handle must still be completed (waited on, freed,
    /// or dropped); the resulting status reports the cancellation.
    /// Cancelling an operation that already completed is a no-op.
    pub fn cancel(&mut self) -> MpiResult<()> {
        match self.inner.as_mut() {
            Some(request) if !request.is_void() => request.cancel(),
            _ => Ok(()),
        }
    }

    /// `Request.Free()`: release the request without completing it — the
    /// escape hatch for a receive that may never match (a plain drop
    /// would block forever waiting for it). The pending receive is
    /// withdrawn from the engine and the buffer borrow ends immediately.
    ///
    /// Standard MPI semantics apply to the message itself: freeing the
    /// receive does **not** retract anything the peer already sent. An
    /// in-flight message stays queued and will be matched by a later
    /// receive with the same `(source, tag)` envelope — only data the
    /// engine had already committed to *this* request (a rendezvous
    /// transfer in progress) is discarded.
    pub fn free(mut self) -> MpiResult<()> {
        match self.inner.take() {
            Some(request) if !request.is_void() => request.free(),
            _ => Ok(()),
        }
    }

    /// Complete every request of a batch, returning the statuses in order.
    /// The batch may mix sends and receives over buffers of different
    /// element types — the handles are type-erased, only the buffer borrow
    /// lifetime is shared. If one wait fails, the error is returned and
    /// the remaining requests are completed by their drops.
    pub fn wait_all(
        requests: impl IntoIterator<Item = TypedRequest<'buf>>,
    ) -> MpiResult<Vec<Status>> {
        requests.into_iter().map(TypedRequest::wait).collect()
    }
}

impl Drop for TypedRequest<'_> {
    fn drop(&mut self) {
        if let Some(mut request) = self.inner.take() {
            if !request.is_void() {
                if std::thread::panicking() {
                    // Unwinding: blocking here could hang the rank on an
                    // operation whose peer may never act (and mask the
                    // panic message). Abandon the request instead — no
                    // user code observes the buffer after a panic, so the
                    // RAII completion guarantee is moot.
                    request.forget();
                } else {
                    // Completion on drop: the buffer borrow ends here, so
                    // the operation must be driven to completion first.
                    // Errors are swallowed (drop cannot propagate them);
                    // use `wait()` to observe the status or failure, or
                    // `free()` to abandon a receive that may never match.
                    let _ = request.wait();
                }
            }
        }
    }
}

/// A persistent request created by `Send_init` / `Recv_init`.
pub struct Prequest<'buf> {
    env: Arc<RankEnv>,
    id: RequestId,
    kind: PrequestKind<'buf>,
    active: bool,
}

enum PrequestKind<'buf> {
    Send { repack: Repack<'buf> },
    Recv { unpack: UnpackMut<'buf> },
}

impl std::fmt::Debug for Prequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prequest")
            .field("id", &self.id)
            .field("active", &self.active)
            .finish()
    }
}

impl<'buf> Prequest<'buf> {
    pub(crate) fn send(env: Arc<RankEnv>, id: RequestId, repack: Repack<'buf>) -> Prequest<'buf> {
        Prequest {
            env,
            id,
            kind: PrequestKind::Send { repack },
            active: false,
        }
    }

    pub(crate) fn recv(
        env: Arc<RankEnv>,
        id: RequestId,
        unpack: UnpackMut<'buf>,
    ) -> Prequest<'buf> {
        Prequest {
            env,
            id,
            kind: PrequestKind::Recv { unpack },
            active: false,
        }
    }

    /// `Prequest.Start()`: (re)activate the persistent communication.
    /// For a persistent send the current contents of the user buffer are
    /// re-marshalled, matching the C semantics of reusing the buffer by
    /// address.
    pub fn start(&mut self) -> MpiResult<()> {
        if self.active {
            return Err(MPIException::new(
                ErrorClass::Request,
                "persistent request is already active",
            ));
        }
        self.env.jni.enter("Prequest.Start");
        if let PrequestKind::Send { repack } = &self.kind {
            let payload = repack()?;
            self.env
                .engine
                .lock()
                .persistent_set_data(self.id, &payload)?;
        }
        self.env.engine.lock().start(self.id)?;
        self.active = true;
        Ok(())
    }

    /// `Prequest.Startall(requests)`.
    pub fn start_all(requests: &mut [Prequest<'buf>]) -> MpiResult<()> {
        for r in requests.iter_mut() {
            r.start()?;
        }
        Ok(())
    }

    /// `Request.Wait()` on the persistent request: completes the active
    /// communication and returns the request to the inactive state.
    pub fn wait(&mut self) -> MpiResult<Status> {
        if !self.active {
            return Err(MPIException::new(
                ErrorClass::Request,
                "persistent request is not active",
            ));
        }
        self.env.jni.enter("Prequest.Wait");
        let completion = self.env.engine.lock().wait(self.id)?;
        self.active = false;
        if let (PrequestKind::Recv { unpack }, Some(data)) =
            (&mut self.kind, completion.data.as_ref())
        {
            unpack(data)?;
        }
        Ok(Status::from_info(completion.status))
    }

    /// `Request.Free()` on the persistent request.
    pub fn free(self) -> MpiResult<()> {
        self.env.jni.enter("Prequest.Free");
        Ok(self.env.engine.lock().request_free(self.id)?)
    }

    /// True while a started communication has not yet been waited on.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

/// The buffers a persistent collective re-reads and re-fills on every
/// iteration: one object owning both directions, so a single borrow can
/// serve as the operation's input *and* output (a persistent bcast uses
/// the same slice for both roles).
pub(crate) trait PersistentCollBufs: Send {
    /// This rank's contribution for one `start()` (re-marshalled from
    /// the captured buffer, matching the C semantics of reusing the
    /// buffer by address).
    fn pack(&mut self) -> Vec<u8>;
    /// Deliver one completed iteration's outcome bytes into the
    /// captured buffer (no-op for outcome-free shapes).
    fn unpack(&mut self, bytes: &[u8]) -> MpiResult<()>;
}

enum PersistentKind<'buf> {
    P2pSend {
        id: RequestId,
        repack: Repack<'buf>,
    },
    P2pRecv {
        id: RequestId,
        unpack: UnpackMut<'buf>,
    },
    Coll {
        id: PersistentCollId,
        bufs: Box<dyn PersistentCollBufs + 'buf>,
    },
}

/// RAII handle to a persistent operation of the idiomatic API
/// ([`crate::rs`]): `send_init` / `recv_init` point-to-point pairs and
/// the persistent collectives (`barrier_init`, `broadcast_init`,
/// `reduce_init_into`, `all_reduce_init`, `all_gather_init`).
///
/// One handle is one reusable operation: [`start`](PersistentRequest::start)
/// launches an iteration (re-marshalling the captured send buffer, so
/// the C idiom of reusing the buffer by address carries over),
/// [`wait`](PersistentRequest::wait) / [`test`](PersistentRequest::test)
/// complete it and fill the captured receive buffer, and the handle is
/// immediately startable again. The one-time cost — validation,
/// algorithm selection, schedule construction and tag-window
/// reservation for collectives — was paid at `*_init` time; each
/// `start()` of a collective replays the pinned engine schedule (see
/// `mpi_native::coll::nb`'s schedule cache).
///
/// Drop semantics mirror [`TypedRequest`]: dropping a handle whose
/// `start()` is still in flight quiesces it (the iteration is driven to
/// completion and discarded) and releases the engine-side registration,
/// so `finalize()` — which refuses active persistent operations — stays
/// a reliable leak probe. During a panic-unwind the handle is abandoned
/// so teardown cannot hang. Use [`free`](PersistentRequest::free) to
/// observe release errors.
pub struct PersistentRequest<'buf> {
    env: Arc<RankEnv>,
    kind: PersistentKind<'buf>,
    active: bool,
    freed: bool,
}

impl std::fmt::Debug for PersistentRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            PersistentKind::P2pSend { id, .. } => format!("send {id:?}"),
            PersistentKind::P2pRecv { id, .. } => format!("recv {id:?}"),
            PersistentKind::Coll { id, .. } => format!("coll {id:?}"),
        };
        f.debug_struct("PersistentRequest")
            .field("kind", &kind)
            .field("active", &self.active)
            .finish()
    }
}

impl<'buf> PersistentRequest<'buf> {
    pub(crate) fn p2p_send(
        env: Arc<RankEnv>,
        id: RequestId,
        repack: Repack<'buf>,
    ) -> PersistentRequest<'buf> {
        PersistentRequest {
            env,
            kind: PersistentKind::P2pSend { id, repack },
            active: false,
            freed: false,
        }
    }

    pub(crate) fn p2p_recv(
        env: Arc<RankEnv>,
        id: RequestId,
        unpack: UnpackMut<'buf>,
    ) -> PersistentRequest<'buf> {
        PersistentRequest {
            env,
            kind: PersistentKind::P2pRecv { id, unpack },
            active: false,
            freed: false,
        }
    }

    pub(crate) fn coll(
        env: Arc<RankEnv>,
        id: PersistentCollId,
        bufs: Box<dyn PersistentCollBufs + 'buf>,
    ) -> PersistentRequest<'buf> {
        PersistentRequest {
            env,
            kind: PersistentKind::Coll { id, bufs },
            active: false,
            freed: false,
        }
    }

    /// `MPI_Start`: launch one iteration. The captured send buffer is
    /// re-marshalled at this moment. Errors if the previous iteration
    /// has not been completed yet (collective starts are ordered like
    /// any collective: every rank must start in the same order).
    pub fn start(&mut self) -> MpiResult<()> {
        if self.active {
            return Err(MPIException::new(
                ErrorClass::Request,
                "persistent request is already active; wait on it first",
            ));
        }
        self.env.jni.enter("Prequest.Start");
        match &mut self.kind {
            PersistentKind::P2pSend { id, repack } => {
                let payload = repack()?;
                let mut engine = self.env.engine.lock();
                engine.persistent_set_data(*id, &payload)?;
                engine.start(*id)?;
            }
            PersistentKind::P2pRecv { id, .. } => {
                self.env.engine.lock().start(*id)?;
            }
            PersistentKind::Coll { id, bufs } => {
                let payload = bufs.pack();
                self.env
                    .engine
                    .lock()
                    .coll_start_persistent(*id, &payload)?;
            }
        }
        self.active = true;
        Ok(())
    }

    /// `MPI_Startall` over a batch (the batch may mix point-to-point
    /// and collective persistent handles).
    pub fn start_all(requests: &mut [PersistentRequest<'buf>]) -> MpiResult<()> {
        for request in requests.iter_mut() {
            request.start()?;
        }
        Ok(())
    }

    /// `MPI_Wait`: complete the current iteration, fill the captured
    /// receive buffer, and return the handle to the startable state. On
    /// an inactive handle this returns an empty status immediately (the
    /// standard's semantics for waiting on an inactive persistent
    /// request).
    pub fn wait(&mut self) -> MpiResult<Status> {
        self.env.jni.enter("Prequest.Wait");
        if !self.active {
            return Ok(Status::from_info(mpi_native::StatusInfo::empty()));
        }
        self.active = false;
        match &mut self.kind {
            PersistentKind::P2pSend { id, .. } => {
                let completion = self.env.engine.lock().wait(*id)?;
                Ok(Status::from_info(completion.status))
            }
            PersistentKind::P2pRecv { id, unpack } => {
                let completion = self.env.engine.lock().wait(*id)?;
                if let Some(data) = completion.data.as_ref() {
                    unpack(data)?;
                }
                Ok(Status::from_info(completion.status))
            }
            PersistentKind::Coll { id, bufs } => {
                let outcome = self.env.engine.lock().coll_wait_persistent(*id)?;
                finish_persistent_coll(outcome, bufs.as_mut())
            }
        }
    }

    /// `MPI_Test`: `Some(status)` if the current iteration completed
    /// (filling the captured receive buffer), `None` while it is still
    /// in flight. An inactive handle reports `Some` immediately.
    pub fn test(&mut self) -> MpiResult<Option<Status>> {
        self.env.jni.enter("Prequest.Test");
        if !self.active {
            return Ok(Some(Status::from_info(mpi_native::StatusInfo::empty())));
        }
        match &mut self.kind {
            PersistentKind::P2pSend { id, .. } => match self.env.engine.lock().test(*id)? {
                Some(completion) => {
                    self.active = false;
                    Ok(Some(Status::from_info(completion.status)))
                }
                None => Ok(None),
            },
            PersistentKind::P2pRecv { id, unpack } => match self.env.engine.lock().test(*id)? {
                Some(completion) => {
                    self.active = false;
                    if let Some(data) = completion.data.as_ref() {
                        unpack(data)?;
                    }
                    Ok(Some(Status::from_info(completion.status)))
                }
                None => Ok(None),
            },
            PersistentKind::Coll { id, bufs } => {
                match self.env.engine.lock().coll_test_persistent(*id)? {
                    Some(outcome) => {
                        self.active = false;
                        Ok(Some(finish_persistent_coll(outcome, bufs.as_mut())?))
                    }
                    None => Ok(None),
                }
            }
        }
    }

    /// True while a started iteration has not been completed yet.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// `MPI_Request_free`: release the persistent operation, observing
    /// errors. An in-flight iteration is quiesced first (driven to
    /// completion and discarded) — same policy as the drop, which calls
    /// this and swallows the result.
    pub fn free(mut self) -> MpiResult<()> {
        self.env.jni.enter("Prequest.Free");
        self.release()
    }

    fn release(&mut self) -> MpiResult<()> {
        if self.freed {
            return Ok(());
        }
        self.freed = true;
        match &mut self.kind {
            PersistentKind::P2pSend { id, .. } | PersistentKind::P2pRecv { id, .. } => {
                let mut engine = self.env.engine.lock();
                if self.active {
                    self.active = false;
                    let _ = engine.wait(*id);
                }
                engine.request_free(*id)?;
            }
            PersistentKind::Coll { id, .. } => {
                // coll_free_persistent quiesces an in-flight start
                // itself (a collective cannot be withdrawn).
                self.active = false;
                self.env.engine.lock().coll_free_persistent(*id)?;
            }
        }
        Ok(())
    }
}

/// Shared completion tail of the persistent-collective `wait`/`test`:
/// flatten the outcome, deliver it into the captured buffers, and
/// synthesize the byte-count status (like [`Request::finish_coll`]).
fn finish_persistent_coll(
    outcome: CollOutcome,
    bufs: &mut (dyn PersistentCollBufs + '_),
) -> MpiResult<Status> {
    let data: Option<Vec<u8>> = match outcome {
        CollOutcome::Done => None,
        CollOutcome::Buffer(buffer) => Some(buffer),
        CollOutcome::Parts(parts) => Some(parts.into_iter().flatten().collect()),
    };
    if let Some(bytes) = data.as_ref() {
        bufs.unpack(bytes)?;
    }
    let mut info = mpi_native::StatusInfo::empty();
    info.count_bytes = data.map_or(0, |d| d.len());
    Ok(Status::from_info(info))
}

impl Drop for PersistentRequest<'_> {
    fn drop(&mut self) {
        if self.freed {
            return;
        }
        if std::thread::panicking() {
            // Unwinding: quiescing could hang on peers that will never
            // act once this rank's abort lands. Abandon the engine-side
            // registration; finalize will not run after a panic, so its
            // active-persistent check cannot misfire.
            return;
        }
        // Quiesce + release on drop, mirroring TypedRequest. Errors are
        // swallowed (drop cannot propagate them); use `free()` to
        // observe them.
        let _ = self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Regression for the documented mixed-batch `Testall` caveat: a
    /// batch mixing a pending point-to-point receive with an
    /// already-complete collective must be **all-or-nothing** — as long
    /// as `test_all` returns `None`, no member is consumed and no
    /// buffer-filling unpack has run, even for the individually-complete
    /// collective. Only the eventual `Some` harvests everything.
    #[test]
    fn mixed_test_all_fills_no_buffers_before_the_whole_batch_completes() {
        use crate::rs::Communicator as _;
        crate::MpiRuntime::new(2)
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let sum = mpi_native::Op::Predefined(mpi_native::PredefinedOp::Sum);
                let contribution = (rank as i32 + 1).to_le_bytes();
                if rank == 0 {
                    let handle = world.as_comm().handle;
                    let env = Arc::clone(&world.as_comm().env);
                    let coll_id = mpi.with_engine(|e| {
                        e.iallreduce(
                            handle,
                            &contribution,
                            mpi_native::PrimitiveKind::Int,
                            1,
                            &sum,
                        )
                    })?;
                    let unpacked = Arc::new(AtomicBool::new(false));
                    let unpacked_probe = Arc::clone(&unpacked);
                    let coll_req = Request::coll(
                        env,
                        coll_id,
                        Some(Box::new(move |_bytes: &[u8]| {
                            unpacked_probe.store(true, Ordering::SeqCst);
                            Ok(())
                        })),
                    );
                    // A receive whose matching send has deliberately not
                    // been posted yet.
                    let mut buf = [0u8; 4];
                    let p2p_req =
                        world
                            .as_comm()
                            .irecv(&mut buf, 0, 4, &crate::Datatype::byte(), 1, 9)?;
                    let mut batch = vec![p2p_req, coll_req];

                    // Drive until the collective half is complete on the
                    // engine; every test_all along the way must report
                    // None *without* running the collective's unpack.
                    loop {
                        let got = Request::test_all(&mut batch)?;
                        assert!(got.is_none(), "batch cannot be complete yet");
                        assert!(
                            !unpacked.load(Ordering::SeqCst),
                            "test_all filled a buffer before the whole batch completed"
                        );
                        assert!(
                            batch.iter().all(|r| !r.is_void()),
                            "test_all consumed a member of an incomplete batch"
                        );
                        if mpi.with_engine(|e| e.coll_is_complete(coll_id))? {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    // Collective complete, receive still pending: one
                    // more None, still nothing consumed.
                    assert!(Request::test_all(&mut batch)?.is_none());
                    assert!(!unpacked.load(Ordering::SeqCst));

                    // Release the peer; once its send lands, test_all
                    // flips to Some and only then fills the buffers.
                    world.send(&[1u8][..], 1, 8)?;
                    let statuses = loop {
                        if let Some(statuses) = Request::test_all(&mut batch)? {
                            break statuses;
                        }
                        std::thread::yield_now();
                    };
                    assert_eq!(statuses.len(), 2);
                    drop(batch); // releases the receive buffer borrow
                    assert_eq!(buf, [7, 7, 7, 7]);
                    assert!(unpacked.load(Ordering::SeqCst));
                } else {
                    let handle = world.as_comm().handle;
                    let coll_id = mpi.with_engine(|e| {
                        e.iallreduce(
                            handle,
                            &contribution,
                            mpi_native::PrimitiveKind::Int,
                            1,
                            &sum,
                        )
                    })?;
                    mpi.with_engine(|e| e.coll_wait(coll_id))?;
                    // Wait for the go signal, then post the matching send.
                    let mut go = [0u8; 1];
                    world.recv_into(&mut go, 0, 8)?;
                    world.send(&[7u8; 4][..], 0, 9)?;
                }
                mpi.finalize()
            })
            .unwrap();
    }
}
