//! The `Comm` class: point-to-point communication, probes, packing and
//! communicator queries (paper §2, Figure 1).
//!
//! All communication methods follow the mpiJava argument conventions the
//! paper describes in §2.1:
//!
//! * buffers are one-dimensional arrays of a primitive element type,
//!   passed together with an element `offset`,
//! * results come back through return values (`Status` objects, fresh
//!   arrays) rather than out-parameters,
//! * array lengths replace explicit count arguments where possible.
//!
//! Every call crosses the simulated JNI boundary of [`crate::jni`]; that is
//! where the wrapper overhead the paper measures lives.

use mpi_native::comm::CommHandle;
use mpi_native::{pack, ErrorClass, PrimitiveKind, SendMode};

use crate::buffer::{bytes_to_elements, slice_to_bytes, BufferElement};
use crate::datatype::Datatype;
use crate::exception::{MPIException, MpiResult};
use crate::group::Group;
use crate::request::{Prequest, Request};
use crate::serial::{deserialize, serialize, Serializable};
use crate::status::Status;
use crate::RankEnv;
use std::sync::Arc;

/// Base communicator class. `Intracomm`, `Cartcomm` and `Graphcomm` all
/// dereference to `Comm`.
#[derive(Clone)]
pub struct Comm {
    pub(crate) env: Arc<RankEnv>,
    pub(crate) handle: CommHandle,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("handle", &self.handle)
            .finish()
    }
}

/// How many buffer elements (each `elem_width` bytes wide) a transfer of
/// `count` instances of `datatype` spans (used for bounds checking against
/// the Java-style `offset`).
fn span_elements(datatype: &Datatype, count: usize, elem_width: usize) -> usize {
    if count == 0 {
        return 0;
    }
    let width = elem_width.max(1);
    // No typemap entry extends past `ub`, so `ub` — not `size`, which
    // over-counts when entries overlap — bounds the last instance. A
    // degenerate derived type (every entry at a negative displacement)
    // reports `ub <= 0`; clamp it so a negative tail cannot shrink the
    // span contributed by the earlier instances' strides. (`extent` is
    // `ub - lb` and therefore never negative in this engine.)
    let tail = datatype.ub().max(0);
    let bytes = (count as isize - 1) * datatype.extent() + tail;
    (bytes.max(0) as usize).div_ceil(width)
}

impl Comm {
    pub(crate) fn new(env: Arc<RankEnv>, handle: CommHandle) -> Comm {
        Comm { env, handle }
    }

    /// Engine-level handle (used by the benchmark harness for the direct
    /// "native C" baseline on the same communicator).
    pub fn handle(&self) -> CommHandle {
        self.handle
    }

    /// `Comm.Rank()`.
    pub fn rank(&self) -> MpiResult<usize> {
        self.env.jni.enter("Comm.Rank");
        Ok(self.env.engine.lock().comm_rank(self.handle)?)
    }

    /// `Comm.Size()`.
    pub fn size(&self) -> MpiResult<usize> {
        self.env.jni.enter("Comm.Size");
        Ok(self.env.engine.lock().comm_size(self.handle)?)
    }

    /// `Comm.Group()`.
    pub fn group(&self) -> MpiResult<Group> {
        self.env.jni.enter("Comm.Group");
        Ok(Group::from_engine(
            self.env.engine.lock().comm_group(self.handle)?,
        ))
    }

    /// `Comm.Compare(comm1, comm2)`.
    pub fn compare(a: &Comm, b: &Comm) -> MpiResult<mpi_native::CompareResult> {
        a.env.jni.enter("Comm.Compare");
        Ok(a.env.engine.lock().comm_compare(a.handle, b.handle)?)
    }

    /// `Comm.Free()`. Only has an observable effect on explicitly created
    /// communicators; the paper (§2.1) notes `Comm` keeps an explicit
    /// `Free` because freeing can have visible side effects.
    pub fn free(&self) -> MpiResult<()> {
        self.env.jni.enter("Comm.Free");
        Ok(self.env.engine.lock().comm_free(self.handle)?)
    }

    // ------------------------------------------------------------------
    // Buffer marshalling helpers (the simulated JNI stub layer)
    // ------------------------------------------------------------------

    pub(crate) fn check_type<T: BufferElement>(&self, datatype: &Datatype) -> MpiResult<()> {
        if datatype.is_object() {
            return Err(MPIException::new(
                ErrorClass::Type,
                "MPI.OBJECT buffers must use the send_object/recv_object methods",
            ));
        }
        let compatible = datatype.base_kind() == T::KIND
            || (datatype.base_kind() == PrimitiveKind::Packed && T::KIND == PrimitiveKind::Byte)
            || (datatype.base_kind().is_pair()
                && datatype.base_kind().size().is_multiple_of(T::KIND.size())
                && pair_component_matches(datatype.base_kind(), T::KIND));
        if compatible {
            Ok(())
        } else {
            Err(MPIException::new(
                ErrorClass::Type,
                format!(
                    "buffer element type {:?} does not match datatype base {:?}",
                    T::KIND,
                    datatype.base_kind()
                ),
            ))
        }
    }

    /// Marshal `count` instances of `datatype` starting at element `offset`
    /// of `buf` into a contiguous byte payload (the `Get*ArrayRegion` +
    /// `MPI_Pack` step of the real stub layer).
    pub(crate) fn pack_buffer<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
    ) -> MpiResult<Vec<u8>> {
        self.check_type::<T>(datatype)?;
        let span = span_elements(datatype, count, T::KIND.size());
        if offset + span > buf.len() {
            return Err(MPIException::new(
                ErrorClass::Buffer,
                format!(
                    "buffer too small: offset {offset} + span {span} > length {}",
                    buf.len()
                ),
            ));
        }
        let window = &buf[offset..offset + span];
        let bytes = slice_to_bytes(window);
        self.env.jni.note_pinned_in(0); // no-op, keeps pin/copy symmetric
        let image = self.env.jni.marshal_in(&bytes);
        let packed = pack::pack(&image, 0, count, datatype.def())?;
        Ok(packed)
    }

    /// Scatter a received contiguous payload back into the user buffer
    /// (the `MPI_Unpack` + `Set*ArrayRegion` step).
    pub(crate) fn unpack_buffer<T: BufferElement>(
        &self,
        wire: &[u8],
        buf: &mut [T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
    ) -> MpiResult<()> {
        self.check_type::<T>(datatype)?;
        let span = span_elements(datatype, count, T::KIND.size());
        if offset + span > buf.len() {
            return Err(MPIException::new(
                ErrorClass::Truncate,
                format!(
                    "receive buffer too small: offset {offset} + span {span} > length {}",
                    buf.len()
                ),
            ));
        }
        self.env.jni.note_out(wire.len());
        let window = &buf[offset..offset + span];
        let mut image = slice_to_bytes(window);
        pack::unpack(wire, &mut image, 0, count, datatype.def())?;
        bytes_to_elements(buf, offset, &image);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn send_mode<T: BufferElement>(
        &self,
        name: &'static str,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
        mode: SendMode,
    ) -> MpiResult<()> {
        self.env.jni.enter(name);
        let payload = self.pack_buffer(buf, offset, count, datatype)?;
        self.env
            .engine
            .lock()
            .send(self.handle, dest, tag, &payload, mode)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Blocking point-to-point (paper §2: Send / Recv signatures)
    // ------------------------------------------------------------------

    /// `Comm.Send(buf, offset, count, datatype, dest, tag)`.
    pub fn send<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<()> {
        self.send_mode(
            "Comm.Send",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Standard,
        )
    }

    /// `Comm.Bsend`.
    pub fn bsend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<()> {
        self.send_mode(
            "Comm.Bsend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Buffered,
        )
    }

    /// `Comm.Ssend`.
    pub fn ssend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<()> {
        self.send_mode(
            "Comm.Ssend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Synchronous,
        )
    }

    /// `Comm.Rsend`.
    pub fn rsend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<()> {
        self.send_mode(
            "Comm.Rsend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Ready,
        )
    }

    /// `Comm.Recv(buf, offset, count, datatype, source, tag)`.
    pub fn recv<T: BufferElement>(
        &self,
        buf: &mut [T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        source: i32,
        tag: i32,
    ) -> MpiResult<Status> {
        self.env.jni.enter("Comm.Recv");
        self.check_type::<T>(datatype)?;
        let max_len = datatype.size() * count;
        let (data, info) = self
            .env
            .engine
            .lock()
            .recv(self.handle, source, tag, Some(max_len))?;
        self.unpack_buffer(&data, buf, offset, count, datatype)?;
        Ok(Status::from_info(info))
    }

    /// Single-copy receive of contiguous `T` elements — the fast path
    /// behind the idiomatic `rs::Communicator::recv_into`.
    ///
    /// The classic [`Comm::recv`] reproduces the paper's full JNI
    /// marshalling (wire → pack image → `Set*ArrayRegion` write-back);
    /// for a contiguous basic datatype that pipeline is byte-equivalent
    /// to one straight copy, so this path takes the engine's refcounted
    /// completion buffer and scatters it into the user slice exactly
    /// once. The simulated JNI crossing itself is still recorded, so the
    /// wrapper-overhead accounting stays honest.
    pub(crate) fn recv_into_contiguous<T: BufferElement>(
        &self,
        buf: &mut [T],
        source: i32,
        tag: i32,
    ) -> MpiResult<Status> {
        self.env.jni.enter("Comm.Recv");
        let max_len = T::KIND.size() * buf.len();
        let mut engine = self.env.engine.lock();
        let (data, info) = engine.recv(self.handle, source, tag, Some(max_len))?;
        self.env.jni.note_out(data.len());
        bytes_to_elements(buf, 0, &data);
        // The delivery copy happened up here in the binding, but it is
        // part of the datapath's copy budget: account it, and feed the
        // spent transport buffer back into the engine's staging pool —
        // the same bookkeeping `Engine::recv_into` does internally.
        engine.note_payload_copy(data.len());
        engine.recycle_payload(data);
        Ok(Status::from_info(info))
    }

    /// `Comm.Sendrecv`: combined exchange.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv<S: BufferElement, R: BufferElement>(
        &self,
        send_buf: &[S],
        send_offset: usize,
        send_count: usize,
        send_type: &Datatype,
        dest: i32,
        send_tag: i32,
        recv_buf: &mut [R],
        recv_offset: usize,
        recv_count: usize,
        recv_type: &Datatype,
        source: i32,
        recv_tag: i32,
    ) -> MpiResult<Status> {
        self.env.jni.enter("Comm.Sendrecv");
        let payload = self.pack_buffer(send_buf, send_offset, send_count, send_type)?;
        self.check_type::<R>(recv_type)?;
        let max_len = recv_type.size() * recv_count;
        let (data, info) = self.env.engine.lock().sendrecv(
            self.handle,
            dest,
            send_tag,
            &payload,
            source,
            recv_tag,
            Some(max_len),
        )?;
        self.unpack_buffer(&data, recv_buf, recv_offset, recv_count, recv_type)?;
        Ok(Status::from_info(info))
    }

    // ------------------------------------------------------------------
    // Non-blocking point-to-point
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn isend_mode<T: BufferElement>(
        &self,
        name: &'static str,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
        mode: SendMode,
    ) -> MpiResult<Request<'static>> {
        self.env.jni.enter(name);
        let payload = self.pack_buffer(buf, offset, count, datatype)?;
        let id = self
            .env
            .engine
            .lock()
            .isend(self.handle, dest, tag, &payload, mode)?;
        Ok(Request::send(Arc::clone(&self.env), id))
    }

    /// `Comm.Isend`.
    pub fn isend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<Request<'static>> {
        self.isend_mode(
            "Comm.Isend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Standard,
        )
    }

    /// `Comm.Ibsend`.
    pub fn ibsend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<Request<'static>> {
        self.isend_mode(
            "Comm.Ibsend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Buffered,
        )
    }

    /// `Comm.Issend`.
    pub fn issend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<Request<'static>> {
        self.isend_mode(
            "Comm.Issend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Synchronous,
        )
    }

    /// `Comm.Irsend`.
    pub fn irsend<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<Request<'static>> {
        self.isend_mode(
            "Comm.Irsend",
            buf,
            offset,
            count,
            datatype,
            dest,
            tag,
            SendMode::Ready,
        )
    }

    /// `Comm.Irecv(buf, offset, count, datatype, source, tag)`.
    ///
    /// The returned [`Request`] borrows `buf` mutably until it is waited
    /// on — the Rust-safe equivalent of mpiJava handing the Java array to
    /// the JNI layer for the duration of the receive.
    pub fn irecv<'buf, T: BufferElement>(
        &self,
        buf: &'buf mut [T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        source: i32,
        tag: i32,
    ) -> MpiResult<Request<'buf>> {
        self.env.jni.enter("Comm.Irecv");
        self.check_type::<T>(datatype)?;
        let max_len = datatype.size() * count;
        let id = self
            .env
            .engine
            .lock()
            .irecv(self.handle, source, tag, Some(max_len))?;
        let comm = self.clone();
        let datatype = datatype.clone();
        Ok(Request::recv(
            Arc::clone(&self.env),
            id,
            Box::new(move |wire: &[u8]| comm.unpack_buffer(wire, buf, offset, count, &datatype)),
        ))
    }

    // ------------------------------------------------------------------
    // Persistent requests
    // ------------------------------------------------------------------

    /// `Comm.Send_init`: build a persistent send request (a `Prequest`).
    pub fn send_init<'buf, T: BufferElement>(
        &self,
        buf: &'buf [T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        dest: i32,
        tag: i32,
    ) -> MpiResult<Prequest<'buf>> {
        self.env.jni.enter("Comm.Send_init");
        let payload = self.pack_buffer(buf, offset, count, datatype)?;
        let id = self.env.engine.lock().send_init(
            self.handle,
            dest,
            tag,
            &payload,
            SendMode::Standard,
        )?;
        let comm = self.clone();
        let datatype = datatype.clone();
        Ok(Prequest::send(
            Arc::clone(&self.env),
            id,
            Box::new(move || comm.pack_buffer(buf, offset, count, &datatype)),
        ))
    }

    /// `Comm.Recv_init`: build a persistent receive request.
    pub fn recv_init<'buf, T: BufferElement>(
        &self,
        buf: &'buf mut [T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        source: i32,
        tag: i32,
    ) -> MpiResult<Prequest<'buf>> {
        self.env.jni.enter("Comm.Recv_init");
        self.check_type::<T>(datatype)?;
        let max_len = datatype.size() * count;
        let id = self
            .env
            .engine
            .lock()
            .recv_init(self.handle, source, tag, Some(max_len))?;
        let comm = self.clone();
        let datatype = datatype.clone();
        Ok(Prequest::recv(
            Arc::clone(&self.env),
            id,
            Box::new(move |wire: &[u8]| {
                comm.unpack_buffer(wire, &mut buf[..], offset, count, &datatype)
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Probe
    // ------------------------------------------------------------------

    /// `Comm.Probe(source, tag)`.
    pub fn probe(&self, source: i32, tag: i32) -> MpiResult<Status> {
        self.env.jni.enter("Comm.Probe");
        let info = self.env.engine.lock().probe(self.handle, source, tag)?;
        Ok(Status::from_info(info))
    }

    /// `Comm.Iprobe(source, tag)`: `None` when no matching message has
    /// arrived (the paper's convention of returning `null` for the failed
    /// case, §2.1).
    pub fn iprobe(&self, source: i32, tag: i32) -> MpiResult<Option<Status>> {
        self.env.jni.enter("Comm.Iprobe");
        let info = self.env.engine.lock().iprobe(self.handle, source, tag)?;
        Ok(info.map(Status::from_info))
    }

    // ------------------------------------------------------------------
    // Pack / Unpack
    // ------------------------------------------------------------------

    /// `Comm.Pack_size(count, datatype)`: bytes needed to pack `count`
    /// instances.
    pub fn pack_size(&self, count: usize, datatype: &Datatype) -> usize {
        datatype.size() * count
    }

    /// `Comm.Pack`: append `count` instances of `datatype` from `buf` to
    /// `out`, returning the new position (mirrors the C `position`
    /// in/out argument by returning the updated value).
    pub fn pack<T: BufferElement>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
        out: &mut Vec<u8>,
    ) -> MpiResult<usize> {
        self.env.jni.enter("Comm.Pack");
        let payload = self.pack_buffer(buf, offset, count, datatype)?;
        out.extend_from_slice(&payload);
        Ok(out.len())
    }

    /// `Comm.Unpack`: extract `count` instances of `datatype` from
    /// `packed[position..]` into `buf`, returning the new position.
    #[allow(clippy::too_many_arguments)]
    pub fn unpack<T: BufferElement>(
        &self,
        packed: &[u8],
        position: usize,
        buf: &mut [T],
        offset: usize,
        count: usize,
        datatype: &Datatype,
    ) -> MpiResult<usize> {
        self.env.jni.enter("Comm.Unpack");
        let needed = datatype.size() * count;
        if position + needed > packed.len() {
            return Err(MPIException::new(
                ErrorClass::Truncate,
                format!(
                    "unpack: need {needed} bytes at position {position}, packed buffer has {}",
                    packed.len()
                ),
            ));
        }
        self.unpack_buffer(
            &packed[position..position + needed],
            buf,
            offset,
            count,
            datatype,
        )?;
        Ok(position + needed)
    }

    // ------------------------------------------------------------------
    // MPI.OBJECT: serialized object messages (paper §2.2)
    // ------------------------------------------------------------------

    /// Send `count` objects from `buf[offset..]` using the `MPI.OBJECT`
    /// datatype: each object is serialized in the wrapper, exactly as the
    /// paper proposes.
    pub fn send_object<T: Serializable>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
        dest: i32,
        tag: i32,
    ) -> MpiResult<()> {
        self.env.jni.enter("Comm.Send[OBJECT]");
        let payload = self.serialize_objects(buf, offset, count)?;
        self.env
            .engine
            .lock()
            .send(self.handle, dest, tag, &payload, SendMode::Standard)?;
        Ok(())
    }

    /// Receive up to `count` objects into fresh values (returned rather
    /// than written in place — objects are immutable-by-construction here).
    pub fn recv_object<T: Serializable>(
        &self,
        count: usize,
        source: i32,
        tag: i32,
    ) -> MpiResult<(Vec<T>, Status)> {
        self.env.jni.enter("Comm.Recv[OBJECT]");
        let (data, info) = self
            .env
            .engine
            .lock()
            .recv(self.handle, source, tag, None)?;
        self.env.jni.note_out(data.len());
        let objects = self.deserialize_objects(&data, count)?;
        Ok((objects, Status::from_info(info)))
    }

    pub(crate) fn serialize_objects<T: Serializable>(
        &self,
        buf: &[T],
        offset: usize,
        count: usize,
    ) -> MpiResult<Vec<u8>> {
        if offset + count > buf.len() {
            return Err(MPIException::new(
                ErrorClass::Buffer,
                "object buffer too small for offset + count",
            ));
        }
        let mut payload = Vec::new();
        payload.extend_from_slice(&(count as u64).to_le_bytes());
        for obj in &buf[offset..offset + count] {
            let bytes = serialize(obj);
            payload.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            payload.extend_from_slice(&bytes);
        }
        self.env.jni.note_pinned_in(payload.len());
        Ok(payload)
    }

    pub(crate) fn deserialize_objects<T: Serializable>(
        &self,
        data: &[u8],
        max_count: usize,
    ) -> MpiResult<Vec<T>> {
        if data.len() < 8 {
            return Err(MPIException::new(
                ErrorClass::Truncate,
                "object message shorter than its header",
            ));
        }
        let n = u64::from_le_bytes(data[0..8].try_into().unwrap()) as usize;
        if n > max_count {
            return Err(MPIException::new(
                ErrorClass::Truncate,
                format!("received {n} objects but the receive asked for at most {max_count}"),
            ));
        }
        let mut cursor = 8usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if cursor + 8 > data.len() {
                return Err(MPIException::new(
                    ErrorClass::Truncate,
                    "object stream truncated",
                ));
            }
            let len = u64::from_le_bytes(data[cursor..cursor + 8].try_into().unwrap()) as usize;
            cursor += 8;
            if cursor + len > data.len() {
                return Err(MPIException::new(
                    ErrorClass::Truncate,
                    "object stream truncated",
                ));
            }
            out.push(deserialize(&data[cursor..cursor + len])?);
            cursor += len;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Low-level escape hatch used by the benchmark harness
    // ------------------------------------------------------------------

    /// Send raw bytes through the wrapper (still crosses the simulated JNI
    /// boundary). Used by the "mpiJava" series of the PingPong benchmark.
    pub fn send_bytes(&self, bytes: &[u8], dest: i32, tag: i32) -> MpiResult<()> {
        self.env.jni.enter("Comm.Send[bytes]");
        let image = self.env.jni.marshal_in(bytes);
        self.env
            .engine
            .lock()
            .send(self.handle, dest, tag, &image, SendMode::Standard)?;
        Ok(())
    }

    /// Receive raw bytes through the wrapper into `buf`, returning the
    /// status (counterpart of [`Comm::send_bytes`]). Rides the engine's
    /// single-copy `recv_into`, which also recycles the spent transport
    /// buffer into the engine's send pool.
    pub fn recv_bytes(&self, buf: &mut [u8], source: i32, tag: i32) -> MpiResult<Status> {
        self.env.jni.enter("Comm.Recv[bytes]");
        let info = self
            .env
            .engine
            .lock()
            .recv_into(self.handle, source, tag, buf)?;
        self.env.jni.note_out(info.count_bytes);
        Ok(Status::from_info(info))
    }
}

fn pair_component_matches(pair: PrimitiveKind, elem: PrimitiveKind) -> bool {
    matches!(
        (pair, elem),
        (PrimitiveKind::Int2, PrimitiveKind::Int)
            | (PrimitiveKind::Long2, PrimitiveKind::Long)
            | (PrimitiveKind::Float2, PrimitiveKind::Float)
            | (PrimitiveKind::Double2, PrimitiveKind::Double)
            | (PrimitiveKind::Short2, PrimitiveKind::Short)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_covers_basic_and_contiguous_types() {
        assert_eq!(span_elements(&Datatype::int(), 0, 4), 0);
        assert_eq!(span_elements(&Datatype::int(), 5, 4), 5);
        let c = Datatype::contiguous(3, &Datatype::double()).unwrap();
        assert_eq!(span_elements(&c, 2, 8), 6);
    }

    #[test]
    fn span_counts_holes_but_not_the_trailing_gap() {
        // 2 blocks of 1 int, stride 3 ints: instance covers ints 0 and 3.
        let v = Datatype::vector(2, 1, 3, &Datatype::int()).unwrap();
        // One instance reaches int index 3 (ub = 16 bytes = 4 ints).
        assert_eq!(span_elements(&v, 1, 4), 4);
        // A second instance starts one extent (16 bytes) later.
        assert_eq!(span_elements(&v, 2, 4), 8);
    }

    #[test]
    fn span_guards_degenerate_negative_ub() {
        // All displacements negative: ub collapses to 0 — one instance
        // touches nothing above the window start (the pack step reports
        // the precise negative-displacement error), but the negative ub
        // must not shrink the span contributed by later instances.
        let d = Datatype::hindexed(&[1], &[-8], &Datatype::double()).unwrap();
        assert!(d.ub() <= 0, "precondition: degenerate upper bound");
        assert_eq!(span_elements(&d, 1, 8), 0);
        // extent = ub - lb = 8 bytes; instances 2 and 3 reach 8 and 16.
        assert_eq!(span_elements(&d, 3, 8), 2);
    }

    #[test]
    fn span_uses_ub_not_size_for_overlapping_typemaps() {
        // Two blocks at the same displacement: size() (8 bytes) exceeds
        // ub() (4 bytes). The span is what the buffer must hold — one
        // int — and must not be inflated to size(), which would reject
        // a legal send from a one-element buffer.
        let d = Datatype::indexed(&[1, 1], &[0, 0], &Datatype::int()).unwrap();
        assert!(d.size() as isize > d.ub(), "precondition: overlap");
        assert_eq!(span_elements(&d, 1, 4), 1);
        assert_eq!(span_elements(&d, 2, 4), 2);
    }
}
