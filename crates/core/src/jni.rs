//! Simulated JNI boundary.
//!
//! In the paper, every mpiJava call crosses from the JVM into the C stub
//! library: arguments are validated and converted, the Java array backing
//! the message buffer is pinned or copied (`Get<Type>ArrayElements` /
//! `Get<Type>ArrayRegion`), the native MPI routine runs, and results are
//! copied back. The paper's evaluation attributes mpiJava's extra latency
//! to exactly this layer plus the generally slower JVM.
//!
//! This module reproduces that boundary as an explicit, measurable object:
//! the binding routes every buffer movement through [`JniBoundary`], which
//!
//! * performs a real marshalling copy in *copy* mode (the default, matching
//!   the JDK 1.1/1.2 behaviour the paper ran on, where `Get*ArrayElements`
//!   usually copies) or hands out the caller's bytes directly in *pin*
//!   mode (the zero-copy behaviour of a pinning garbage collector),
//! * charges a configurable fixed per-call cost representing stub dispatch
//!   and argument conversion (and, when calibrating against the paper's
//!   1999 numbers, the slower JVM),
//! * counts calls and bytes so experiments can report exactly what the
//!   boundary cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How array arguments cross the simulated JNI boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarshalMode {
    /// `Get*ArrayRegion`-style copy in and out (default; what the paper's
    /// JDK did).
    Copy,
    /// Pinning: no copies, the native layer works on the caller's memory.
    Pin,
}

/// Configuration of the simulated boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JniConfig {
    /// Copy vs pin (see [`MarshalMode`]).
    pub marshal: MarshalMode,
    /// Fixed cost charged on every wrapper call (stub dispatch, argument
    /// conversion, JVM overhead). Zero by default; the benchmark harness
    /// sets a calibrated value for the "1999 JVM" runs.
    pub per_call_cost: Duration,
}

impl Default for JniConfig {
    fn default() -> Self {
        JniConfig {
            marshal: MarshalMode::Copy,
            per_call_cost: Duration::ZERO,
        }
    }
}

/// Counters describing the traffic that crossed the boundary.
#[derive(Debug, Default)]
pub struct JniStats {
    calls: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// Snapshot of [`JniStats`] (plain values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JniStatsSnapshot {
    /// Number of wrapper calls that crossed the boundary.
    pub calls: u64,
    /// Bytes marshalled from user buffers into native buffers.
    pub bytes_in: u64,
    /// Bytes marshalled from native buffers back into user buffers.
    pub bytes_out: u64,
}

/// The simulated JNI boundary (one per `MPI` environment / rank).
#[derive(Debug, Default)]
pub struct JniBoundary {
    config: JniConfig,
    stats: JniStats,
}

impl JniBoundary {
    /// Boundary with the given configuration.
    pub fn new(config: JniConfig) -> JniBoundary {
        JniBoundary {
            config,
            stats: JniStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> JniConfig {
        self.config
    }

    /// Account for one wrapper call and charge the per-call cost.
    pub fn enter(&self, _name: &'static str) {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let cost = self.config.per_call_cost;
        if !cost.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < cost {
                std::hint::spin_loop();
            }
        }
    }

    /// Marshal `bytes` of a user buffer into a native buffer
    /// (`Get*ArrayRegion`). In pin mode this is free and the caller uses
    /// its own slice; in copy mode the bytes are duplicated.
    pub fn marshal_in(&self, bytes: &[u8]) -> Vec<u8> {
        self.stats
            .bytes_in
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        match self.config.marshal {
            MarshalMode::Copy => bytes.to_vec(),
            MarshalMode::Pin => bytes.to_vec(), // still owned, but see marshal_in_pinned
        }
    }

    /// True when the configuration allows the native layer to read the
    /// caller's bytes directly (no marshalling copy).
    pub fn can_pin(&self) -> bool {
        self.config.marshal == MarshalMode::Pin
    }

    /// Account for bytes that crossed the boundary without a copy (pin
    /// mode fast path).
    pub fn note_pinned_in(&self, len: usize) {
        self.stats.bytes_in.fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Account for bytes copied back into a user buffer
    /// (`Set*ArrayRegion` / `Release*ArrayElements`).
    pub fn note_out(&self, len: usize) {
        self.stats
            .bytes_out
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> JniStatsSnapshot {
        JniStatsSnapshot {
            calls: self.stats.calls.load(Ordering::Relaxed),
            bytes_in: self.stats.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.stats.bytes_out.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calls_and_bytes_are_counted() {
        let jni = JniBoundary::new(JniConfig::default());
        jni.enter("MPI_Send");
        jni.enter("MPI_Recv");
        let copied = jni.marshal_in(&[1, 2, 3, 4]);
        assert_eq!(copied, vec![1, 2, 3, 4]);
        jni.note_out(10);
        let s = jni.stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.bytes_in, 4);
        assert_eq!(s.bytes_out, 10);
    }

    #[test]
    fn per_call_cost_is_charged() {
        let jni = JniBoundary::new(JniConfig {
            marshal: MarshalMode::Copy,
            per_call_cost: Duration::from_micros(200),
        });
        let start = std::time::Instant::now();
        jni.enter("MPI_Send");
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn pin_mode_reports_pinnable() {
        let copy = JniBoundary::new(JniConfig::default());
        assert!(!copy.can_pin());
        let pin = JniBoundary::new(JniConfig {
            marshal: MarshalMode::Pin,
            per_call_cost: Duration::ZERO,
        });
        assert!(pin.can_pin());
        pin.note_pinned_in(128);
        assert_eq!(pin.stats().bytes_in, 128);
    }
}
