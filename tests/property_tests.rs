//! Property-style tests over the invariants DESIGN.md calls out: datatype
//! size/extent algebra, pack/unpack round trips, group set algebra,
//! reduction correctness against a serial fold, and object serialization
//! round trips.
//!
//! The build environment has no crates.io mirror, so instead of proptest
//! these run each property over a deterministic pseudo-random sample
//! (a fixed-seed xorshift generator) — the same shape of coverage, fully
//! reproducible, no external dependency.

use mpi_native::{pack, DatatypeDef, Group, Op, PredefinedOp, PrimitiveKind};
use mpijava::serial::{deserialize, serialize};
use mpijava::Datatype;

/// Deterministic xorshift64* generator: the "arbitrary input" source.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn isize_in(&mut self, lo: isize, hi: isize) -> isize {
        lo + (self.next_u64() as usize % (hi - lo) as usize) as isize
    }

    fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_u64() % (hi - lo) as u64) as i32
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

const CASES: usize = 64;

/// size(contiguous(n, T)) == n * size(T) and extents compose the same way.
#[test]
fn contiguous_datatype_algebra() {
    let mut g = Gen::new(0xC047);
    for _ in 0..CASES {
        let count = g.usize_in(1, 50);
        let base = Datatype::double();
        let derived = Datatype::contiguous(count, &base).unwrap();
        assert_eq!(derived.size(), count * base.size());
        assert_eq!(derived.extent(), count as isize * base.extent());
    }
}

/// A vector type selects exactly count*blocklength elements regardless of
/// stride, and its extent equals the span implied by the stride.
#[test]
fn vector_datatype_size_is_stride_independent() {
    let mut g = Gen::new(0x7EC7);
    for _ in 0..CASES {
        let count = g.usize_in(1, 8);
        let blocklength = g.usize_in(1, 8);
        let extra_stride = g.isize_in(0, 8);
        let stride = blocklength as isize + extra_stride;
        let v = Datatype::vector(count, blocklength, stride, &Datatype::int()).unwrap();
        assert_eq!(v.size(), count * blocklength * 4);
        let span = ((count as isize - 1) * stride + blocklength as isize) * 4;
        assert_eq!(v.extent(), span);
    }
}

/// pack followed by unpack restores exactly the selected elements and
/// never touches the holes.
#[test]
fn pack_unpack_roundtrip_indexed() {
    let mut g = Gen::new(0xD00D);
    for _ in 0..CASES {
        // Build non-overlapping blocks by laying them out cumulatively.
        let n_blocks = g.usize_in(1, 5);
        let mut blocklengths = Vec::new();
        let mut displacements = Vec::new();
        let mut cursor = 0isize;
        for _ in 0..n_blocks {
            let len = g.usize_in(1, 4);
            let gap = g.usize_in(0, 4);
            displacements.push(cursor + gap as isize);
            blocklengths.push(len);
            cursor += (gap + len) as isize;
        }
        let dt = DatatypeDef::basic(PrimitiveKind::Int)
            .indexed(&blocklengths, &displacements)
            .unwrap();
        let total_elems = cursor as usize + 4;
        let original: Vec<u8> = (0..total_elems as i32 * 4).map(|i| i as u8).collect();
        let packed = pack::pack(&original, 0, 1, &dt).unwrap();
        assert_eq!(packed.len(), dt.size());

        let mut restored = vec![0u8; original.len()];
        pack::unpack(&packed, &mut restored, 0, 1, &dt).unwrap();
        // Pack the restored buffer again: must equal the first packing.
        let repacked = pack::pack(&restored, 0, 1, &dt).unwrap();
        assert_eq!(packed, repacked);
    }
}

/// Group set algebra: union/intersection/difference behave like the
/// corresponding operations on sets of world ranks.
#[test]
fn group_set_algebra() {
    use std::collections::BTreeSet;
    let mut g = Gen::new(0x6209);
    for _ in 0..CASES {
        let a: BTreeSet<usize> = (0..g.usize_in(0, 10)).map(|_| g.usize_in(0, 16)).collect();
        let b: BTreeSet<usize> = (0..g.usize_in(0, 10)).map(|_| g.usize_in(0, 16)).collect();
        let ga = Group::from_ranks(a.iter().copied().collect()).unwrap();
        let gb = Group::from_ranks(b.iter().copied().collect()).unwrap();

        let union: BTreeSet<usize> = ga.union(&gb).ranks().iter().copied().collect();
        let expected_union: BTreeSet<usize> = a.union(&b).copied().collect();
        assert_eq!(union, expected_union);

        let inter: BTreeSet<usize> = ga.intersection(&gb).ranks().iter().copied().collect();
        let expected_inter: BTreeSet<usize> = a.intersection(&b).copied().collect();
        assert_eq!(inter, expected_inter);

        let diff: BTreeSet<usize> = ga.difference(&gb).ranks().iter().copied().collect();
        let expected_diff: BTreeSet<usize> = a.difference(&b).copied().collect();
        assert_eq!(diff, expected_diff);

        // Membership / rank translation consistency.
        for (idx, &world) in ga.ranks().iter().enumerate() {
            assert_eq!(ga.rank_of(world), Some(idx));
        }
    }
}

/// Engine reductions agree with a straightforward serial fold.
#[test]
fn reductions_match_serial_fold() {
    let mut g = Gen::new(0xF01D);
    for _ in 0..CASES {
        let n_contrib = g.usize_in(1, 6);
        let contributions: Vec<Vec<i32>> = (0..n_contrib)
            .map(|_| (0..4).map(|_| g.i32_in(-1000, 1000)).collect())
            .collect();
        for op in [PredefinedOp::Sum, PredefinedOp::Max, PredefinedOp::Min] {
            let engine_op = Op::Predefined(op);
            let mut acc: Vec<u8> = contributions[0]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            for c in &contributions[1..] {
                let bytes: Vec<u8> = c.iter().flat_map(|v| v.to_le_bytes()).collect();
                engine_op
                    .apply(&bytes, &mut acc, PrimitiveKind::Int, 4)
                    .unwrap();
            }
            let got: Vec<i32> = acc
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for i in 0..4 {
                let column: Vec<i32> = contributions.iter().map(|c| c[i]).collect();
                let expected = match op {
                    PredefinedOp::Sum => column.iter().sum::<i32>(),
                    PredefinedOp::Max => *column.iter().max().unwrap(),
                    PredefinedOp::Min => *column.iter().min().unwrap(),
                    _ => unreachable!(),
                };
                assert_eq!(got[i], expected, "op {op:?} column {i}");
            }
        }
    }
}

/// The object serializer round-trips arbitrary nested payloads.
#[test]
fn serialization_roundtrip() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    let mut g = Gen::new(0x5E41);
    for _ in 0..CASES {
        let ints: Vec<i64> = (0..g.usize_in(0, 20))
            .map(|_| g.next_u64() as i64)
            .collect();
        let text: String = (0..g.usize_in(0, 40))
            .map(|_| ALPHABET[g.usize_in(0, ALPHABET.len())] as char)
            .collect();
        let flag = if g.bool() { Some(g.bool()) } else { None };
        let value = (ints.clone(), text.clone(), flag);
        let bytes = serialize(&value);
        let back: (Vec<i64>, String, Option<bool>) = deserialize(&bytes).unwrap();
        assert_eq!(back, value);
    }
}

/// Status counts divide bytes exactly or report None, never panic.
#[test]
fn status_count_partial_instances() {
    for bytes in 0usize..256 {
        let info = mpi_native::StatusInfo {
            source: 0,
            tag: 0,
            count_bytes: bytes,
            cancelled: false,
            index: 0,
        };
        for kind in [
            PrimitiveKind::Byte,
            PrimitiveKind::Int,
            PrimitiveKind::Double,
        ] {
            match info.count(kind) {
                Some(n) => assert_eq!(n * kind.size(), bytes),
                None => assert_ne!(bytes % kind.size(), 0),
            }
        }
    }
}
