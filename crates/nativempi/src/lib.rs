//! # mpi-native
//!
//! A from-scratch MPI-1.1 message-passing engine, playing the role of the
//! *native MPI library* (MPICH / WMPI) that the mpiJava wrapper of
//! Baker, Carpenter, Fox, Ko & Lim (IPPS 1999) binds to through JNI.
//!
//! The engine is deliberately structured like a small MPICH: a *device*
//! (from the `mpi-transport` crate) moves byte frames between ranks, and
//! this crate layers on top of it
//!
//! * message **matching** (context id, source, tag, wildcards,
//!   non-overtaking order) and the eager / rendezvous protocols
//!   ([`p2p`]),
//! * blocking, non-blocking and **persistent requests** with the full
//!   `Wait*`/`Test*` families ([`request`]),
//! * **groups** and their set algebra ([`group`]),
//! * **communicators** with private context ids, `dup`/`split`/`create`
//!   ([`comm`]),
//! * **collective operations** — barrier, broadcast, gather(v), scatter(v),
//!   allgather(v), alltoall(v), reduce, allreduce, reduce-scatter, scan —
//!   built over point-to-point on a separate collective context as a
//!   pluggable algorithm subsystem ([`coll`]): linear (paper-faithful
//!   baseline), binomial tree, recursive doubling and ring wire patterns
//!   behind a size-aware selector ([`coll::tuning`]) with an
//!   `MPIJAVA_COLL_ALG` override for ablations,
//! * **reduction operations** including `MAXLOC`/`MINLOC` and user
//!   functions ([`ops`]),
//! * **derived datatypes** and pack/unpack ([`datatype`], [`pack`]),
//! * **virtual topologies** (cartesian and graph, [`topology`]),
//! * environment services — `Wtime`, processor name, attributes, abort
//!   ([`mod@env`]),
//! * a [`universe::Universe`] launcher that plays `mpirun`, creating one
//!   engine per rank over a shared fabric and running them on threads.
//!
//! Every rank owns exactly one [`Engine`]; all MPI calls of that rank go
//! through it. The object-oriented binding of the paper is implemented in
//! the `mpijava` crate on top of this engine.

pub mod coll;
pub mod comm;
pub mod datatype;
pub mod env;
pub mod error;
pub mod group;
pub mod ops;
pub mod p2p;
pub mod pack;
pub mod request;
pub mod topology;
pub mod types;
pub mod universe;

pub use coll::{CollAlgorithm, CollOp, COLL_ALG_ENV};
pub use comm::{CommHandle, COMM_SELF, COMM_WORLD};
pub use datatype::DatatypeDef;
pub use error::{ErrorClass, MpiError, Result};
pub use group::{CompareResult, Group};
pub use ops::{Op, PredefinedOp};
pub use request::RequestId;
pub use types::{PrimitiveKind, SendMode, StatusInfo, ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED};
pub use universe::{Universe, UniverseConfig};

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use mpi_transport::Endpoint;

use comm::CommRecord;
use p2p::{PendingRendezvous, PostedRecv, UnexpectedMsg};
use request::RequestState;

/// Counters the engine keeps about its own activity. The benchmark harness
/// reads these to report, e.g., how many messages went eager vs rendezvous.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Messages sent with the eager protocol.
    pub eager_sends: u64,
    /// Messages sent with the rendezvous protocol.
    pub rendezvous_sends: u64,
    /// Messages that were matched from the unexpected queue.
    pub unexpected_hits: u64,
    /// Messages that matched an already-posted receive on arrival.
    pub posted_hits: u64,
    /// Total payload bytes sent (excluding engine control traffic).
    pub bytes_sent: u64,
    /// Total payload bytes received.
    pub bytes_received: u64,
}

/// Per-rank MPI engine. See the crate documentation.
pub struct Engine {
    pub(crate) endpoint: Box<dyn Endpoint>,
    pub(crate) world_rank: usize,
    pub(crate) world_size: usize,
    pub(crate) comms: Vec<Option<CommRecord>>,
    pub(crate) context_to_comm: HashMap<u32, usize>,
    pub(crate) next_context: u32,
    pub(crate) requests: HashMap<u64, RequestState>,
    pub(crate) next_request: u64,
    pub(crate) posted: VecDeque<PostedRecv>,
    pub(crate) unexpected: VecDeque<UnexpectedMsg>,
    pub(crate) pending_rendezvous: HashMap<u64, PendingRendezvous>,
    pub(crate) awaiting_rendezvous_data: HashMap<u64, u64>,
    pub(crate) next_token: u64,
    pub(crate) eager_threshold: usize,
    pub(crate) attached_buffer: Option<p2p::BsendBuffer>,
    pub(crate) start_time: Instant,
    pub(crate) processor_name: String,
    pub(crate) finalized: bool,
    pub(crate) aborted: bool,
    pub(crate) stats: EngineStats,
    pub(crate) keyvals: HashMap<i32, Vec<u8>>,
    pub(crate) forced_coll_alg: Option<coll::CollAlgorithm>,
}

/// Default payload size (bytes) above which standard-mode sends switch from
/// the eager to the rendezvous protocol. Matches the order of magnitude at
/// which the paper's SM-mode curves converge (Figure 5: offsets vanish
/// around 256 KB).
pub const DEFAULT_EAGER_THRESHOLD: usize = 128 * 1024;

impl Engine {
    /// Build an engine for one rank over the given endpoint.
    ///
    /// This is `MPI_Init` for a single rank; most users go through
    /// [`Universe::run`](universe::Universe::run), which builds the fabric
    /// and one engine per rank.
    pub fn new(endpoint: Box<dyn Endpoint>) -> Engine {
        let world_rank = endpoint.rank();
        let world_size = endpoint.size();
        let mut engine = Engine {
            endpoint,
            world_rank,
            world_size,
            comms: Vec::new(),
            context_to_comm: HashMap::new(),
            next_context: 0,
            requests: HashMap::new(),
            next_request: 1,
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            pending_rendezvous: HashMap::new(),
            awaiting_rendezvous_data: HashMap::new(),
            next_token: 1,
            eager_threshold: DEFAULT_EAGER_THRESHOLD,
            attached_buffer: None,
            start_time: Instant::now(),
            processor_name: format!("rank-{world_rank}.mpijava-rs.local"),
            finalized: false,
            aborted: false,
            stats: EngineStats::default(),
            keyvals: HashMap::new(),
            forced_coll_alg: coll::CollAlgorithm::from_env(),
        };
        engine.install_builtin_comms();
        engine
    }

    /// Override the eager/rendezvous switch-over point (bytes).
    pub fn set_eager_threshold(&mut self, bytes: usize) {
        self.eager_threshold = bytes;
    }

    /// Current eager/rendezvous switch-over point (bytes).
    pub fn eager_threshold(&self) -> usize {
        self.eager_threshold
    }

    /// Pin (or with `None`, un-pin) the collective algorithm, overriding
    /// the size-aware tuning table of [`coll::tuning`] — the programmatic
    /// form of the `MPIJAVA_COLL_ALG` environment override.
    ///
    /// Collectives are cooperative, so the pin must be applied
    /// symmetrically on every rank of a communicator (the `Universe` /
    /// `MpiRuntime` launchers do this for you). A pinned algorithm that
    /// cannot implement a given operation falls back to the tuned choice;
    /// results are byte-identical either way.
    pub fn set_coll_algorithm(&mut self, alg: Option<coll::CollAlgorithm>) {
        self.forced_coll_alg = alg;
    }

    /// The pinned collective algorithm, if any (see
    /// [`set_coll_algorithm`](Engine::set_coll_algorithm)).
    pub fn coll_algorithm(&self) -> Option<coll::CollAlgorithm> {
        self.forced_coll_alg
    }

    /// This process's rank in `MPI_COMM_WORLD`.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of processes in `MPI_COMM_WORLD`.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Activity counters (see [`EngineStats`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// True once [`Engine::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// `MPI_Finalize`: no further communication is allowed afterwards.
    ///
    /// The engine checks that no receive is still posted and no rendezvous
    /// is still outstanding, mirroring the standard's requirement that all
    /// pending communication is completed before finalizing.
    pub fn finalize(&mut self) -> Result<()> {
        if self.finalized {
            return error::err(ErrorClass::NotInitialized, "finalize called twice");
        }
        if !self.posted.is_empty() || !self.pending_rendezvous.is_empty() {
            return error::err(
                ErrorClass::Other,
                "finalize called with outstanding communication",
            );
        }
        self.finalized = true;
        Ok(())
    }

    pub(crate) fn check_live(&self) -> Result<()> {
        if self.finalized {
            return error::err(ErrorClass::NotInitialized, "MPI already finalized");
        }
        if self.aborted {
            return error::err(ErrorClass::Aborted, "job aborted");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_transport::{DeviceKind, Fabric, FabricConfig};

    fn pair() -> (Engine, Engine) {
        let mut eps = Fabric::build(FabricConfig::new(2, DeviceKind::ShmFast))
            .unwrap()
            .into_endpoints();
        let b = Engine::new(eps.pop().unwrap());
        let a = Engine::new(eps.pop().unwrap());
        (a, b)
    }

    #[test]
    fn engine_reports_rank_and_size() {
        let (a, b) = pair();
        assert_eq!(a.world_rank(), 0);
        assert_eq!(b.world_rank(), 1);
        assert_eq!(a.world_size(), 2);
        assert_eq!(b.world_size(), 2);
    }

    #[test]
    fn finalize_is_idempotent_error() {
        let (mut a, _b) = pair();
        a.finalize().unwrap();
        assert!(a.is_finalized());
        assert!(a.finalize().is_err());
        assert!(a.check_live().is_err());
    }

    #[test]
    fn eager_threshold_is_configurable() {
        let (mut a, _b) = pair();
        assert_eq!(a.eager_threshold(), DEFAULT_EAGER_THRESHOLD);
        a.set_eager_threshold(1024);
        assert_eq!(a.eager_threshold(), 1024);
    }
}
