//! Multi-fabric hybrid device: intra-node traffic over the shm-class
//! path, inter-node traffic over a modelled network link.
//!
//! The paper's jobs run over exactly one native device; a cluster job
//! does not — ranks sharing a node exchange messages through shared
//! memory while ranks on different nodes cross a network. This device
//! reproduces that split behind the ordinary [`Endpoint`] interface so
//! the engine's datapath is unchanged: every send consults the fabric's
//! [`NodeMap`] and routes
//!
//! * **intra-node** frames over the shm-class path — a direct push into
//!   the destination rank's mailbox, charged with the *intra* device
//!   profile and shaped by the *intra* network model (both default to
//!   free/unshaped, like the real thing), and
//! * **inter-node** frames over the modelled-link path — the same
//!   mailbox delivery, but charged with the *inter* [`DeviceProfile`]
//!   and held until the *inter* [`NetworkModel`]'s due instant, exactly
//!   how the TCP device models the paper's Ethernet link without real
//!   1999 hardware.
//!
//! Per-pair FIFO still holds: each ordered rank pair routes over exactly
//! one class (their placement never changes mid-job), and each class
//! preserves push order into the single per-rank inbox.
//!
//! Configure through [`FabricConfig`]: `nodes` carries the placement,
//! `profile`/`network` apply to the intra-node class, and
//! `inter_profile`/`inter_network` to the inter-node class.

use std::sync::Arc;
use std::time::Duration;

use crate::error::{Result, TransportError};
use crate::frame::Frame;
use crate::mailbox::Mailbox;
use crate::nodemap::NodeMap;
use crate::{DeviceKind, DeviceProfile, Endpoint, FabricConfig, NetworkModel, SharedMailbox};

/// One rank's endpoint on the hybrid device.
pub struct HybridEndpoint {
    rank: usize,
    size: usize,
    inboxes: Arc<Vec<SharedMailbox>>,
    nodes: Arc<NodeMap>,
    intra_profile: DeviceProfile,
    intra_network: NetworkModel,
    inter_profile: DeviceProfile,
    inter_network: NetworkModel,
}

/// Namespace struct for building hybrid fabrics.
pub struct HybridDevice;

impl HybridDevice {
    /// Build `config.size` endpoints sharing one set of mailboxes and one
    /// node map.
    pub fn build(config: &FabricConfig) -> Result<Vec<HybridEndpoint>> {
        if config.nodes.len() != config.size {
            return Err(TransportError::InvalidConfig(format!(
                "node map places {} ranks but the fabric has {}",
                config.nodes.len(),
                config.size
            )));
        }
        let inboxes: Arc<Vec<SharedMailbox>> = Arc::new(
            (0..config.size)
                .map(|_| Arc::new(Mailbox::new(config.inbox_capacity)))
                .collect(),
        );
        let nodes = Arc::new(config.nodes.clone());
        Ok((0..config.size)
            .map(|rank| HybridEndpoint {
                rank,
                size: config.size,
                inboxes: Arc::clone(&inboxes),
                nodes: Arc::clone(&nodes),
                intra_profile: config.profile,
                intra_network: config.network,
                inter_profile: config.inter_profile,
                inter_network: config.inter_network,
            })
            .collect())
    }
}

impl Endpoint for HybridEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, frame: Frame) -> Result<()> {
        let dst = frame.header.dst as usize;
        if dst >= self.size {
            return Err(TransportError::RankOutOfRange {
                rank: dst,
                size: self.size,
            });
        }
        let (profile, network) = if self.nodes.same_node(self.rank, dst) {
            (&self.intra_profile, &self.intra_network)
        } else {
            (&self.inter_profile, &self.inter_network)
        };
        profile.charge(frame.len());
        let due = network.due(frame.len());
        self.inboxes[dst].push(frame, due)
    }

    fn recv(&self) -> Result<Frame> {
        self.inboxes[self.rank].pop()
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        self.inboxes[self.rank].try_pop()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>> {
        self.inboxes[self.rank].pop_timeout(timeout)
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Hybrid
    }

    fn node_map(&self) -> &NodeMap {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameHeader, FrameKind};
    use bytes::Bytes;
    use std::time::Instant;

    fn frame(src: usize, dst: usize, tag: i32, payload: &[u8]) -> Frame {
        Frame::new(
            FrameHeader {
                kind: FrameKind::Eager,
                src: src as u32,
                dst: dst as u32,
                tag,
                context: 0,
                token: 0,
                msg_len: payload.len() as u64,
            },
            Bytes::copy_from_slice(payload),
        )
    }

    fn hybrid(size: usize, nodes: NodeMap, inter: NetworkModel) -> Vec<HybridEndpoint> {
        let config = FabricConfig::new(size, DeviceKind::Hybrid)
            .with_nodes(nodes)
            .with_inter_network(inter);
        HybridDevice::build(&config).unwrap()
    }

    #[test]
    fn routes_both_classes_end_to_end() {
        let eps = hybrid(4, NodeMap::regular(2, 2), NetworkModel::unshaped());
        // Intra-node: 0 -> 1 (same node).
        eps[0].send(frame(0, 1, 1, b"intra")).unwrap();
        assert_eq!(&eps[1].recv().unwrap().payload[..], b"intra");
        // Inter-node: 0 -> 2 (different nodes).
        eps[0].send(frame(0, 2, 2, b"inter")).unwrap();
        assert_eq!(&eps[2].recv().unwrap().payload[..], b"inter");
        assert_eq!(eps[0].kind(), DeviceKind::Hybrid);
        assert_eq!(eps[3].node_map().node_of(3), 1);
    }

    #[test]
    fn inter_node_frames_are_link_shaped_intra_are_not() {
        let link = NetworkModel::new(Duration::from_millis(30), f64::INFINITY);
        let eps = hybrid(4, NodeMap::regular(2, 2), link);
        // Intra-node delivery is immediate.
        eps[0].send(frame(0, 1, 1, b"x")).unwrap();
        assert!(eps[1].try_recv().unwrap().is_some(), "intra frame delayed");
        // Inter-node delivery waits out the modelled link latency.
        let start = Instant::now();
        eps[0].send(frame(0, 3, 2, b"y")).unwrap();
        assert!(
            eps[3].try_recv().unwrap().is_none(),
            "inter frame released before the link due time"
        );
        let got = eps[3].recv().unwrap();
        assert_eq!(&got.payload[..], b"y");
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn mismatched_node_map_is_rejected() {
        let config = FabricConfig::new(4, DeviceKind::Hybrid).with_nodes(NodeMap::regular(2, 3));
        assert!(matches!(
            HybridDevice::build(&config),
            Err(TransportError::InvalidConfig(_))
        ));
    }

    #[test]
    fn out_of_range_destination_is_rejected() {
        let eps = hybrid(2, NodeMap::flat(2), NetworkModel::unshaped());
        assert!(matches!(
            eps[0].send(frame(0, 7, 0, b"")),
            Err(TransportError::RankOutOfRange { .. })
        ));
    }
}
