//! Rank → node placement for multi-fabric jobs.
//!
//! The paper runs every job over a single native device — all ranks talk
//! through the same fabric. Real clusters are hierarchical: ranks on one
//! *node* share memory, ranks on different nodes cross a network link
//! that is orders of magnitude slower. A [`NodeMap`] records that
//! placement (which node each rank lives on), the [`hybrid`](crate::hybrid)
//! device routes traffic by it, and the collective tuning layer above
//! selects hierarchical (leader-based) algorithms when the map is
//! non-trivial.
//!
//! ## Spec strings
//!
//! [`NodeMap::parse`] accepts three spellings (the `MPIJAVA_NODES`
//! environment override uses the same grammar):
//!
//! | spec | meaning |
//! |------|---------|
//! | `"4"` | 4 nodes, ranks block-split as evenly as possible |
//! | `"2x4"` | 2 nodes × 4 ranks per node (block assignment; product must equal the job size) |
//! | `"0,0,1,1"` | explicit per-rank node ids (one entry per rank) |
//!
//! Node ids are normalized to dense `0..num_nodes` in order of first
//! appearance, so `"5,5,9,9"` and `"0,0,1,1"` describe the same map.

/// Placement of every rank onto a node. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMap {
    /// `assignment[rank]` = dense node id of that rank.
    assignment: Vec<usize>,
    /// Number of distinct nodes.
    num_nodes: usize,
}

impl NodeMap {
    /// Every rank on one node (the single-fabric default).
    pub fn flat(size: usize) -> NodeMap {
        NodeMap {
            assignment: vec![0; size],
            num_nodes: if size == 0 { 0 } else { 1 },
        }
    }

    /// `nodes × ranks_per_node` block placement: ranks `0..r` on node 0,
    /// `r..2r` on node 1, and so on.
    pub fn regular(nodes: usize, ranks_per_node: usize) -> NodeMap {
        let assignment = (0..nodes * ranks_per_node)
            .map(|rank| rank / ranks_per_node.max(1))
            .collect();
        NodeMap::from_assignment(assignment)
    }

    /// `size` ranks block-split across `nodes` nodes as evenly as
    /// possible (the first `size % nodes` nodes get one extra rank).
    pub fn split(size: usize, nodes: usize) -> NodeMap {
        let nodes = nodes.clamp(1, size.max(1));
        let base = size / nodes;
        let extra = size % nodes;
        let mut assignment = Vec::with_capacity(size);
        for node in 0..nodes {
            let len = base + usize::from(node < extra);
            assignment.extend(std::iter::repeat_n(node, len));
        }
        NodeMap::from_assignment(assignment)
    }

    /// Explicit per-rank node ids. Ids are normalized to dense
    /// `0..num_nodes` in order of first appearance.
    pub fn from_assignment(raw: Vec<usize>) -> NodeMap {
        let mut dense: Vec<usize> = Vec::new();
        let assignment = raw
            .into_iter()
            .map(|id| match dense.iter().position(|&d| d == id) {
                Some(at) => at,
                None => {
                    dense.push(id);
                    dense.len() - 1
                }
            })
            .collect();
        NodeMap {
            assignment,
            num_nodes: dense.len(),
        }
    }

    /// Parse a placement spec for a job of `size` ranks (see the module
    /// docs for the grammar). Errors carry a human-readable reason.
    pub fn parse(spec: &str, size: usize) -> Result<NodeMap, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty node spec".into());
        }
        if spec.contains(',') {
            let ids: Result<Vec<usize>, _> = spec
                .split(',')
                .map(|part| part.trim().parse::<usize>())
                .collect();
            let ids = ids.map_err(|_| format!("unparsable node id list {spec:?}"))?;
            if ids.len() != size {
                return Err(format!(
                    "node id list has {} entries for {size} ranks",
                    ids.len()
                ));
            }
            return Ok(NodeMap::from_assignment(ids));
        }
        if let Some((nodes, per_node)) = spec.split_once(['x', 'X']) {
            let nodes: usize = nodes
                .trim()
                .parse()
                .map_err(|_| format!("unparsable node count in {spec:?}"))?;
            let per_node: usize = per_node
                .trim()
                .parse()
                .map_err(|_| format!("unparsable ranks-per-node in {spec:?}"))?;
            if nodes == 0 || per_node == 0 {
                return Err(format!("zero dimension in node spec {spec:?}"));
            }
            if nodes * per_node != size {
                return Err(format!(
                    "node spec {spec:?} places {} ranks but the job has {size}",
                    nodes * per_node
                ));
            }
            return Ok(NodeMap::regular(nodes, per_node));
        }
        let nodes: usize = spec
            .parse()
            .map_err(|_| format!("unparsable node spec {spec:?}"))?;
        if nodes == 0 {
            return Err("node count must be at least 1".into());
        }
        if nodes > size {
            return Err(format!("{nodes} nodes for only {size} ranks"));
        }
        Ok(NodeMap::split(size, nodes))
    }

    /// Number of ranks the map places.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True for the zero-rank map.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of distinct nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Node id of `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.assignment[rank]
    }

    /// The raw per-rank assignment (dense node ids).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// True when every rank shares one node (single-fabric semantics).
    pub fn is_flat(&self) -> bool {
        self.num_nodes <= 1
    }

    /// True when the map has real hierarchy to exploit: more than one
    /// node *and* at least one node holding more than one rank. The two
    /// degenerate shapes — everything on one node, one rank per node —
    /// behave exactly like a single fabric, and the collective tuning
    /// layer collapses them to the flat algorithms.
    pub fn is_hierarchical(&self) -> bool {
        self.num_nodes > 1 && self.num_nodes < self.assignment.len()
    }

    /// Do ranks `a` and `b` share a node?
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.assignment[a] == self.assignment[b]
    }

    /// The ranks placed on `node`, ascending.
    pub fn ranks_on_node(&self, node: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(rank, &n)| (n == node).then_some(rank))
            .collect()
    }

    /// The lowest rank on `node` — the node's *leader* in the
    /// hierarchical collective schemes.
    pub fn leader_of(&self, node: usize) -> Option<usize> {
        self.assignment.iter().position(|&n| n == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_map_is_one_node() {
        let m = NodeMap::flat(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.num_nodes(), 1);
        assert!(m.is_flat());
        assert!(!m.is_hierarchical());
        assert!(m.same_node(0, 3));
        assert_eq!(m.ranks_on_node(0), vec![0, 1, 2, 3]);
        assert_eq!(m.leader_of(0), Some(0));
    }

    #[test]
    fn regular_blocks_and_leaders() {
        let m = NodeMap::regular(2, 3);
        assert_eq!(m.assignment(), &[0, 0, 0, 1, 1, 1]);
        assert!(m.is_hierarchical());
        assert_eq!(m.ranks_on_node(1), vec![3, 4, 5]);
        assert_eq!(m.leader_of(1), Some(3));
        assert!(m.same_node(3, 5));
        assert!(!m.same_node(2, 3));
    }

    #[test]
    fn split_distributes_remainder_to_early_nodes() {
        let m = NodeMap::split(7, 3);
        assert_eq!(m.assignment(), &[0, 0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn assignment_ids_are_normalized() {
        let m = NodeMap::from_assignment(vec![5, 5, 9, 9, 5]);
        assert_eq!(m.assignment(), &[0, 0, 1, 1, 0]);
        assert_eq!(m.num_nodes(), 2);
        // Round-robin maps are legal, just non-contiguous.
        let rr = NodeMap::from_assignment(vec![0, 1, 0, 1]);
        assert!(rr.is_hierarchical());
        assert_eq!(rr.ranks_on_node(0), vec![0, 2]);
    }

    #[test]
    fn degenerate_one_rank_per_node_is_not_hierarchical() {
        let m = NodeMap::from_assignment(vec![0, 1, 2, 3]);
        assert_eq!(m.num_nodes(), 4);
        assert!(!m.is_flat());
        assert!(!m.is_hierarchical());
    }

    #[test]
    fn parse_all_three_spellings() {
        assert_eq!(
            NodeMap::parse("2", 8).unwrap(),
            NodeMap::regular(2, 4),
            "bare node count"
        );
        assert_eq!(NodeMap::parse(" 2x4 ", 8).unwrap(), NodeMap::regular(2, 4));
        assert_eq!(
            NodeMap::parse("0,0,1,1", 4).unwrap(),
            NodeMap::regular(2, 2)
        );
        assert_eq!(NodeMap::parse("3", 7).unwrap(), NodeMap::split(7, 3));
    }

    #[test]
    fn parse_rejects_inconsistent_specs() {
        assert!(NodeMap::parse("", 4).is_err());
        assert!(
            NodeMap::parse("2x3", 8).is_err(),
            "6 ranks placed, 8 in job"
        );
        assert!(NodeMap::parse("0x4", 0).is_err());
        assert!(NodeMap::parse("0,0,1", 4).is_err(), "3 entries for 4 ranks");
        assert!(NodeMap::parse("a,b", 2).is_err());
        assert!(NodeMap::parse("9", 4).is_err(), "more nodes than ranks");
        assert!(NodeMap::parse("banana", 4).is_err());
    }
}
