//! Criterion bench for the collective operations exercised by the
//! functionality suite (§3.4): barrier, broadcast and allreduce on four
//! ranks, through the wrapper. Not a paper figure, but the ablation data
//! DESIGN.md calls for when judging the collective algorithms.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpijava::{Datatype, MpiRuntime, Op};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

fn run_collective(kind: &str, count: usize) {
    MpiRuntime::new(4)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            match kind {
                "barrier" => {
                    for _ in 0..10 {
                        world.barrier()?;
                    }
                }
                "bcast" => {
                    let mut buf = vec![rank as f64; count];
                    for _ in 0..10 {
                        world.bcast(&mut buf, 0, count, &Datatype::double(), 0)?;
                    }
                }
                "allreduce" => {
                    let send = vec![rank as f64; count];
                    let mut recv = vec![0f64; count];
                    for _ in 0..10 {
                        world.allreduce(
                            &send,
                            0,
                            &mut recv,
                            0,
                            count,
                            &Datatype::double(),
                            &Op::sum(),
                        )?;
                    }
                }
                other => panic!("unknown collective {other}"),
            }
            Ok(())
        })
        .expect("collective run");
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_4_ranks");
    group.bench_function("barrier", |b| b.iter(|| run_collective("barrier", 0)));
    for &count in &[64usize, 4096] {
        group.bench_with_input(BenchmarkId::new("bcast_doubles", count), &count, |b, &n| {
            b.iter(|| run_collective("bcast", n))
        });
        group.bench_with_input(
            BenchmarkId::new("allreduce_doubles", count),
            &count,
            |b, &n| b.iter(|| run_collective("allreduce", n)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_collectives
}
criterion_main!(benches);
