//! Reproduction of **Figure 5** of the paper: PingPong bandwidth against
//! message size in Shared-Memory (SM) mode, for the WMPI-like and
//! MPICH-like devices, each driven from "C" (the engine directly) and from
//! "Java" (the mpijava wrapper).
//!
//! ```text
//! cargo run --release -p mpi-bench --bin figure5 [--calibrate-1999] [--max-size BYTES] [--reps N] [--csv]
//! ```

use mpi_bench::pingpong::{run_pingpong, Calibration, Mode, PingPongSpec, Stack};
use mpi_bench::report::{format_bandwidth_table, to_csv, Series};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let calibration = if args.iter().any(|a| a == "--calibrate-1999") {
        Calibration::Era1999
    } else {
        Calibration::Structural
    };
    let max_size = args
        .iter()
        .position(|a| a == "--max-size")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize << 20);
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(40usize);
    let csv = args.iter().any(|a| a == "--csv");

    let stacks = [
        Stack::WmpiC,
        Stack::WmpiJava,
        Stack::MpichC,
        Stack::MpichJava,
    ];
    let mut series = Vec::new();
    for stack in stacks {
        eprintln!(
            "running {} (SM), sizes up to {max_size} bytes ...",
            stack.label()
        );
        let spec = PingPongSpec::new(stack, Mode::SharedMemory)
            .cap_size(max_size)
            .reps(reps)
            .calibration(calibration);
        series.push(Series {
            label: stack.label().to_string(),
            points: run_pingpong(&spec),
        });
    }

    if csv {
        print!("{}", to_csv(&series));
    } else {
        print!(
            "{}",
            format_bandwidth_table(
                "Figure 5: PingPong bandwidth (MBytes/s) in Shared Memory (SM) mode",
                &series
            )
        );
        println!();
        println!("Expected shape (paper Figure 5): the Java curves sit a constant");
        println!("offset below their C counterparts, converging by ~256 KB; the");
        println!("WMPI-like device outperforms the MPICH/p4-like device throughout.");
    }
}
