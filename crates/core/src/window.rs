//! One-sided communication windows for the idiomatic API
//! ([`crate::rs`]): typed RAII over the engine's RMA subsystem
//! (`mpi_native::rma`).
//!
//! A [`Window`] exposes a typed slice for one-sided access by the other
//! ranks of a communicator. The slice stays mutably borrowed by the
//! window for its whole lifetime — the window memory rule MPI states
//! informally ("do not touch exposed memory while an access epoch is
//! open") becomes a compile-time rule: the *only* way to read or write
//! the exposed data is through [`local`](Window::local) /
//! [`local_mut`](Window::local_mut), which resynchronize the typed
//! slice with the engine's byte region on access.
//!
//! ## Epoch model
//!
//! The engine implements *applied-at-sync* semantics (the IBM-style
//! memory model): `put` / `accumulate` / `get` calls return immediately
//! and their effects become visible only at the next synchronization —
//! [`fence`](Window::fence) for active-target epochs,
//! [`flush`](Window::flush) / [`unlock`](Window::unlock) for
//! passive-target (lock-based) epochs. A [`get`](Window::get) returns a
//! [`GetToken`] whose value may only be taken after the covering sync.
//!
//! Dropping a pending window mirrors [`TypedRequest`] drop semantics:
//! the drop quiesces the window by driving `win_free` (collective — the
//! peers' symmetric drops complete it) and swallows errors; during a
//! panic-unwind the window is abandoned so teardown cannot hang. Call
//! [`free`](Window::free) to observe errors and the final contents.
//!
//! [`TypedRequest`]: crate::request::TypedRequest
//!
//! ```
//! use mpijava::rs::Communicator as _;
//! use mpijava::MpiRuntime;
//!
//! MpiRuntime::new(2).run(|mpi| {
//!     let world = mpi.comm_world();
//!     let rank = world.rank()?;
//!     let mut exposed = vec![0i32; 4];
//!     let mut win = world.win_create(&mut exposed)?;
//!     win.fence()?; // open the first epoch
//!     if rank == 0 {
//!         win.put(1, 0, &[7i32, 8, 9, 10])?;
//!     }
//!     win.fence()?; // put is applied at the target here
//!     if rank == 1 {
//!         assert_eq!(win.local()?, &[7, 8, 9, 10]);
//!     }
//!     win.free()?;
//!     mpi.finalize()
//! }).unwrap();
//! ```

use std::marker::PhantomData;
use std::sync::Arc;

use mpi_native::{ErrorClass, RmaGetId, WinHandle};

use crate::buffer::{bytes_to_elements, slice_to_bytes, BufferElement};
use crate::exception::{MPIException, MpiResult};
use crate::op::Op;
use crate::RankEnv;

/// Handle to an outstanding one-sided [`get`](Window::get). The value
/// becomes takeable only after a synchronization that covers the get
/// ([`fence`](Window::fence), or [`flush`](Window::flush) /
/// [`unlock`](Window::unlock) of the target) — enforced by the engine,
/// which refuses un-synced takes.
#[derive(Debug)]
pub struct GetToken<T: BufferElement> {
    id: RmaGetId,
    count: usize,
    _elem: PhantomData<T>,
}

/// A typed one-sided communication window (`MPI_Win`), lifetime-bound
/// to the exposed slice. See the [module docs](self) for the epoch
/// model and memory rules.
pub struct Window<'buf, T: BufferElement> {
    env: Arc<RankEnv>,
    handle: WinHandle,
    local: &'buf mut [T],
    freed: bool,
}

impl<T: BufferElement> std::fmt::Debug for Window<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Window")
            .field("len", &self.local.len())
            .field("freed", &self.freed)
            .finish()
    }
}

impl<'buf, T: BufferElement> Window<'buf, T> {
    pub(crate) fn create(
        env: Arc<RankEnv>,
        comm: mpi_native::comm::CommHandle,
        local: &'buf mut [T],
    ) -> MpiResult<Window<'buf, T>> {
        env.jni.enter("Win.Create");
        let region = slice_to_bytes(local);
        let handle = env.engine.lock().win_create(comm, region)?;
        Ok(Window {
            env,
            handle,
            local,
            freed: false,
        })
    }

    /// Number of exposed elements.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// True when the window exposes no elements.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// Pull peer updates out of the engine's byte region into the typed
    /// slice, if any were applied since the last look.
    fn refresh(&mut self) -> MpiResult<()> {
        let mut engine = self.env.engine.lock();
        if engine.win_take_dirty(self.handle)? {
            bytes_to_elements(self.local, 0, engine.win_region(self.handle)?);
        }
        Ok(())
    }

    /// Push the typed slice into the engine's byte region (after local
    /// stores through [`local_mut`](Window::local_mut)).
    fn publish(&mut self) -> MpiResult<()> {
        let region = slice_to_bytes(self.local);
        let mut engine = self.env.engine.lock();
        engine.win_region_mut(self.handle)?.copy_from_slice(&region);
        Ok(())
    }

    /// Read the exposed data. Reflects peer updates up to the last
    /// completed synchronization (valid between epochs, per the window
    /// memory rules).
    pub fn local(&mut self) -> MpiResult<&[T]> {
        self.refresh()?;
        Ok(self.local)
    }

    /// Local load/store access to the exposed data. Stores are
    /// published to the engine's region when the borrow ends — which is
    /// why this takes the window by `&mut` and the change becomes
    /// visible to peers at their next synchronized access.
    pub fn local_mut(&mut self) -> MpiResult<LocalGuard<'_, 'buf, T>> {
        self.refresh()?;
        Ok(LocalGuard { window: self })
    }

    /// `MPI_Put` of a typed slice into `target`'s exposed data at
    /// element offset `offset`. Applied at the target's next covering
    /// synchronization.
    pub fn put(&self, target: usize, offset: usize, data: &[T]) -> MpiResult<()> {
        self.env.jni.enter("Win.Put");
        let payload = slice_to_bytes(data);
        let mut engine = self.env.engine.lock();
        engine.win_put(self.handle, target, offset * T::width(), &payload)?;
        Ok(())
    }

    /// Zero-copy `MPI_Put` of an owned byte buffer (element type `u8`
    /// windows; mirrors
    /// [`send_bytes`](crate::rs::Communicator::send_bytes)): the payload
    /// rides the engine's refcounted datapath without a staging copy.
    pub fn put_bytes(&self, target: usize, offset: usize, data: bytes::Bytes) -> MpiResult<()> {
        self.env.jni.enter("Win.Put[bytes]");
        let mut engine = self.env.engine.lock();
        engine.win_put_bytes(self.handle, target, offset * T::width(), data)?;
        Ok(())
    }

    /// `MPI_Accumulate`: element-wise fold of `data` into `target`'s
    /// exposed data at element offset `offset`, using a predefined
    /// reduction. Concurrent accumulates from different origins within
    /// one epoch are applied in origin-rank order (deterministic).
    pub fn accumulate(
        &self,
        target: usize,
        offset: usize,
        data: &[T],
        op: impl std::borrow::Borrow<Op>,
    ) -> MpiResult<()> {
        self.env.jni.enter("Win.Accumulate");
        let op = op.borrow();
        let mpi_native::Op::Predefined(predefined) = *op.engine_op() else {
            return Err(MPIException::new(
                ErrorClass::Unsupported,
                "accumulate requires a predefined reduction (the op code travels on the wire)",
            ));
        };
        let payload = slice_to_bytes(data);
        let mut engine = self.env.engine.lock();
        engine.win_accumulate(
            self.handle,
            target,
            offset * T::width(),
            &payload,
            T::KIND,
            predefined,
        )?;
        Ok(())
    }

    /// `MPI_Get`: request `count` elements at element offset `offset`
    /// of `target`'s exposed data. The returned token resolves at the
    /// next covering synchronization; redeem it with
    /// [`take`](Window::take).
    pub fn get(&self, target: usize, offset: usize, count: usize) -> MpiResult<GetToken<T>> {
        self.env.jni.enter("Win.Get");
        let mut engine = self.env.engine.lock();
        let id = engine.win_get(self.handle, target, offset * T::width(), count * T::width())?;
        Ok(GetToken {
            id,
            count,
            _elem: PhantomData,
        })
    }

    /// Redeem a synced [`GetToken`]: returns the fetched elements.
    /// Errors if no synchronization has covered the get yet.
    pub fn take(&self, token: GetToken<T>) -> MpiResult<Vec<T>> {
        self.env.jni.enter("Win.Get[take]");
        let mut engine = self.env.engine.lock();
        let data = engine.win_get_take(self.handle, token.id)?;
        let mut out = vec![T::default(); token.count];
        bytes_to_elements(&mut out, 0, &data);
        engine.recycle(data);
        Ok(out)
    }

    /// `MPI_Win_fence` (collective): close the current active-target
    /// epoch. On return every operation this rank issued is applied at
    /// its target, every peer's operations are applied here, and all
    /// outstanding [`GetToken`]s are redeemable.
    pub fn fence(&mut self) -> MpiResult<()> {
        self.env.jni.enter("Win.Fence");
        self.env.engine.lock().win_fence(self.handle)?;
        self.refresh()
    }

    /// `MPI_Win_lock` (exclusive): open a passive-target epoch on
    /// `target`. Blocks until the target's progress engine grants the
    /// lock; the target itself does not call anything.
    pub fn lock(&self, target: usize) -> MpiResult<()> {
        self.env.jni.enter("Win.Lock");
        self.env.engine.lock().win_lock(self.handle, target)?;
        Ok(())
    }

    /// `MPI_Win_flush`: apply every operation issued to `target` in the
    /// open passive epoch (gets become redeemable) without releasing
    /// the lock.
    pub fn flush(&mut self, target: usize) -> MpiResult<()> {
        self.env.jni.enter("Win.Flush");
        self.env.engine.lock().win_flush(self.handle, target)?;
        self.refresh()
    }

    /// `MPI_Win_unlock`: flush and close the passive-target epoch on
    /// `target`.
    pub fn unlock(&mut self, target: usize) -> MpiResult<()> {
        self.env.jni.enter("Win.Unlock");
        self.env.engine.lock().win_unlock(self.handle, target)?;
        self.refresh()
    }

    /// `MPI_Win_free` (collective): tear the window down, leaving the
    /// exposed slice holding the final synchronized contents. Errors if
    /// an epoch is still un-synced — sync first.
    pub fn free(mut self) -> MpiResult<()> {
        self.env.jni.enter("Win.Free");
        let region = {
            let mut engine = self.env.engine.lock();
            engine.win_free(self.handle)?
        };
        bytes_to_elements(self.local, 0, &region);
        self.freed = true;
        Ok(())
    }
}

impl<T: BufferElement> Drop for Window<'_, T> {
    fn drop(&mut self) {
        if self.freed {
            return;
        }
        if std::thread::panicking() {
            // Unwinding: win_free is collective and could hang on peers
            // that will never act once this rank's abort lands. Abandon
            // the engine-side window; finalize will not run after a
            // panic, so its open-window check cannot misfire.
            return;
        }
        // Quiesce on drop, mirroring TypedRequest: the peers' symmetric
        // drops complete the collective free. Errors are swallowed
        // (drop cannot propagate them); use `free()` to observe them.
        let result = self.env.engine.lock().win_free(self.handle);
        if let Ok(region) = result {
            bytes_to_elements(self.local, 0, &region);
        }
    }
}

/// Mutable view of a window's local data
/// ([`Window::local_mut`]); publishes the stores to the engine's
/// exposed region when dropped.
pub struct LocalGuard<'win, 'buf, T: BufferElement> {
    window: &'win mut Window<'buf, T>,
}

impl<T: BufferElement> std::ops::Deref for LocalGuard<'_, '_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.window.local
    }
}

impl<T: BufferElement> std::ops::DerefMut for LocalGuard<'_, '_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.window.local
    }
}

impl<T: BufferElement> Drop for LocalGuard<'_, '_, T> {
    fn drop(&mut self) {
        // Publish local stores; errors surface at the next engine call.
        let _ = self.window.publish();
    }
}
