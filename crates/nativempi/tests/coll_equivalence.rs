//! Cross-algorithm equivalence suite: every collective must produce
//! byte-identical results under the linear, binomial-tree,
//! recursive-doubling, ring and pipelined algorithms (and under the tuned
//! default selector), on communicator sizes {1, 2, 3, 4, 5, 8}, across
//! all three transport devices — including non-commutative user
//! operations and `MAXLOC`/`MINLOC` with ties.
//!
//! Each rank executes a fixed transcript of collectives and serializes
//! every result into a byte log; the per-rank logs of a forced-algorithm
//! run are compared against the forced-`Linear` baseline. A forced
//! algorithm that cannot implement an operation (recursive doubling on
//! five ranks, ring under an order-preserving reduction) falls back
//! through the tuning layer, so the comparison also covers the fallback
//! paths.

use std::sync::Arc;

use mpi_native::comm::COMM_WORLD;
use mpi_native::{
    CollAlgorithm, Engine, NodeMap, Op, PredefinedOp, PrimitiveKind, Universe, UniverseConfig,
};
use mpi_transport::DeviceKind;

fn ints(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Non-commutative but exactly associative user operation: elements are
/// `(m, c)` pairs encoding the affine map `x -> m*x + c` over wrapping
/// i32 arithmetic, combined by function composition.
fn affine_compose() -> Op {
    Op::User(Arc::new(|incoming, acc, _kind, count| {
        for i in 0..count {
            let at = i * 8;
            let ma = i32::from_le_bytes(acc[at..at + 4].try_into().unwrap());
            let ca = i32::from_le_bytes(acc[at + 4..at + 8].try_into().unwrap());
            let mi = i32::from_le_bytes(incoming[at..at + 4].try_into().unwrap());
            let ci = i32::from_le_bytes(incoming[at + 4..at + 8].try_into().unwrap());
            let m = ma.wrapping_mul(mi);
            let c = ma.wrapping_mul(ci).wrapping_add(ca);
            acc[at..at + 4].copy_from_slice(&m.to_le_bytes());
            acc[at + 4..at + 8].copy_from_slice(&c.to_le_bytes());
        }
        Ok(())
    }))
}

fn log_result(log: &mut Vec<u8>, op_id: u8, bytes: &[u8]) {
    log.push(op_id);
    log.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    log.extend_from_slice(bytes);
}

fn log_parts(log: &mut Vec<u8>, op_id: u8, parts: &[Vec<u8>]) {
    let mut flat = Vec::new();
    for p in parts {
        flat.extend_from_slice(&(p.len() as u32).to_le_bytes());
        flat.extend_from_slice(p);
    }
    log_result(log, op_id, &flat);
}

/// The transcript every rank runs; returns the serialized result log.
fn transcript(engine: &mut Engine) -> Vec<u8> {
    let rank = engine.world_rank();
    let size = engine.world_size();
    let sum = Op::Predefined(PredefinedOp::Sum);
    let maxloc = Op::Predefined(PredefinedOp::Maxloc);
    let minloc = Op::Predefined(PredefinedOp::Minloc);
    let mut log = Vec::new();

    engine.barrier(COMM_WORLD).unwrap();
    log_result(&mut log, 0, b"barrier-ok");

    // Bcast from both ends of the communicator, lengths that are not
    // multiples of anything interesting.
    for (op_id, root, len) in [(1u8, 0usize, 37usize), (2, size - 1, 133)] {
        let mut buf = if rank == root {
            (0..len)
                .map(|i| (i as u8).wrapping_mul(7).wrapping_add(root as u8))
                .collect()
        } else {
            Vec::new()
        };
        engine.bcast(COMM_WORLD, root, &mut buf).unwrap();
        log_result(&mut log, op_id, &buf);
    }

    // Gatherv: variable lengths, including a zero-length contribution.
    let root = size / 2;
    let send = vec![rank as u8; rank % 3];
    if let Some(parts) = engine.gather(COMM_WORLD, root, &send).unwrap() {
        log_parts(&mut log, 3, &parts);
    }

    // Scatterv: variable chunks, including zero-length ones.
    let chunks: Option<Vec<Vec<u8>>> = if rank == root {
        Some(
            (0..size)
                .map(|r| vec![r as u8 ^ 0x5a; (r * 2) % 5])
                .collect(),
        )
    } else {
        None
    };
    let mine = engine.scatter(COMM_WORLD, root, chunks.as_deref()).unwrap();
    log_result(&mut log, 4, &mine);

    // Allgatherv: variable lengths.
    let contribution: Vec<u8> = (0..(rank + 2) * 3).map(|i| (i + rank) as u8).collect();
    let parts = engine.allgather(COMM_WORLD, &contribution).unwrap();
    log_parts(&mut log, 5, &parts);

    // Alltoallv with some zero-length chunks.
    let chunks: Vec<Vec<u8>> = (0..size)
        .map(|d| vec![(rank * 16 + d) as u8; (rank + d) % 4])
        .collect();
    let got = engine.alltoall(COMM_WORLD, &chunks).unwrap();
    log_parts(&mut log, 6, &got);

    // Integer sum reduce to a non-zero root (exercises the tree's
    // root-forwarding hop), plus a zero-count reduce.
    let send = ints(&[rank as i32 + 1, (rank as i32 + 1) * -10, 7]);
    let reduced = engine
        .reduce(COMM_WORLD, size - 1, &send, PrimitiveKind::Int, 3, &sum)
        .unwrap();
    if let Some(data) = reduced {
        log_result(&mut log, 7, &data);
    }
    let empty = engine
        .reduce(COMM_WORLD, 0, &[], PrimitiveKind::Int, 0, &sum)
        .unwrap();
    if let Some(data) = empty {
        log_result(&mut log, 8, &data);
    }

    // MAXLOC / MINLOC with deliberate value ties (tie-break must prefer
    // the lower rank under every algorithm).
    let pairs = ints(&[(rank % 2) as i32, rank as i32, 5, rank as i32]);
    let got = engine
        .reduce(COMM_WORLD, 0, &pairs, PrimitiveKind::Int2, 2, &maxloc)
        .unwrap();
    if let Some(data) = got {
        log_result(&mut log, 9, &data);
    }
    let got = engine
        .allreduce(COMM_WORLD, &pairs, PrimitiveKind::Int2, 2, &minloc)
        .unwrap();
    log_result(&mut log, 10, &got);

    // Non-commutative associative user op, reduce and allreduce.
    let affine = affine_compose();
    let own = ints(&[rank as i32 * 2 + 3, rank as i32 + 1, 3, rank as i32 - 2]);
    let got = engine
        .reduce(COMM_WORLD, 0, &own, PrimitiveKind::Int2, 2, &affine)
        .unwrap();
    if let Some(data) = got {
        log_result(&mut log, 11, &data);
    }
    let got = engine
        .allreduce(COMM_WORLD, &own, PrimitiveKind::Int2, 2, &affine)
        .unwrap();
    log_result(&mut log, 12, &got);

    // Integer allreduce: a count below the communicator size (ring gets
    // empty segments), and a larger vector.
    let got = engine
        .allreduce(
            COMM_WORLD,
            &ints(&[rank as i32]),
            PrimitiveKind::Int,
            1,
            &sum,
        )
        .unwrap();
    log_result(&mut log, 13, &got);
    let vector: Vec<i32> = (0i32..2048)
        .map(|i| i.wrapping_mul(rank as i32 + 1))
        .collect();
    let got = engine
        .allreduce(COMM_WORLD, &ints(&vector), PrimitiveKind::Int, 2048, &sum)
        .unwrap();
    log_result(&mut log, 14, &got);

    // Reduce-scatter with uneven counts including a zero.
    let counts: Vec<usize> = (0..size)
        .map(|r| if r == 0 { 0 } else { r % 3 + 1 })
        .collect();
    let total: usize = counts.iter().sum();
    let vec: Vec<i32> = (0..total as i32).map(|i| i + rank as i32).collect();
    let got = engine
        .reduce_scatter(COMM_WORLD, &ints(&vec), &counts, PrimitiveKind::Int, &sum)
        .unwrap();
    log_result(&mut log, 15, &got);

    // Scan.
    let got = engine
        .scan(
            COMM_WORLD,
            &ints(&[rank as i32 + 1, 2]),
            PrimitiveKind::Int,
            2,
            &sum,
        )
        .unwrap();
    log_result(&mut log, 16, &got);

    // Collectives on a split communicator (sub-comm sizes and roots differ
    // from world; also exercises the engine-internal allgather/allreduce
    // used by comm_split itself under every algorithm).
    let sub = engine
        .comm_split(COMM_WORLD, (rank % 2) as i32, rank as i32)
        .unwrap()
        .unwrap();
    let got = engine
        .allreduce(sub, &ints(&[rank as i32 + 5]), PrimitiveKind::Int, 1, &sum)
        .unwrap();
    log_result(&mut log, 17, &got);
    let sub_size = engine.comm_size(sub).unwrap();
    let sub_root = sub_size - 1;
    let sub_rank = engine.comm_rank(sub).unwrap();
    let mut buf = if sub_rank == sub_root {
        vec![rank as u8; 21]
    } else {
        Vec::new()
    };
    engine.bcast(sub, sub_root, &mut buf).unwrap();
    log_result(&mut log, 18, &buf);

    log
}

fn run_transcript(
    size: usize,
    device: DeviceKind,
    alg: Option<CollAlgorithm>,
    eager_threshold: Option<usize>,
) -> Vec<Vec<u8>> {
    let mut config = UniverseConfig::new(size, device);
    config.coll_algorithm = alg;
    config.eager_threshold = eager_threshold;
    Universe::run_with_config(config, transcript).unwrap()
}

fn assert_equivalence(device: DeviceKind, eager_threshold: Option<usize>) {
    for size in [1usize, 2, 3, 4, 5, 8] {
        let baseline = run_transcript(size, device, Some(CollAlgorithm::Linear), eager_threshold);
        let candidates = [
            None, // the tuned default selector
            Some(CollAlgorithm::BinomialTree),
            Some(CollAlgorithm::RecursiveDoubling),
            Some(CollAlgorithm::Ring),
            Some(CollAlgorithm::Pipelined),
        ];
        for alg in candidates {
            let got = run_transcript(size, device, alg, eager_threshold);
            assert_eq!(
                got, baseline,
                "transcript diverged from linear: device={device:?} size={size} alg={alg:?}"
            );
        }
    }
}

/// The seven nonblocking collectives plus a concurrent-in-flight block,
/// executed either blockingly or through `i* + coll_wait`/`coll_test`,
/// logging every result. Both variants issue the same logical
/// collectives in the same order (the standard's rule), so their logs
/// must be byte-identical.
fn twin_transcript(engine: &mut Engine, nonblocking: bool) -> Vec<u8> {
    let rank = engine.world_rank();
    let size = engine.world_size();
    let sum = Op::Predefined(PredefinedOp::Sum);
    let affine = affine_compose();
    let mut log = Vec::new();

    // barrier
    if nonblocking {
        let req = engine.ibarrier(COMM_WORLD).unwrap();
        engine.coll_wait(req).unwrap();
    } else {
        engine.barrier(COMM_WORLD).unwrap();
    }
    log_result(&mut log, 0, b"barrier-ok");

    // bcast (root at the top end, length prime-ish)
    let root = size - 1;
    let payload: Vec<u8> = (0..53u8).map(|i| i.wrapping_mul(3)).collect();
    let mut buf = if rank == root { payload } else { vec![0xEE; 2] };
    if nonblocking {
        let req = engine
            .ibcast(COMM_WORLD, root, std::mem::take(&mut buf))
            .unwrap();
        buf = engine.coll_wait(req).unwrap().into_buffer();
    } else {
        engine.bcast(COMM_WORLD, root, &mut buf).unwrap();
    }
    log_result(&mut log, 1, &buf);

    // gatherv (variable lengths incl. empty)
    let root = size / 2;
    let send = vec![rank as u8; rank % 3];
    let gathered = if nonblocking {
        let req = engine.igather(COMM_WORLD, root, &send).unwrap();
        engine.coll_wait(req).unwrap().into_parts()
    } else {
        engine.gather(COMM_WORLD, root, &send).unwrap()
    };
    if let Some(parts) = gathered {
        log_parts(&mut log, 2, &parts);
    }

    // scatterv (variable chunks incl. empty)
    let chunks: Option<Vec<Vec<u8>>> = if rank == root {
        Some(
            (0..size)
                .map(|r| vec![r as u8 ^ 0xA7; (r * 3) % 4])
                .collect(),
        )
    } else {
        None
    };
    let mine = if nonblocking {
        let req = engine
            .iscatter(COMM_WORLD, root, chunks.as_deref())
            .unwrap();
        engine.coll_wait(req).unwrap().into_buffer()
    } else {
        engine.scatter(COMM_WORLD, root, chunks.as_deref()).unwrap()
    };
    log_result(&mut log, 3, &mine);

    // allgatherv
    let contribution: Vec<u8> = (0..(rank + 1) * 2).map(|i| (i * 7 + rank) as u8).collect();
    let parts = if nonblocking {
        let req = engine.iallgather(COMM_WORLD, &contribution).unwrap();
        engine.coll_wait(req).unwrap().into_parts().unwrap()
    } else {
        engine.allgather(COMM_WORLD, &contribution).unwrap()
    };
    log_parts(&mut log, 4, &parts);

    // reduce to a non-zero root (non-commutative user op)
    let own = ints(&[rank as i32 * 2 + 3, rank as i32 + 1, 3, rank as i32 - 2]);
    let reduced = if nonblocking {
        let req = engine
            .ireduce(COMM_WORLD, size - 1, &own, PrimitiveKind::Int2, 2, &affine)
            .unwrap();
        match engine.coll_wait(req).unwrap() {
            mpi_native::CollOutcome::Done => None,
            outcome => Some(outcome.into_buffer()),
        }
    } else {
        engine
            .reduce(COMM_WORLD, size - 1, &own, PrimitiveKind::Int2, 2, &affine)
            .unwrap()
    };
    if let Some(data) = reduced {
        log_result(&mut log, 5, &data);
    }

    // allreduce (completed through non-parking test-polling in the
    // nonblocking variant)
    let vector: Vec<i32> = (0i32..512)
        .map(|i| i.wrapping_mul(rank as i32 + 1))
        .collect();
    let got = if nonblocking {
        let req = engine
            .iallreduce(COMM_WORLD, &ints(&vector), PrimitiveKind::Int, 512, &sum)
            .unwrap();
        loop {
            if let Some(outcome) = engine.coll_test(req).unwrap() {
                break outcome.into_buffer();
            }
            std::thread::yield_now();
        }
    } else {
        engine
            .allreduce(COMM_WORLD, &ints(&vector), PrimitiveKind::Int, 512, &sum)
            .unwrap()
    };
    log_result(&mut log, 6, &got);

    // Several collectives in flight concurrently (distinct tag
    // windows), completed in reverse order. The blocking variant issues
    // the same collectives in the same order, one at a time.
    if nonblocking {
        let r1 = engine
            .iallreduce(
                COMM_WORLD,
                &ints(&[rank as i32 + 2]),
                PrimitiveKind::Int,
                1,
                &sum,
            )
            .unwrap();
        let bcast_buf = if rank == 0 {
            vec![0x5Au8; 37]
        } else {
            Vec::new()
        };
        let r2 = engine.ibcast(COMM_WORLD, 0, bcast_buf).unwrap();
        let r3 = engine.iallgather(COMM_WORLD, &[rank as u8; 2]).unwrap();
        let parts = engine.coll_wait(r3).unwrap().into_parts().unwrap();
        log_parts(&mut log, 7, &parts);
        log_result(&mut log, 8, &engine.coll_wait(r2).unwrap().into_buffer());
        log_result(&mut log, 9, &engine.coll_wait(r1).unwrap().into_buffer());
    } else {
        let red = engine
            .allreduce(
                COMM_WORLD,
                &ints(&[rank as i32 + 2]),
                PrimitiveKind::Int,
                1,
                &sum,
            )
            .unwrap();
        let mut bcast_buf = if rank == 0 {
            vec![0x5Au8; 37]
        } else {
            Vec::new()
        };
        engine.bcast(COMM_WORLD, 0, &mut bcast_buf).unwrap();
        let parts = engine.allgather(COMM_WORLD, &[rank as u8; 2]).unwrap();
        log_parts(&mut log, 7, &parts);
        log_result(&mut log, 8, &bcast_buf);
        log_result(&mut log, 9, &red);
    }

    log
}

fn run_twin_transcript(
    size: usize,
    device: DeviceKind,
    alg: Option<CollAlgorithm>,
    nonblocking: bool,
) -> Vec<Vec<u8>> {
    let mut config = UniverseConfig::new(size, device);
    config.coll_algorithm = alg;
    Universe::run_with_config(config, move |engine| twin_transcript(engine, nonblocking)).unwrap()
}

/// Satellite: every nonblocking collective is byte-identical to its
/// blocking twin, sizes {1, 2, 3, 5, 8} × devices × algorithms,
/// including several collectives in flight concurrently on distinct tag
/// windows.
fn assert_nonblocking_twins(device: DeviceKind) {
    for size in [1usize, 2, 3, 5, 8] {
        for alg in [
            None,
            Some(CollAlgorithm::Linear),
            Some(CollAlgorithm::BinomialTree),
            Some(CollAlgorithm::RecursiveDoubling),
            Some(CollAlgorithm::Ring),
            Some(CollAlgorithm::Pipelined),
        ] {
            let blocking = run_twin_transcript(size, device, alg, false);
            let nonblocking = run_twin_transcript(size, device, alg, true);
            assert_eq!(
                nonblocking, blocking,
                "nonblocking diverged from blocking twin: device={device:?} size={size} alg={alg:?}"
            );
        }
    }
}

/// One hybrid-fabric configuration: `size` ranks block-placed
/// `ranks_per_node` to a node (the last node takes the remainder).
fn hybrid_config(size: usize, ranks_per_node: usize, alg: Option<CollAlgorithm>) -> UniverseConfig {
    let nodes = NodeMap::from_assignment((0..size).map(|r| r / ranks_per_node).collect());
    let mut config = UniverseConfig::new(size, DeviceKind::Hybrid).with_nodes(nodes);
    config.coll_algorithm = alg;
    config
}

/// Satellite: the full transcript (blocking *and* the nonblocking twin)
/// with `hier` over hybrid fabrics at sizes {4, 6, 8} × node sizes
/// {1, 2, 4} — including the degenerate one-node and one-rank-per-node
/// maps, which must collapse to the flat algorithms — byte-compared
/// against the forced-`Linear` run on the *same* fabric. The tuned
/// selector (`None`) is included since it auto-picks `hier` on the
/// hierarchical maps.
#[test]
fn hier_is_byte_identical_over_hybrid_fabrics() {
    for size in [4usize, 6, 8] {
        for ranks_per_node in [1usize, 2, 4] {
            let baseline = Universe::run_with_config(
                hybrid_config(size, ranks_per_node, Some(CollAlgorithm::Linear)),
                transcript,
            )
            .unwrap();
            for alg in [None, Some(CollAlgorithm::Hierarchical)] {
                let got =
                    Universe::run_with_config(hybrid_config(size, ranks_per_node, alg), transcript)
                        .unwrap();
                assert_eq!(
                    got, baseline,
                    "hybrid transcript diverged from linear: size={size} \
                     ranks_per_node={ranks_per_node} alg={alg:?}"
                );
            }

            // Nonblocking twin under forced hier: must match both its
            // own blocking run and the linear blocking run.
            let blocking = Universe::run_with_config(
                hybrid_config(size, ranks_per_node, Some(CollAlgorithm::Hierarchical)),
                |engine| twin_transcript(engine, false),
            )
            .unwrap();
            let nonblocking = Universe::run_with_config(
                hybrid_config(size, ranks_per_node, Some(CollAlgorithm::Hierarchical)),
                |engine| twin_transcript(engine, true),
            )
            .unwrap();
            assert_eq!(
                nonblocking, blocking,
                "hier nonblocking twin diverged: size={size} ranks_per_node={ranks_per_node}"
            );
            let linear_twin = Universe::run_with_config(
                hybrid_config(size, ranks_per_node, Some(CollAlgorithm::Linear)),
                |engine| twin_transcript(engine, false),
            )
            .unwrap();
            assert_eq!(
                blocking, linear_twin,
                "hier twin transcript diverged from linear: size={size} \
                 ranks_per_node={ranks_per_node}"
            );
        }
    }
}

/// A non-contiguous (round-robin) placement: the data movers still run
/// hierarchically and must stay byte-identical; `Ordered` reductions
/// fall back to the flat algorithms through the tuning layer (asserted
/// implicitly — any wrong fold order would diverge from linear).
#[test]
fn hier_survives_non_contiguous_round_robin_placements() {
    for size in [4usize, 6, 8] {
        let nodes = NodeMap::from_assignment((0..size).map(|r| r % 2).collect());
        let make = |alg| {
            let mut config =
                UniverseConfig::new(size, DeviceKind::Hybrid).with_nodes(nodes.clone());
            config.coll_algorithm = alg;
            config
        };
        let baseline =
            Universe::run_with_config(make(Some(CollAlgorithm::Linear)), transcript).unwrap();
        for alg in [None, Some(CollAlgorithm::Hierarchical)] {
            let got = Universe::run_with_config(make(alg), transcript).unwrap();
            assert_eq!(
                got, baseline,
                "round-robin transcript diverged from linear: size={size} alg={alg:?}"
            );
        }
    }
}

#[test]
fn nonblocking_twins_are_byte_identical_on_shm_fast() {
    assert_nonblocking_twins(DeviceKind::ShmFast);
}

#[test]
fn nonblocking_twins_are_byte_identical_on_shm_p4() {
    assert_nonblocking_twins(DeviceKind::ShmP4);
}

#[test]
fn nonblocking_twins_are_byte_identical_on_tcp() {
    assert_nonblocking_twins(DeviceKind::Tcp);
}

#[test]
fn algorithms_are_byte_identical_on_shm_fast() {
    assert_equivalence(DeviceKind::ShmFast, None);
}

#[test]
fn algorithms_are_byte_identical_on_shm_p4() {
    assert_equivalence(DeviceKind::ShmP4, None);
}

#[test]
fn algorithms_are_byte_identical_on_tcp() {
    assert_equivalence(DeviceKind::Tcp, None);
}

/// Force the rendezvous protocol for essentially every frame: the
/// posted-before-send exchange pattern of the tree/rd/ring schedules must
/// not deadlock when payloads need an ack round-trip.
#[test]
fn algorithms_survive_a_tiny_eager_threshold() {
    assert_equivalence(DeviceKind::ShmFast, Some(256));
}

// ---------------------------------------------------------------------
// Neighborhood collectives: the schedule-built sparse exchanges must be
// byte-identical to a hand-rolled isend/irecv reference, and the
// `ineighbor_*` twins byte-identical to the blocking forms.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum NeighborStyle {
    Blocking,
    /// Two schedules in flight concurrently, completed in reverse order.
    Nonblocking,
    /// User-tag point-to-point reference.
    HandRolled,
}

/// Per-send-block `(destination, slot index at the receiver)` derived
/// from first principles — `cart_shift` reciprocity for grids,
/// occurrence-matched adjacency for graphs — so the reference does not
/// lean on the engine's own pairing code.
fn reference_sends(engine: &Engine, comm: usize) -> Vec<(i32, usize)> {
    if let Ok(ndims) = engine.cartdim_get(comm) {
        let mut sends = Vec::new();
        for d in 0..ndims {
            let (src, dst) = engine.cart_shift(comm, d, 1).unwrap();
            // A block sent to `src` is `src`'s positive-direction
            // arrival, slot 2d + 1 — and symmetrically for `dst`.
            sends.push((src, 2 * d + 1));
            sends.push((dst, 2 * d));
        }
        return sends;
    }
    let me = engine.comm_rank(comm).unwrap();
    let adj = engine.graph_neighbors(comm, me).unwrap();
    let mut sends = Vec::new();
    for (j, &peer) in adj.iter().enumerate() {
        let occurrence = adj[..j].iter().filter(|&&q| q == peer).count();
        let peer_adj = engine.graph_neighbors(comm, peer).unwrap();
        let remote = peer_adj
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == me)
            .map(|(i, _)| i)
            .nth(occurrence)
            .unwrap();
        sends.push((peer as i32, remote));
    }
    sends
}

/// The same sparse exchange as `neighbor_alltoallv`, built from
/// ordinary user-tag point-to-point: each send is tagged with the slot
/// index the block occupies at the receiver (the MPI-3 §7.6 pairing).
fn hand_rolled_neighbor_alltoallv(
    engine: &mut Engine,
    comm: usize,
    chunks: &[Vec<u8>],
) -> Vec<Vec<u8>> {
    const TAG0: i32 = 7000;
    let me = engine.comm_rank(comm).unwrap() as i32;
    let peers = engine.topo_neighbors(comm).unwrap();
    let sends = reference_sends(engine, comm);
    let mut parts: Vec<Vec<u8>> = vec![Vec::new(); peers.len()];
    let mut recv_reqs = Vec::new();
    for (j, &peer) in peers.iter().enumerate() {
        if peer != mpi_native::PROC_NULL && peer != me {
            recv_reqs.push((j, engine.irecv(comm, peer, TAG0 + j as i32, None).unwrap()));
        }
    }
    let mut send_reqs = Vec::new();
    for (k, &(dest, remote)) in sends.iter().enumerate() {
        if dest == mpi_native::PROC_NULL {
            continue;
        }
        if dest == me {
            parts[remote] = chunks[k].clone();
        } else {
            send_reqs.push(
                engine
                    .isend(
                        comm,
                        dest,
                        TAG0 + remote as i32,
                        &chunks[k],
                        mpi_native::SendMode::Standard,
                    )
                    .unwrap(),
            );
        }
    }
    for (j, req) in recv_reqs {
        let completion = engine.wait(req).unwrap();
        parts[j] = completion.data.unwrap().as_ref().to_vec();
    }
    for req in send_reqs {
        engine.wait(req).unwrap();
    }
    parts
}

fn neighbor_exchange(
    engine: &mut Engine,
    comm: usize,
    style: NeighborStyle,
    log: &mut Vec<u8>,
    op_base: u8,
) {
    let rank = engine.comm_rank(comm).unwrap();
    let degree = engine.topo_neighbors(comm).unwrap().len();
    // Ragged per-slot chunks (alltoallv shape) and a replicated
    // allgather payload.
    let chunks: Vec<Vec<u8>> = (0..degree)
        .map(|j| vec![(rank * 16 + j) as u8; (rank + j) % 3 + 1])
        .collect();
    let payload: Vec<u8> = (0..5).map(|i| (rank * 7 + i) as u8).collect();
    match style {
        NeighborStyle::Blocking => {
            let parts = engine.neighbor_alltoallv(comm, &chunks).unwrap();
            log_parts(log, op_base, &parts);
            let parts = engine.neighbor_allgather(comm, &payload).unwrap();
            log_parts(log, op_base + 1, &parts);
        }
        NeighborStyle::Nonblocking => {
            let r1 = engine.ineighbor_alltoallv(comm, &chunks).unwrap();
            let r2 = engine.ineighbor_allgather(comm, &payload).unwrap();
            let g2 = engine.coll_wait(r2).unwrap().into_parts().unwrap();
            let g1 = engine.coll_wait(r1).unwrap().into_parts().unwrap();
            log_parts(log, op_base, &g1);
            log_parts(log, op_base + 1, &g2);
        }
        NeighborStyle::HandRolled => {
            let parts = hand_rolled_neighbor_alltoallv(engine, comm, &chunks);
            log_parts(log, op_base, &parts);
            let replicated = vec![payload.clone(); degree];
            let parts = hand_rolled_neighbor_alltoallv(engine, comm, &replicated);
            log_parts(log, op_base + 1, &parts);
        }
    }
}

fn neighbor_transcript(engine: &mut Engine, style: NeighborStyle) -> Vec<u8> {
    let size = engine.world_size();
    let mut log = Vec::new();

    // 1D periodic ring: degenerate both-neighbors-same-peer pairing at
    // size 2, pure self-exchange at size 1.
    let ring = engine
        .cart_create(COMM_WORLD, &[size], &[true], false)
        .unwrap()
        .unwrap();
    neighbor_exchange(engine, ring, style, &mut log, 20);

    // 2D grid with one periodic and one open dimension (PROC_NULL
    // slots off the open edges).
    if size >= 4 && size.is_multiple_of(2) {
        let grid = engine
            .cart_create(COMM_WORLD, &[size / 2, 2], &[true, false], false)
            .unwrap()
            .unwrap();
        neighbor_exchange(engine, grid, style, &mut log, 30);
    }

    // Graph ring: same shape as the 1D cart but addressed through
    // adjacency lists (slot order differs from the cart slot order).
    if size >= 3 {
        let mut index = Vec::new();
        let mut edges = Vec::new();
        for r in 0..size {
            edges.push((r + size - 1) % size);
            edges.push((r + 1) % size);
            index.push(edges.len());
        }
        let graph = engine
            .graph_create(COMM_WORLD, &index, &edges, false)
            .unwrap()
            .unwrap();
        neighbor_exchange(engine, graph, style, &mut log, 40);
    }
    log
}

fn run_neighbor_transcript(config: UniverseConfig, style: NeighborStyle) -> Vec<Vec<u8>> {
    Universe::run_with_config(config, move |engine| neighbor_transcript(engine, style)).unwrap()
}

fn assert_neighbor_equivalence(
    make: impl Fn(usize) -> UniverseConfig,
    sizes: &[usize],
    label: &str,
) {
    for &size in sizes {
        let baseline = run_neighbor_transcript(make(size), NeighborStyle::HandRolled);
        for style in [NeighborStyle::Blocking, NeighborStyle::Nonblocking] {
            let got = run_neighbor_transcript(make(size), style);
            let which = if style == NeighborStyle::Blocking {
                "blocking"
            } else {
                "nonblocking"
            };
            assert_eq!(
                got, baseline,
                "{which} neighbor exchange diverged from hand-rolled: {label} size={size}"
            );
        }
    }
}

#[test]
fn neighbor_collectives_match_hand_rolled_on_shm_fast() {
    assert_neighbor_equivalence(
        |size| UniverseConfig::new(size, DeviceKind::ShmFast),
        &[1, 2, 4, 6],
        "shm-fast",
    );
}

#[test]
fn neighbor_collectives_match_hand_rolled_on_shm_p4() {
    assert_neighbor_equivalence(
        |size| UniverseConfig::new(size, DeviceKind::ShmP4),
        &[2, 4, 6],
        "shm-p4",
    );
}

#[test]
fn neighbor_collectives_match_hand_rolled_on_tcp() {
    assert_neighbor_equivalence(
        |size| UniverseConfig::new(size, DeviceKind::Tcp),
        &[2, 4, 6],
        "tcp",
    );
}

#[test]
fn neighbor_collectives_match_hand_rolled_on_hybrid_two_nodes() {
    assert_neighbor_equivalence(
        |size| {
            let nodes = NodeMap::from_assignment((0..size).map(|r| r / size.div_ceil(2)).collect());
            UniverseConfig::new(size, DeviceKind::Hybrid).with_nodes(nodes)
        },
        &[4, 6],
        "hybrid-2n",
    );
}

/// The sparse exchanges must also survive an all-rendezvous regime.
#[test]
fn neighbor_collectives_survive_a_tiny_eager_threshold() {
    assert_neighbor_equivalence(
        |size| {
            let mut config = UniverseConfig::new(size, DeviceKind::ShmFast);
            config.eager_threshold = Some(2);
            config
        },
        &[2, 4, 6],
        "shm-fast eager=2",
    );
}
