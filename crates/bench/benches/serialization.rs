//! Criterion bench for the §2.2 trade-off: shipping strided data with a
//! derived datatype versus as serialized objects (`MPI.OBJECT`), plus the
//! raw cost of the object serializer itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpijava::serial::{deserialize, serialize};
use mpijava::{Datatype, MpiRuntime};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

fn column_exchange(use_object: bool, n: usize) {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let matrix: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
            if use_object {
                if rank == 0 {
                    let column: Vec<f64> = (0..n).map(|row| matrix[row * n]).collect();
                    world.send_object(&[column], 0, 1, 1, 0)?;
                } else {
                    let _ = world.recv_object::<Vec<f64>>(1, 0, 0)?;
                }
            } else {
                let column =
                    Datatype::vector(n, 1, n as isize, &Datatype::double()).expect("column type");
                if rank == 0 {
                    world.send(&matrix, 0, 1, &column, 1, 0)?;
                } else {
                    let mut recv = vec![0f64; n * n];
                    world.recv(&mut recv, 0, 1, &column, 0, 0)?;
                }
            }
            Ok(())
        })
        .expect("exchange");
}

fn bench_object_vs_derived(c: &mut Criterion) {
    let mut group = c.benchmark_group("strided_column_exchange");
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("derived_datatype", n), &n, |b, &n| {
            b.iter(|| column_exchange(false, n))
        });
        group.bench_with_input(BenchmarkId::new("mpi_object", n), &n, |b, &n| {
            b.iter(|| column_exchange(true, n))
        });
    }
    group.finish();
}

fn bench_serializer(c: &mut Criterion) {
    let mut group = c.benchmark_group("object_serializer");
    let payload: Vec<(i32, String)> = (0..100)
        .map(|i| (i, format!("element number {i} with some text")))
        .collect();
    group.bench_function("roundtrip_100_records", |b| {
        b.iter(|| {
            let bytes = serialize(&payload);
            let back: Vec<(i32, String)> = deserialize(&bytes).expect("deserialize");
            back
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_object_vs_derived, bench_serializer
}
criterion_main!(benches);
