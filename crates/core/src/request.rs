//! The `Request` and `Prequest` classes (mpiJava `Request`, `Prequest`).
//!
//! A non-blocking receive in mpiJava hands the Java array to the wrapper,
//! which fills it when the communication completes. The Rust equivalent is
//! a [`Request`] that mutably borrows the receive buffer until it has been
//! waited on (or freed), so the type system enforces the rule MPI states
//! informally: do not touch a buffer while a non-blocking operation is
//! using it.
//!
//! `Prequest` is the persistent variant created by `Send_init` /
//! `Recv_init` and restarted with `Start` / `Startall` (mpiJava routes
//! `Start` through `Prequest`).

use std::sync::Arc;

use mpi_native::{ErrorClass, RequestId};

use crate::exception::{MPIException, MpiResult};
use crate::status::Status;
use crate::RankEnv;

type UnpackOnce<'buf> = Box<dyn FnOnce(&[u8]) -> MpiResult<()> + Send + 'buf>;
type UnpackMut<'buf> = Box<dyn FnMut(&[u8]) -> MpiResult<()> + Send + 'buf>;
type Repack<'buf> = Box<dyn Fn() -> MpiResult<Vec<u8>> + Send + 'buf>;

/// Handle to an outstanding non-blocking operation.
pub struct Request<'buf> {
    env: Arc<RankEnv>,
    id: RequestId,
    unpack: Option<UnpackOnce<'buf>>,
    done: bool,
}

impl std::fmt::Debug for Request<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("id", &self.id)
            .field("done", &self.done)
            .finish()
    }
}

impl<'buf> Request<'buf> {
    pub(crate) fn send(env: Arc<RankEnv>, id: RequestId) -> Request<'static> {
        Request {
            env,
            id,
            unpack: None,
            done: false,
        }
    }

    pub(crate) fn recv(env: Arc<RankEnv>, id: RequestId, unpack: UnpackOnce<'buf>) -> Request<'buf> {
        Request {
            env,
            id,
            unpack: Some(unpack),
            done: false,
        }
    }

    /// Engine-level id (exposed for diagnostics).
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// True once the request has been waited on / tested to completion.
    pub fn is_void(&self) -> bool {
        self.done
    }

    fn finish(&mut self, completion: mpi_native::request::Completion) -> MpiResult<Status> {
        self.done = true;
        if let (Some(unpack), Some(data)) = (self.unpack.take(), completion.data.as_ref()) {
            unpack(data)?;
        }
        Ok(Status::from_info(completion.status))
    }

    /// `Request.Wait()`: block until complete, fill the receive buffer and
    /// return the `Status`.
    pub fn wait(&mut self) -> MpiResult<Status> {
        if self.done {
            return Err(MPIException::new(
                ErrorClass::Request,
                "request has already completed",
            ));
        }
        self.env.jni.enter("Request.Wait");
        let completion = self.env.engine.lock().wait(self.id)?;
        self.finish(completion)
    }

    /// `Request.Test()`: `Some(status)` if complete, `None` otherwise (the
    /// paper's null-for-failure convention, §2.1).
    pub fn test(&mut self) -> MpiResult<Option<Status>> {
        if self.done {
            return Ok(None);
        }
        self.env.jni.enter("Request.Test");
        let completion = self.env.engine.lock().test(self.id)?;
        match completion {
            Some(c) => Ok(Some(self.finish(c)?)),
            None => Ok(None),
        }
    }

    /// `Request.Cancel()`.
    pub fn cancel(&mut self) -> MpiResult<()> {
        self.env.jni.enter("Request.Cancel");
        Ok(self.env.engine.lock().cancel(self.id)?)
    }

    /// `Request.Free()`: release the request without completing it.
    pub fn free(mut self) -> MpiResult<()> {
        self.env.jni.enter("Request.Free");
        self.done = true;
        Ok(self.env.engine.lock().request_free(self.id)?)
    }

    /// `Request.Waitall(requests)`: complete every request, returning the
    /// statuses in order.
    pub fn wait_all(requests: &mut [Request<'buf>]) -> MpiResult<Vec<Status>> {
        requests.iter_mut().map(|r| r.wait()).collect()
    }

    /// `Request.Waitany(requests)`: wait for one to complete; its index is
    /// recorded in the returned status (`status.index()`), mirroring the
    /// extra field the paper adds to `Status`.
    pub fn wait_any(requests: &mut [Request<'buf>]) -> MpiResult<Status> {
        if requests.is_empty() {
            return Err(MPIException::new(ErrorClass::Request, "Waitany on empty array"));
        }
        let env = Arc::clone(&requests[0].env);
        env.jni.enter("Request.Waitany");
        let pending: Vec<RequestId> = requests
            .iter()
            .filter(|r| !r.done)
            .map(|r| r.id)
            .collect();
        if pending.is_empty() {
            return Err(MPIException::new(
                ErrorClass::Request,
                "Waitany: every request has already completed",
            ));
        }
        let (_, completion) = env.engine.lock().wait_any(&pending)?;
        // Map the completed engine request back to its position in the
        // caller's array.
        let completed_id = pending[completion.status.index as usize];
        let slot = requests
            .iter()
            .position(|r| r.id == completed_id)
            .expect("completed request came from this array");
        let mut status = requests[slot].finish(completion)?;
        status = Status::from_info(mpi_native::StatusInfo {
            index: slot as i32,
            source: status.source(),
            tag: status.tag(),
            count_bytes: status.count_bytes(),
            cancelled: status.test_cancelled(),
        });
        Ok(status)
    }

    /// `Request.Testall(requests)`: statuses if every request is complete,
    /// `None` otherwise.
    pub fn test_all(requests: &mut [Request<'buf>]) -> MpiResult<Option<Vec<Status>>> {
        if requests.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let env = Arc::clone(&requests[0].env);
        env.jni.enter("Request.Testall");
        let ids: Vec<RequestId> = requests.iter().filter(|r| !r.done).map(|r| r.id).collect();
        let completions = env.engine.lock().test_all(&ids)?;
        match completions {
            None => Ok(None),
            Some(completions) => {
                let mut statuses = Vec::with_capacity(requests.len());
                let mut it = completions.into_iter();
                for request in requests.iter_mut() {
                    if request.done {
                        statuses.push(Status::from_info(mpi_native::StatusInfo::empty()));
                    } else {
                        let completion = it.next().expect("one completion per pending request");
                        statuses.push(request.finish(completion)?);
                    }
                }
                Ok(Some(statuses))
            }
        }
    }
}

/// A persistent request created by `Send_init` / `Recv_init`.
pub struct Prequest<'buf> {
    env: Arc<RankEnv>,
    id: RequestId,
    kind: PrequestKind<'buf>,
    active: bool,
}

enum PrequestKind<'buf> {
    Send { repack: Repack<'buf> },
    Recv { unpack: UnpackMut<'buf> },
}

impl std::fmt::Debug for Prequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prequest")
            .field("id", &self.id)
            .field("active", &self.active)
            .finish()
    }
}

impl<'buf> Prequest<'buf> {
    pub(crate) fn send(env: Arc<RankEnv>, id: RequestId, repack: Repack<'buf>) -> Prequest<'buf> {
        Prequest {
            env,
            id,
            kind: PrequestKind::Send { repack },
            active: false,
        }
    }

    pub(crate) fn recv(env: Arc<RankEnv>, id: RequestId, unpack: UnpackMut<'buf>) -> Prequest<'buf> {
        Prequest {
            env,
            id,
            kind: PrequestKind::Recv { unpack },
            active: false,
        }
    }

    /// `Prequest.Start()`: (re)activate the persistent communication.
    /// For a persistent send the current contents of the user buffer are
    /// re-marshalled, matching the C semantics of reusing the buffer by
    /// address.
    pub fn start(&mut self) -> MpiResult<()> {
        if self.active {
            return Err(MPIException::new(
                ErrorClass::Request,
                "persistent request is already active",
            ));
        }
        self.env.jni.enter("Prequest.Start");
        if let PrequestKind::Send { repack } = &self.kind {
            let payload = repack()?;
            self.env
                .engine
                .lock()
                .persistent_set_data(self.id, &payload)?;
        }
        self.env.engine.lock().start(self.id)?;
        self.active = true;
        Ok(())
    }

    /// `Prequest.Startall(requests)`.
    pub fn start_all(requests: &mut [Prequest<'buf>]) -> MpiResult<()> {
        for r in requests.iter_mut() {
            r.start()?;
        }
        Ok(())
    }

    /// `Request.Wait()` on the persistent request: completes the active
    /// communication and returns the request to the inactive state.
    pub fn wait(&mut self) -> MpiResult<Status> {
        if !self.active {
            return Err(MPIException::new(
                ErrorClass::Request,
                "persistent request is not active",
            ));
        }
        self.env.jni.enter("Prequest.Wait");
        let completion = self.env.engine.lock().wait(self.id)?;
        self.active = false;
        if let (PrequestKind::Recv { unpack }, Some(data)) = (&mut self.kind, completion.data.as_ref()) {
            unpack(data)?;
        }
        Ok(Status::from_info(completion.status))
    }

    /// `Request.Free()` on the persistent request.
    pub fn free(self) -> MpiResult<()> {
        self.env.jni.enter("Prequest.Free");
        Ok(self.env.engine.lock().request_free(self.id)?)
    }

    /// True while a started communication has not yet been waited on.
    pub fn is_active(&self) -> bool {
        self.active
    }
}
