//! Neighborhood (sparse) collectives over virtual topologies (MPI-3
//! §7.6 semantics on the engine's byte-level surface).
//!
//! A rank's *neighbor list* is derived from its communicator's attached
//! topology ([`crate::topology`]):
//!
//! * **Cartesian** — `2 * ndims` slots: for each dimension `d`, slot
//!   `2d` is the *source* of `cart_shift(d, +1)` (the negative-direction
//!   neighbor) and slot `2d + 1` the *destination*. Off-grid neighbors
//!   of non-periodic dimensions are `PROC_NULL`: nothing is transferred
//!   and the corresponding result part is empty.
//! * **Graph** — the rank's adjacency list, in edge order. Multigraph
//!   edges are supported as long as multiplicities are symmetric; a
//!   rank may neighbor itself (the transfer is a local move).
//!
//! `neighbor_alltoall` sends block `j` to neighbor `j` and receives
//! block `j` from neighbor `j`. Because a transfer `me → peer` lands in
//! the *peer's* slot for the reciprocal edge, each send is tagged with
//! the **receiver's** slot index — this is what keeps the degenerate
//! two-rank periodic ring (where both of a rank's neighbors are the
//! same process) correctly paired over plain FIFO matching.
//!
//! The operations are built as ordinary `CollSchedule`s
//! (see `super::nb`) —
//! a single exchange round plus an assembly compute — so the
//! `ineighbor_*` nonblocking twins come straight from the progress
//! engine, the blocking forms are `start + wait` wrappers, tag windows
//! are drawn like every other collective, and hybrid `NodeMap` fabrics
//! need no special casing (the transfers are point-to-point pairs
//! routed by the device).

use crate::coll::nb::{CollOutcome, CollRequestId, CollSchedule, Round};
use crate::comm::CommHandle;
use crate::error::{err, ErrorClass, Result};
use crate::topology::Topology;
use crate::types::PROC_NULL;
use crate::Engine;

/// Where one result part comes from, resolved when the schedule's
/// assembly compute runs.
enum PartSrc {
    /// Filled by the receive posted into this slot.
    Recv(usize),
    /// A self-neighbor transfer: the chunk moved locally.
    Local(Vec<u8>),
    /// `PROC_NULL` neighbor: nothing arrives.
    Null,
}

/// The send/receive pairing a topology induces on one rank.
struct NeighborSpec {
    /// Receive peer per slot (`PROC_NULL` entries included).
    peers: Vec<i32>,
    /// Per send block: `(destination peer, slot index at the receiver)`.
    sends: Vec<(i32, usize)>,
}

impl Engine {
    /// The rank's neighbor list in slot order (`PROC_NULL` entries
    /// included) — the shape of every `neighbor_*` result.
    pub fn topo_neighbors(&self, comm: CommHandle) -> Result<Vec<i32>> {
        Ok(self.neighbor_spec(comm)?.peers)
    }

    fn neighbor_spec(&self, comm: CommHandle) -> Result<NeighborSpec> {
        match &self.comm(comm)?.topology {
            Some(Topology::Cart { dims, .. }) => {
                let ndims = dims.len();
                let mut peers = Vec::with_capacity(2 * ndims);
                let mut sends = Vec::with_capacity(2 * ndims);
                for d in 0..ndims {
                    let (src, dst) = self.cart_shift(comm, d, 1)?;
                    peers.push(src);
                    peers.push(dst);
                    // On a grid, `src`'s positive-direction neighbor is
                    // this rank, so a block sent to `src` lands in its
                    // slot `2d + 1` — and symmetrically for `dst`.
                    sends.push((src, 2 * d + 1));
                    sends.push((dst, 2 * d));
                }
                Ok(NeighborSpec { peers, sends })
            }
            Some(Topology::Graph { .. }) => {
                let me = self.comm_rank(comm)?;
                let adj = self.graph_neighbors(comm, me)?;
                let peers: Vec<i32> = adj.iter().map(|&p| p as i32).collect();
                let mut sends = Vec::with_capacity(adj.len());
                for (j, &peer) in adj.iter().enumerate() {
                    // k-th edge me→peer pairs with the k-th edge peer→me
                    // (multigraph-safe, requires symmetric multiplicity).
                    let occurrence = adj[..j].iter().filter(|&&q| q == peer).count();
                    let peer_adj = self.graph_neighbors(comm, peer)?;
                    let remote_slot = peer_adj
                        .iter()
                        .enumerate()
                        .filter(|&(_, &q)| q == me)
                        .map(|(i, _)| i)
                        .nth(occurrence);
                    let Some(remote_slot) = remote_slot else {
                        return err(
                            ErrorClass::Topology,
                            format!(
                                "asymmetric graph topology: rank {me} lists {peer} as a \
                                 neighbor more often than {peer} lists {me}"
                            ),
                        );
                    };
                    sends.push((peer as i32, remote_slot));
                }
                Ok(NeighborSpec { peers, sends })
            }
            None => err(
                ErrorClass::Topology,
                "neighborhood collective on a communicator without a topology",
            ),
        }
    }

    /// `MPI_Ineighbor_alltoallv` (byte-level): send `chunks[j]` to
    /// neighbor `j`, receive one part per neighbor. Chunk lengths may be
    /// ragged. Completes to [`CollOutcome::Parts`] in slot order.
    pub fn ineighbor_alltoallv(
        &mut self,
        comm: CommHandle,
        chunks: &[Vec<u8>],
    ) -> Result<CollRequestId> {
        self.check_live()?;
        let spec = self.neighbor_spec(comm)?;
        let degree = spec.peers.len();
        if chunks.len() != degree {
            return err(
                ErrorClass::Count,
                format!(
                    "neighbor alltoall needs one chunk per neighbor: got {}, topology degree {degree}",
                    chunks.len()
                ),
            );
        }
        if degree == 0 {
            return self.coll_immediate(CollOutcome::Parts(Vec::new()));
        }
        let me = self.comm_rank(comm)? as i32;
        let win = self.alloc_tag_window(comm);
        let mut schedule = CollSchedule::new();
        let mut round = Round::new();

        let mut parts: Vec<PartSrc> = Vec::with_capacity(degree);
        for (j, &peer) in spec.peers.iter().enumerate() {
            if peer == PROC_NULL {
                parts.push(PartSrc::Null);
            } else if peer == me {
                // Filled below from the matching self-send.
                parts.push(PartSrc::Local(Vec::new()));
            } else {
                let slot = schedule.empty();
                round = round.recv(peer as usize, win.tag(j), slot);
                parts.push(PartSrc::Recv(slot));
            }
        }
        for (k, &(dest, remote_slot)) in spec.sends.iter().enumerate() {
            if dest == PROC_NULL {
                continue;
            }
            if dest == me {
                // Self-neighbor: my block k lands in my own slot
                // `remote_slot` without touching the wire.
                parts[remote_slot] = PartSrc::Local(chunks[k].clone());
            } else {
                let slot = schedule.filled(chunks[k].clone());
                round = round.send(dest as usize, win.tag(remote_slot), slot);
            }
        }
        round = round.compute(move |ctx| {
            let assembled = parts
                .iter()
                .map(|src| match src {
                    PartSrc::Recv(slot) => ctx.take(*slot),
                    PartSrc::Local(data) => Ok(data.clone()),
                    PartSrc::Null => Ok(Vec::new()),
                })
                .collect::<Result<Vec<_>>>()?;
            ctx.set_outcome(CollOutcome::Parts(assembled));
            Ok(())
        });
        schedule.push(round);
        self.coll_start(comm, schedule)
    }

    /// `MPI_Ineighbor_alltoall`: like the `v` form, but every chunk must
    /// have the same length.
    pub fn ineighbor_alltoall(
        &mut self,
        comm: CommHandle,
        chunks: &[Vec<u8>],
    ) -> Result<CollRequestId> {
        if let Some(first) = chunks.first() {
            if chunks.iter().any(|c| c.len() != first.len()) {
                return err(
                    ErrorClass::Count,
                    "neighbor alltoall chunks must all have the same length (use the v form)",
                );
            }
        }
        self.ineighbor_alltoallv(comm, chunks)
    }

    /// `MPI_Ineighbor_allgather`: send the same payload to every
    /// neighbor, receive one part per neighbor.
    pub fn ineighbor_allgather(
        &mut self,
        comm: CommHandle,
        payload: &[u8],
    ) -> Result<CollRequestId> {
        let degree = self.neighbor_spec(comm)?.peers.len();
        let chunks = vec![payload.to_vec(); degree];
        self.ineighbor_alltoallv(comm, &chunks)
    }

    /// Blocking `MPI_Neighbor_alltoallv`: one part per neighbor slot
    /// (`PROC_NULL` slots yield empty parts).
    pub fn neighbor_alltoallv(
        &mut self,
        comm: CommHandle,
        chunks: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>> {
        let req = self.ineighbor_alltoallv(comm, chunks)?;
        Self::expect_parts(self.coll_wait(req)?)
    }

    /// Blocking `MPI_Neighbor_alltoall`.
    pub fn neighbor_alltoall(
        &mut self,
        comm: CommHandle,
        chunks: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>> {
        let req = self.ineighbor_alltoall(comm, chunks)?;
        Self::expect_parts(self.coll_wait(req)?)
    }

    /// Blocking `MPI_Neighbor_allgather`.
    pub fn neighbor_allgather(&mut self, comm: CommHandle, payload: &[u8]) -> Result<Vec<Vec<u8>>> {
        let req = self.ineighbor_allgather(comm, payload)?;
        Self::expect_parts(self.coll_wait(req)?)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::COMM_WORLD;
    use crate::types::PROC_NULL;
    use crate::Universe;
    use mpi_transport::DeviceKind;

    #[test]
    fn cart_ring_alltoall_exchanges_with_both_neighbors() {
        // Periodic ring of 4: every rank sends distinct blocks left and
        // right and must receive its neighbors' facing blocks.
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let cart = engine
                .cart_create(COMM_WORLD, &[4], &[true], false)
                .unwrap()
                .unwrap();
            let rank = engine.comm_rank(cart).unwrap();
            let chunks = vec![vec![rank as u8; 4], vec![rank as u8 + 100; 4]];
            let parts = engine.neighbor_alltoall(cart, &chunks).unwrap();
            let left = (rank + 3) % 4;
            let right = (rank + 1) % 4;
            // Slot 0 ← left neighbor's positive-direction block; slot 1
            // ← right neighbor's negative-direction block.
            assert_eq!(parts[0], vec![left as u8 + 100; 4]);
            assert_eq!(parts[1], vec![right as u8; 4]);
        })
        .unwrap();
    }

    #[test]
    fn two_rank_periodic_ring_pairs_blocks_correctly() {
        // Degenerate case: both neighbors are the same process; the
        // receiver-slot tagging must keep the two blocks apart.
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let cart = engine
                .cart_create(COMM_WORLD, &[2], &[true], false)
                .unwrap()
                .unwrap();
            let rank = engine.comm_rank(cart).unwrap();
            let chunks = vec![vec![10 + rank as u8], vec![20 + rank as u8]];
            let parts = engine.neighbor_alltoall(cart, &chunks).unwrap();
            let peer = 1 - rank;
            assert_eq!(
                parts[0],
                vec![20 + peer as u8],
                "slot 0 gets peer's positive block"
            );
            assert_eq!(
                parts[1],
                vec![10 + peer as u8],
                "slot 1 gets peer's negative block"
            );
        })
        .unwrap();
    }

    #[test]
    fn non_periodic_edges_yield_empty_parts() {
        Universe::run(3, DeviceKind::ShmFast, |engine| {
            let cart = engine
                .cart_create(COMM_WORLD, &[3], &[false], false)
                .unwrap()
                .unwrap();
            let rank = engine.comm_rank(cart).unwrap();
            let neighbors = engine.topo_neighbors(cart).unwrap();
            let chunks = vec![vec![rank as u8; 2]; 2];
            let parts = engine.neighbor_alltoall(cart, &chunks).unwrap();
            for (j, &peer) in neighbors.iter().enumerate() {
                if peer == PROC_NULL {
                    assert!(parts[j].is_empty());
                } else {
                    assert_eq!(parts[j], vec![peer as u8; 2]);
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn size_one_periodic_dim_is_a_self_exchange() {
        Universe::run(1, DeviceKind::ShmFast, |engine| {
            let cart = engine
                .cart_create(COMM_WORLD, &[1], &[true], false)
                .unwrap()
                .unwrap();
            let parts = engine
                .neighbor_alltoall(cart, &[vec![1, 2], vec![3, 4]])
                .unwrap();
            // Both neighbors are self: negative block arrives in the
            // positive slot and vice versa.
            assert_eq!(parts, vec![vec![3, 4], vec![1, 2]]);
        })
        .unwrap();
    }

    #[test]
    fn graph_ring_alltoall_matches_adjacency_order() {
        // Ring of 4 as a graph: rank i neighbors (i-1, i+1) mod 4 — the
        // same index/edges shape the topology tests use.
        Universe::run(4, DeviceKind::ShmFast, |engine| {
            let index = vec![2, 4, 6, 8];
            let edges = vec![1, 3, 0, 2, 1, 3, 2, 0];
            let graph = engine
                .graph_create(COMM_WORLD, &index, &edges, false)
                .unwrap()
                .unwrap();
            let rank = engine.comm_rank(graph).unwrap();
            let neighbors = engine.topo_neighbors(graph).unwrap();
            let chunks: Vec<Vec<u8>> = neighbors
                .iter()
                .map(|&p| vec![(10 * rank + p as usize) as u8])
                .collect();
            let parts = engine.neighbor_alltoallv(graph, &chunks).unwrap();
            // Neighbor j sent us the block it addressed to us.
            for (j, &p) in neighbors.iter().enumerate() {
                assert_eq!(parts[j], vec![(10 * p as usize + rank) as u8]);
            }
        })
        .unwrap();
    }

    #[test]
    fn no_topology_is_rejected() {
        Universe::run(1, DeviceKind::ShmFast, |engine| {
            let error = engine.neighbor_alltoall(COMM_WORLD, &[]).unwrap_err();
            assert_eq!(error.class, crate::ErrorClass::Topology);
        })
        .unwrap();
    }

    #[test]
    fn chunk_count_mismatch_is_rejected() {
        Universe::run(2, DeviceKind::ShmFast, |engine| {
            let cart = engine
                .cart_create(COMM_WORLD, &[2], &[true], false)
                .unwrap()
                .unwrap();
            let error = engine.neighbor_alltoall(cart, &[vec![1]]).unwrap_err();
            assert_eq!(error.class, crate::ErrorClass::Count);
        })
        .unwrap();
    }
}
