//! Point-to-point datapath benchmark with machine-readable output:
//! latency and bandwidth per device × eager-threshold × payload ×
//! datapath, emitted as `BENCH_p2p.json` so the zero-copy datapath's
//! performance is tracked across PRs.
//!
//! ## The datapath axis
//!
//! The interesting comparison is not device vs device but *copy chain vs
//! copy chain* on the same device:
//!
//! * **`zerocopy`** — the current datapath: the sender ships a refcounted
//!   `Bytes` payload via `Engine::send_bytes` (zero send-side copies),
//!   the receiver lands it with `Engine::recv_into` (exactly one copy,
//!   straight into the user buffer, spent buffers recycled into the send
//!   pool).
//! * **`segmented`** — the same zero-copy path with pipeline segmentation
//!   enabled (`segment_bytes`), showing what the chunked rendezvous
//!   stream costs/gains per device. Cells where segmentation cannot
//!   engage (payload at or below the eager limit or the segment size)
//!   are skipped rather than emitted under a wrong label.
//! * **`legacy`** — a faithful emulation of the pre-zero-copy chain:
//!   slice send (one staging copy), `Engine::recv` followed by the
//!   `to_vec()` the old completion path performed, followed by the copy
//!   into the user buffer. Three copies per transfer where `zerocopy`
//!   does one.
//!
//! The `legacy` series is what makes the JSON self-contained: the
//! zerocopy-vs-legacy bandwidth ratio *is* the improvement over the
//! pre-refactor datapath, measured on the same machine in the same run.

use std::time::Instant;

use bytes::Bytes;
use mpi_native::{SendMode, TraceConfig, TraceMode, Universe, UniverseConfig, COMM_WORLD};
use mpi_transport::DeviceKind;

/// Which copy chain a measurement exercises (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datapath {
    ZeroCopy,
    Segmented,
    Legacy,
}

impl Datapath {
    pub const ALL: [Datapath; 3] = [Datapath::ZeroCopy, Datapath::Segmented, Datapath::Legacy];

    pub fn label(self) -> &'static str {
        match self {
            Datapath::ZeroCopy => "zerocopy",
            Datapath::Segmented => "segmented",
            Datapath::Legacy => "legacy",
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct P2pRecord {
    /// Device label (`shm-fast`, `shm-p4`, `tcp`).
    pub device: String,
    /// Datapath label (`zerocopy`, `segmented`, `legacy`).
    pub datapath: String,
    /// Payload bytes per message.
    pub payload_bytes: usize,
    /// Eager/rendezvous switch-over applied to the run.
    pub eager_limit: usize,
    /// Pipeline segment size (0 = segmentation off).
    pub segment_bytes: usize,
    /// Observability mode pinned during the run (`off`, `counters`,
    /// `events`) — the trace-overhead axis.
    pub trace_mode: String,
    /// One-way microseconds per message (ping-pong round trip / 2).
    pub us_per_msg: f64,
    /// One-way bandwidth in MB/s.
    pub mb_per_s: f64,
}

/// Sweep specification.
#[derive(Debug, Clone)]
pub struct P2pBenchSpec {
    pub devices: Vec<DeviceKind>,
    pub datapaths: Vec<Datapath>,
    /// Eager thresholds to sweep: values below a payload force the
    /// rendezvous protocol for it, values above keep it eager.
    pub eager_limits: Vec<usize>,
    pub payloads: Vec<usize>,
    /// Timed reps for the smallest payload; larger payloads are scaled
    /// down (see [`reps_for`]).
    pub reps: usize,
    pub warmup: usize,
    /// Segment size used by the `segmented` datapath.
    pub segment_bytes: usize,
    /// Observability modes for the `trace_mode` axis: the zerocopy
    /// datapath re-measured under each mode at one representative
    /// payload (the main sweep itself is pinned to `off`). Empty
    /// disables the axis.
    pub trace_modes: Vec<TraceMode>,
}

impl Default for P2pBenchSpec {
    fn default() -> P2pBenchSpec {
        P2pBenchSpec {
            devices: vec![DeviceKind::ShmFast, DeviceKind::ShmP4, DeviceKind::Tcp],
            datapaths: Datapath::ALL.to_vec(),
            eager_limits: vec![1024, 2 * 1024 * 1024],
            payloads: vec![64, 4 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024],
            reps: 64,
            warmup: 4,
            segment_bytes: 64 * 1024,
            trace_modes: vec![TraceMode::Off, TraceMode::Counters, TraceMode::Events],
        }
    }
}

impl P2pBenchSpec {
    /// The tiny sweep CI smoke-runs: one device, two payloads, a couple
    /// of reps — enough to prove the harness end to end in seconds.
    pub fn quick() -> P2pBenchSpec {
        P2pBenchSpec {
            devices: vec![DeviceKind::ShmFast],
            datapaths: Datapath::ALL.to_vec(),
            eager_limits: vec![1024],
            payloads: vec![4 * 1024, 256 * 1024],
            reps: 4,
            warmup: 1,
            segment_bytes: 64 * 1024,
            trace_modes: vec![TraceMode::Off, TraceMode::Counters, TraceMode::Events],
        }
    }
}

/// Scale rep counts down for big payloads so a cell's wall time stays
/// roughly constant across the sweep.
pub fn reps_for(payload: usize, base: usize) -> usize {
    let scale = (payload / (64 * 1024)).max(1);
    (base / scale).max(4)
}

/// Measure one cell: one-way seconds per message over a rank-0 ↔ rank-1
/// ping-pong (both directions run the same datapath, so a round trip is
/// two one-way transfers).
#[allow(clippy::too_many_arguments)]
pub fn measure(
    device: DeviceKind,
    datapath: Datapath,
    eager_limit: usize,
    segment_bytes: usize,
    payload_bytes: usize,
    reps: usize,
    warmup: usize,
    trace: TraceConfig,
) -> f64 {
    // The trace mode is pinned per cell for the same reason segmentation
    // is below: an ambient MPIJAVA_TRACE must not relabel a cell.
    let config = UniverseConfig::new(2, device)
        .with_eager_threshold(eager_limit)
        .with_trace(trace);
    // Segmentation is pinned per cell *inside* the closure (not via the
    // config, which can only enable it): an ambient MPIJAVA_SEGMENT_BYTES
    // in the developer's environment must not silently turn the zerocopy
    // and legacy cells into segmented runs under a wrong label.
    let pinned_segment = match datapath {
        Datapath::Segmented if segment_bytes > 0 => Some(segment_bytes),
        _ => None,
    };
    let results = Universe::run_with_config(config, move |engine| {
        engine.set_segment_bytes(pinned_segment);
        let rank = engine.world_rank();
        let peer = (1 - rank) as i32;
        let (send_tag, recv_tag) = if rank == 0 { (1, 2) } else { (2, 1) };
        let payload_vec = vec![0xA5u8; payload_bytes];
        let payload = Bytes::from(payload_vec.clone());
        let mut buf = vec![0u8; payload_bytes];

        let send_one = |engine: &mut mpi_native::Engine| match datapath {
            Datapath::ZeroCopy | Datapath::Segmented => engine
                .send_bytes(
                    COMM_WORLD,
                    peer,
                    send_tag,
                    payload.clone(),
                    SendMode::Standard,
                )
                .expect("send"),
            Datapath::Legacy => engine
                .send(COMM_WORLD, peer, send_tag, &payload_vec, SendMode::Standard)
                .expect("send"),
        };
        let recv_one = |engine: &mut mpi_native::Engine, buf: &mut [u8]| match datapath {
            Datapath::ZeroCopy | Datapath::Segmented => {
                engine
                    .recv_into(COMM_WORLD, peer, recv_tag, buf)
                    .expect("recv");
            }
            Datapath::Legacy => {
                // The pre-refactor chain: completion buffer -> Vec
                // (the old `complete_recv` copy) -> user buffer.
                let (data, _) = engine
                    .recv(COMM_WORLD, peer, recv_tag, Some(buf.len()))
                    .expect("recv");
                let staged = data.to_vec();
                buf[..staged.len()].copy_from_slice(&staged);
            }
        };

        let mut elapsed = 0.0f64;
        if rank == 0 {
            for _ in 0..warmup {
                send_one(engine);
                recv_one(engine, &mut buf);
            }
            let start = Instant::now();
            for _ in 0..reps {
                send_one(engine);
                recv_one(engine, &mut buf);
            }
            elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(&buf);
        } else {
            for _ in 0..(warmup + reps) {
                recv_one(engine, &mut buf);
                send_one(engine);
            }
        }
        elapsed
    })
    .expect("p2p bench universe");
    // Round trip = two one-way transfers.
    results[0] / (reps as f64 * 2.0)
}

/// Run the full sweep. `progress` is called once per finished cell.
pub fn run_suite(spec: &P2pBenchSpec, mut progress: impl FnMut(&P2pRecord)) -> Vec<P2pRecord> {
    let mut records = Vec::new();
    for &device in &spec.devices {
        for &datapath in &spec.datapaths {
            for &eager_limit in &spec.eager_limits {
                for &payload in &spec.payloads {
                    // Segmentation only applies to rendezvous payloads:
                    // a `segmented` cell at or below the eager limit
                    // would measure the plain eager path under a wrong
                    // label, so it is skipped (same no-mislabeled-cells
                    // rule as the collectives sweep).
                    if matches!(datapath, Datapath::Segmented)
                        && (payload <= eager_limit || payload <= spec.segment_bytes)
                    {
                        continue;
                    }
                    let reps = reps_for(payload, spec.reps);
                    let best = (0..3)
                        .map(|_| {
                            measure(
                                device,
                                datapath,
                                eager_limit,
                                spec.segment_bytes,
                                payload,
                                reps,
                                spec.warmup,
                                TraceConfig::off(),
                            )
                        })
                        .fold(f64::INFINITY, f64::min);
                    let record = P2pRecord {
                        device: device.label().to_string(),
                        datapath: datapath.label().to_string(),
                        payload_bytes: payload,
                        eager_limit,
                        segment_bytes: if matches!(datapath, Datapath::Segmented) {
                            spec.segment_bytes
                        } else {
                            0
                        },
                        trace_mode: TraceMode::Off.label().to_string(),
                        us_per_msg: best * 1e6,
                        mb_per_s: payload as f64 / best / 1e6,
                    };
                    progress(&record);
                    records.push(record);
                }
            }
        }
    }
    // The trace_mode axis: the zerocopy datapath at one representative
    // payload, re-measured under each observability mode so the JSON
    // carries the overhead trajectory of the trace subsystem. Only the
    // `off` cell duplicates a main-sweep shape; it is re-measured here
    // anyway so all three cells share one host regime.
    if !spec.trace_modes.is_empty() {
        let device = spec.devices[0];
        let eager_limit = spec.eager_limits[0];
        let payload = spec.payloads[spec.payloads.len() / 2];
        let reps = reps_for(payload, spec.reps);
        for &mode in &spec.trace_modes {
            let trace = TraceConfig {
                mode,
                ..TraceConfig::default()
            };
            let best = (0..3)
                .map(|_| {
                    measure(
                        device,
                        Datapath::ZeroCopy,
                        eager_limit,
                        spec.segment_bytes,
                        payload,
                        reps,
                        spec.warmup,
                        trace,
                    )
                })
                .fold(f64::INFINITY, f64::min);
            let record = P2pRecord {
                device: device.label().to_string(),
                datapath: Datapath::ZeroCopy.label().to_string(),
                payload_bytes: payload,
                eager_limit,
                segment_bytes: 0,
                trace_mode: mode.label().to_string(),
                us_per_msg: best * 1e6,
                mb_per_s: payload as f64 / best / 1e6,
            };
            progress(&record);
            records.push(record);
        }
    }
    records
}

/// Serialize the records as a JSON array (all field values are plain
/// numbers or label strings, so no escaping is required).
pub fn to_json(records: &[P2pRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"device\": \"{}\", \"datapath\": \"{}\", \"payload_bytes\": {}, \
             \"eager_limit\": {}, \"segment_bytes\": {}, \"trace_mode\": \"{}\", \
             \"us_per_msg\": {:.3}, \"mb_per_s\": {:.2}}}{}\n",
            r.device,
            r.datapath,
            r.payload_bytes,
            r.eager_limit,
            r.segment_bytes,
            r.trace_mode,
            r.us_per_msg,
            r.mb_per_s,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Aligned text table of the records, for humans.
pub fn format_table(records: &[P2pRecord]) -> String {
    let mut out = format!(
        "{:>9} {:>9} {:>10} {:>9} {:>8} {:>12} {:>12}\n",
        "device", "datapath", "bytes", "eager", "segment", "us/msg", "MB/s"
    );
    for r in records {
        out.push_str(&format!(
            "{:>9} {:>9} {:>10} {:>9} {:>8} {:>12.2} {:>12.1}\n",
            r.device,
            r.datapath,
            r.payload_bytes,
            r.eager_limit,
            r.segment_bytes,
            r.us_per_msg,
            r.mb_per_s
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let records = vec![
            P2pRecord {
                device: "shm-fast".into(),
                datapath: "zerocopy".into(),
                payload_bytes: 262144,
                eager_limit: 1024,
                segment_bytes: 0,
                trace_mode: "off".into(),
                us_per_msg: 42.5,
                mb_per_s: 6168.1,
            },
            P2pRecord {
                device: "tcp".into(),
                datapath: "legacy".into(),
                payload_bytes: 64,
                eager_limit: 2097152,
                segment_bytes: 0,
                trace_mode: "events".into(),
                us_per_msg: 3.0,
                mb_per_s: 21.3,
            },
        ];
        let json = to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"datapath\": \"zerocopy\""));
        assert!(json.contains("\"payload_bytes\": 262144"));
        assert!(json.contains("\"eager_limit\": 1024"));
        assert!(json.contains("\"trace_mode\": \"events\""));
        assert!(json.contains("\"mb_per_s\": 6168.10"));
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn rep_scaling_never_reaches_zero() {
        assert_eq!(reps_for(64, 64), 64);
        assert_eq!(reps_for(64 * 1024, 64), 64);
        assert_eq!(reps_for(256 * 1024, 64), 16);
        assert_eq!(reps_for(16 * 1024 * 1024, 64), 4);
    }

    #[test]
    fn tiny_sweep_measures_every_cell() {
        let spec = P2pBenchSpec {
            devices: vec![DeviceKind::ShmFast],
            datapaths: vec![Datapath::ZeroCopy, Datapath::Legacy],
            eager_limits: vec![1024],
            payloads: vec![512],
            reps: 4,
            warmup: 1,
            segment_bytes: 256,
            trace_modes: Vec::new(),
        };
        let records = run_suite(&spec, |_| ());
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.us_per_msg > 0.0));
        assert!(records.iter().all(|r| r.mb_per_s > 0.0));
        assert!(records.iter().any(|r| r.datapath == "zerocopy"));
        assert!(records.iter().all(|r| r.trace_mode == "off"));
    }

    #[test]
    fn trace_axis_adds_one_cell_per_mode() {
        let spec = P2pBenchSpec {
            devices: vec![DeviceKind::ShmFast],
            datapaths: vec![Datapath::ZeroCopy],
            eager_limits: vec![1024],
            payloads: vec![512],
            reps: 4,
            warmup: 1,
            segment_bytes: 256,
            trace_modes: vec![TraceMode::Off, TraceMode::Counters, TraceMode::Events],
        };
        let records = run_suite(&spec, |_| ());
        // 1 main-sweep cell + 3 trace-axis cells.
        assert_eq!(records.len(), 4);
        for mode in ["off", "counters", "events"] {
            assert!(
                records
                    .iter()
                    .any(|r| r.trace_mode == mode && r.us_per_msg > 0.0),
                "missing trace_mode {mode}"
            );
        }
    }
}
