//! Ablation experiments for the design choices called out in DESIGN.md §5:
//!
//! * eager vs rendezvous threshold in the engine,
//! * marshalling copy vs pinning on the simulated JNI boundary,
//! * object serialization (`MPI.OBJECT`) vs derived datatypes for strided
//!   data,
//! * SPSC ring vs mutex mailbox for the shared-memory fast path,
//! * collective algorithm (linear vs binomial tree vs recursive doubling
//!   vs ring) per device — the Figure-5/6-style axis for the collective
//!   subsystem (full sweep: the `collectives` binary).
//!
//! ```text
//! cargo run --release -p mpi-bench --bin ablations
//! ```

use std::time::{Duration, Instant};

use mpi_transport::ring::spsc_ring;
use mpi_transport::{DeviceKind, Fabric, FabricConfig};
use mpijava::{Datatype, JniConfig, MarshalMode, MpiRuntime, Serializable};

fn time_it(f: impl FnOnce()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Ablation 1: eager threshold. A 64 KiB message is sent either eagerly or
/// through the rendezvous protocol depending on the threshold.
fn ablation_eager() {
    println!("== ablation: eager vs rendezvous threshold (64 KiB messages, SM) ==");
    for threshold in [1usize, 256 * 1024] {
        let runtime = MpiRuntime::new(2).eager_threshold(threshold);
        let elapsed = runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = 64 * 1024;
                let buf = vec![1u8; size];
                let mut recv = vec![0u8; size];
                let reps = 200;
                let start = Instant::now();
                for _ in 0..reps {
                    if rank == 0 {
                        world.send(&buf, 0, size, &Datatype::byte(), 1, 0)?;
                        world.recv(&mut recv, 0, size, &Datatype::byte(), 1, 1)?;
                    } else {
                        world.recv(&mut recv, 0, size, &Datatype::byte(), 0, 0)?;
                        world.send(&recv, 0, size, &Datatype::byte(), 0, 1)?;
                    }
                }
                Ok(start.elapsed().as_secs_f64() * 1e6 / reps as f64 / 2.0)
            })
            .expect("run");
        let protocol = if threshold < 64 * 1024 {
            "rendezvous"
        } else {
            "eager"
        };
        println!(
            "  threshold {threshold:>8} B ({protocol:>10}): {:>9.1} us one-way",
            elapsed[0]
        );
    }
    println!();
}

/// Ablation 2: marshalling copy vs pin on the simulated JNI boundary.
fn ablation_pin() {
    println!("== ablation: JNI marshalling copy vs pin (256 KiB messages, SM) ==");
    for (label, marshal) in [("copy", MarshalMode::Copy), ("pin", MarshalMode::Pin)] {
        let runtime = MpiRuntime::new(2).jni(JniConfig {
            marshal,
            per_call_cost: Duration::ZERO,
        });
        let result = runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = 256 * 1024;
                let buf = vec![1u8; size];
                let mut recv = vec![0u8; size];
                let reps = 100;
                let start = Instant::now();
                for _ in 0..reps {
                    if rank == 0 {
                        world.send(&buf, 0, size, &Datatype::byte(), 1, 0)?;
                        world.recv(&mut recv, 0, size, &Datatype::byte(), 1, 1)?;
                    } else {
                        world.recv(&mut recv, 0, size, &Datatype::byte(), 0, 0)?;
                        world.send(&recv, 0, size, &Datatype::byte(), 0, 1)?;
                    }
                }
                Ok(start.elapsed().as_secs_f64() * 1e6 / reps as f64 / 2.0)
            })
            .expect("run");
        println!("  marshal = {label:>4}: {:>9.1} us one-way", result[0]);
    }
    println!();
}

/// Ablation 3: sending a strided column as a derived datatype vs as
/// serialized objects (`MPI.OBJECT`), the §2.2 trade-off.
fn ablation_serialization() {
    println!("== ablation: derived datatype vs object serialization (strided column) ==");
    const N: usize = 256; // N x N matrix, send one column 200 times
    let runtime = MpiRuntime::new(2);
    let results = runtime
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let matrix: Vec<f64> = (0..N * N).map(|i| i as f64).collect();
            let column_type =
                Datatype::vector(N, 1, N as isize, &Datatype::double()).expect("column type");
            let reps = 200;

            // Derived datatype path.
            let derived = time_it(|| {
                for _ in 0..reps {
                    if rank == 0 {
                        world
                            .send(&matrix, 3, 1, &column_type, 1, 0)
                            .expect("send column");
                    } else {
                        let mut recv = vec![0f64; N * N];
                        world
                            .recv(&mut recv, 3, 1, &column_type, 0, 0)
                            .expect("recv column");
                    }
                }
            });

            // Object-serialization path: copy the column into a Vec<f64>
            // and ship it as one serializable object.
            let object = time_it(|| {
                for _ in 0..reps {
                    if rank == 0 {
                        let column: Vec<f64> = (0..N).map(|row| matrix[row * N + 3]).collect();
                        world
                            .send_object(&[column], 0, 1, 1, 1)
                            .expect("send object");
                    } else {
                        let (_cols, _status) =
                            world.recv_object::<Vec<f64>>(1, 0, 1).expect("recv object");
                    }
                }
            });
            Ok((derived, object))
        })
        .expect("run");
    let (derived, object) = results[0];
    println!(
        "  derived datatype : {:>9.1} us per column",
        derived.as_secs_f64() * 1e6 / 200.0
    );
    println!(
        "  MPI.OBJECT       : {:>9.1} us per column",
        object.as_secs_f64() * 1e6 / 200.0
    );
    println!();
}

/// Ablation 4: the lock-free SPSC ring against the mutex mailbox that the
/// shared-memory device uses.
fn ablation_ring() {
    println!("== ablation: SPSC ring vs mutex mailbox (1M small transfers) ==");
    const N: u64 = 1_000_000;

    let ring_time = {
        let (tx, rx) = spsc_ring::<u64>(1024);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push(i);
            }
        });
        let start = Instant::now();
        let mut sum = 0u64;
        for _ in 0..N {
            sum = sum.wrapping_add(rx.pop());
        }
        let elapsed = start.elapsed();
        producer.join().expect("producer");
        std::hint::black_box(sum);
        elapsed
    };

    let mailbox_time = {
        let fabric = Fabric::build(FabricConfig::new(2, DeviceKind::ShmFast)).expect("fabric");
        let mut eps = fabric.into_endpoints();
        let b = eps.pop().expect("endpoint");
        let a = eps.pop().expect("endpoint");
        use mpi_transport::{Frame, FrameHeader, FrameKind};
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let header = FrameHeader {
                    kind: FrameKind::Eager,
                    src: 0,
                    dst: 1,
                    tag: (i % 1024) as i32,
                    context: 0,
                    token: i,
                    msg_len: 0,
                };
                a.send(Frame::control(header)).expect("send");
            }
        });
        let start = Instant::now();
        for _ in 0..N {
            b.recv().expect("recv");
        }
        let elapsed = start.elapsed();
        producer.join().expect("producer");
        elapsed
    };

    println!(
        "  spsc ring     : {:>8.1} ns per transfer",
        ring_time.as_nanos() as f64 / N as f64
    );
    println!(
        "  mutex mailbox : {:>8.1} ns per transfer",
        mailbox_time.as_nanos() as f64 / N as f64
    );
    println!();
}

/// Ablation 5: the collective-algorithm axis. Bcast and allreduce at a
/// bandwidth-bound payload on eight ranks, each algorithm pinned through
/// `MpiRuntime::coll_algorithm` (the programmatic form of
/// `MPIJAVA_COLL_ALG`); `auto` is the tuned size-aware selector.
fn ablation_collectives() {
    use mpi_bench::collbench::{run_suite, CollBenchSpec};
    use mpijava::CollAlgorithm;
    println!("== ablation: collective algorithm (64 KiB, 8 ranks, SM) ==");
    let spec = CollBenchSpec {
        ranks: 8,
        devices: vec![DeviceKind::ShmFast],
        algorithms: vec![
            None,
            Some(CollAlgorithm::Linear),
            Some(CollAlgorithm::BinomialTree),
            Some(CollAlgorithm::RecursiveDoubling),
            Some(CollAlgorithm::Ring),
        ],
        payloads: vec![64 * 1024],
        reps: 10,
        warmup: 3,
        link: mpi_bench::collbench::modelled_link(),
        trace_modes: Vec::new(),
    };
    let records = run_suite(&spec, |_| ());
    for op in ["bcast", "allreduce", "allgather", "barrier"] {
        print!("  {op:>10}:");
        for r in records.iter().filter(|r| r.op == op) {
            print!(" {}={:.1}us", r.algorithm, r.us_per_op);
        }
        println!();
    }
    println!();
}

/// Quick self-check that the Serializable bound used above is exercised.
#[allow(dead_code)]
fn assert_serializable<T: Serializable>() {}

fn main() {
    ablation_eager();
    ablation_pin();
    ablation_serialization();
    ablation_ring();
    ablation_collectives();
}
