//! Edge-case tests for the collective layer: zero-length contributions to
//! gather/scatter/allgather/alltoall and zero-count reductions, on all
//! three transport devices (`shm-fast`, `shm-p4`, `tcp`). These run
//! through the classic paper-faithful surface, so they cover the whole
//! stack: wrapper packing, the simulated JNI boundary, and the engine's
//! tuned algorithm selection.

use mpijava::{Datatype, Op};
use mpijava_suite::test_runtimes;

#[test]
fn gatherv_with_zero_length_contributions() {
    for (label, runtime) in test_runtimes(4) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = world.size()?;
                // Even ranks contribute nothing; odd ranks contribute `rank` ints.
                let send: Vec<i32> = if rank % 2 == 0 {
                    Vec::new()
                } else {
                    vec![rank as i32; rank]
                };
                let counts: Vec<usize> =
                    (0..size).map(|r| if r % 2 == 0 { 0 } else { r }).collect();
                let displs: Vec<usize> = counts
                    .iter()
                    .scan(0usize, |acc, &c| {
                        let d = *acc;
                        *acc += c;
                        Some(d)
                    })
                    .collect();
                let total: usize = counts.iter().sum();
                let mut recv = vec![-1i32; total];
                world.gatherv(
                    &send,
                    0,
                    send.len(),
                    &Datatype::int(),
                    &mut recv,
                    0,
                    &counts,
                    &displs,
                    &Datatype::int(),
                    1,
                )?;
                if rank == 1 {
                    for r in 0..size {
                        let at = displs[r];
                        assert_eq!(&recv[at..at + counts[r]], vec![r as i32; counts[r]]);
                    }
                }
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn scatterv_with_zero_length_chunks() {
    for (label, runtime) in test_runtimes(4) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = world.size()?;
                let counts: Vec<usize> =
                    (0..size).map(|r| if r == 2 { 0 } else { r + 1 }).collect();
                let displs: Vec<usize> = counts
                    .iter()
                    .scan(0usize, |acc, &c| {
                        let d = *acc;
                        *acc += c;
                        Some(d)
                    })
                    .collect();
                let total: usize = counts.iter().sum();
                let send: Vec<i32> = (0..total as i32).collect();
                let mut recv = vec![-7i32; counts[rank]];
                world.scatterv(
                    &send,
                    0,
                    &counts,
                    &displs,
                    &Datatype::int(),
                    &mut recv,
                    0,
                    counts[rank],
                    &Datatype::int(),
                    0,
                )?;
                let expect: Vec<i32> =
                    (displs[rank] as i32..(displs[rank] + counts[rank]) as i32).collect();
                assert_eq!(recv, expect);
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn allgatherv_with_zero_length_contributions() {
    for (label, runtime) in test_runtimes(3) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = world.size()?;
                let send: Vec<i32> = vec![rank as i32 * 100; rank]; // rank 0 sends nothing
                let counts: Vec<usize> = (0..size).collect();
                let displs: Vec<usize> = counts
                    .iter()
                    .scan(0usize, |acc, &c| {
                        let d = *acc;
                        *acc += c;
                        Some(d)
                    })
                    .collect();
                let total: usize = counts.iter().sum();
                let mut recv = vec![-1i32; total];
                world.allgatherv(
                    &send,
                    0,
                    send.len(),
                    &Datatype::int(),
                    &mut recv,
                    0,
                    &counts,
                    &displs,
                    &Datatype::int(),
                )?;
                for r in 0..size {
                    assert_eq!(
                        &recv[displs[r]..displs[r] + counts[r]],
                        vec![r as i32 * 100; r]
                    );
                }
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn alltoallv_with_zero_length_chunks() {
    for (label, runtime) in test_runtimes(3) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = world.size()?;
                // Rank r sends (r + d) % 2 ints to rank d: half the chunks are empty.
                let scounts: Vec<usize> = (0..size).map(|d| (rank + d) % 2).collect();
                let sdispls: Vec<usize> = scounts
                    .iter()
                    .scan(0usize, |acc, &c| {
                        let d = *acc;
                        *acc += c;
                        Some(d)
                    })
                    .collect();
                let stotal: usize = scounts.iter().sum();
                let send = vec![rank as i32; stotal];
                let rcounts: Vec<usize> = (0..size).map(|s| (s + rank) % 2).collect();
                let rdispls: Vec<usize> = rcounts
                    .iter()
                    .scan(0usize, |acc, &c| {
                        let d = *acc;
                        *acc += c;
                        Some(d)
                    })
                    .collect();
                let rtotal: usize = rcounts.iter().sum();
                let mut recv = vec![-1i32; rtotal];
                world.alltoallv(
                    &send,
                    0,
                    &scounts,
                    &sdispls,
                    &Datatype::int(),
                    &mut recv,
                    0,
                    &rcounts,
                    &rdispls,
                    &Datatype::int(),
                )?;
                for s in 0..size {
                    assert_eq!(
                        &recv[rdispls[s]..rdispls[s] + rcounts[s]],
                        vec![s as i32; rcounts[s]]
                    );
                }
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn zero_count_reduce_and_allreduce() {
    for (label, runtime) in test_runtimes(3) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let send: [i32; 0] = [];
                let mut recv: [i32; 0] = [];
                world.reduce(&send, 0, &mut recv, 0, 0, &Datatype::int(), &Op::sum(), 1)?;
                world.allreduce(&send, 0, &mut recv, 0, 0, &Datatype::int(), &Op::max())?;
                // A zero-element scan is legal too.
                world.scan(&send, 0, &mut recv, 0, 0, &Datatype::int(), &Op::sum())?;
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}
