//! Object serialization for the `MPI.OBJECT` datatype (paper §2.2).
//!
//! The paper proposes extending mpiJava with a predefined `MPI.OBJECT`
//! datatype whose buffers are arrays of serializable Java objects,
//! serialized automatically inside the send wrapper and reconstructed at
//! the destination. Rust has no built-in reflection-based serialization,
//! so this module provides the equivalent plumbing: a [`Serializable`]
//! trait (the analogue of `java.io.Serializable`) plus
//! [`ObjectOutputStream`] / [`ObjectInputStream`] encoders with a compact
//! little-endian binary format. Implementations are provided for the
//! primitive types, `String`, `Option`, `Vec` and small tuples, which is
//! enough to express the kinds of message payloads the paper's discussion
//! (and our examples) use.

use mpi_native::ErrorClass;

use crate::exception::{MPIException, MpiResult};

/// The analogue of `java.io.Serializable` + `writeObject`.
pub trait Serializable: Sized {
    /// Append this object's encoding to the stream.
    fn write_object(&self, out: &mut ObjectOutputStream);
    /// Decode one object from the stream.
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self>;
}

/// Growable encoder (`java.io.ObjectOutputStream`).
#[derive(Debug, Default)]
pub struct ObjectOutputStream {
    bytes: Vec<u8>,
}

impl ObjectOutputStream {
    /// An empty stream.
    pub fn new() -> ObjectOutputStream {
        ObjectOutputStream::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Append raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Append one object.
    pub fn write<T: Serializable>(&mut self, value: &T) {
        value.write_object(self);
    }
}

/// Decoder over a byte slice (`java.io.ObjectInputStream`).
#[derive(Debug)]
pub struct ObjectInputStream<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> ObjectInputStream<'a> {
    /// Decode from `bytes`.
    pub fn new(bytes: &'a [u8]) -> ObjectInputStream<'a> {
        ObjectInputStream { bytes, cursor: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.cursor
    }

    /// Read exactly `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> MpiResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(MPIException::new(
                ErrorClass::Truncate,
                format!(
                    "object stream exhausted: need {n} bytes, have {}",
                    self.remaining()
                ),
            ));
        }
        let out = &self.bytes[self.cursor..self.cursor + n];
        self.cursor += n;
        Ok(out)
    }

    /// Read one object.
    pub fn read<T: Serializable>(&mut self) -> MpiResult<T> {
        T::read_object(self)
    }
}

/// Serialize one value to a standalone byte vector.
pub fn serialize<T: Serializable>(value: &T) -> Vec<u8> {
    let mut out = ObjectOutputStream::new();
    out.write(value);
    out.into_bytes()
}

/// Deserialize one value from a byte slice produced by [`serialize`].
pub fn deserialize<T: Serializable>(bytes: &[u8]) -> MpiResult<T> {
    let mut input = ObjectInputStream::new(bytes);
    let value = input.read::<T>()?;
    Ok(value)
}

macro_rules! impl_serializable_number {
    ($($ty:ty),*) => {$(
        impl Serializable for $ty {
            fn write_object(&self, out: &mut ObjectOutputStream) {
                out.write_bytes(&self.to_le_bytes());
            }
            fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
                let w = std::mem::size_of::<$ty>();
                let bytes = input.read_bytes(w)?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*}
}
impl_serializable_number!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Serializable for usize {
    // Platform-independent width: always encoded as a u64.
    fn write_object(&self, out: &mut ObjectOutputStream) {
        out.write_bytes(&(*self as u64).to_le_bytes());
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        let v = u64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap());
        Ok(v as usize)
    }
}

impl Serializable for bool {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        out.write_bytes(&[*self as u8]);
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        Ok(input.read_bytes(1)?[0] != 0)
    }
}

impl Serializable for char {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        out.write_bytes(&(*self as u32).to_le_bytes());
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        let code = u32::from_le_bytes(input.read_bytes(4)?.try_into().unwrap());
        char::from_u32(code).ok_or_else(|| {
            MPIException::new(ErrorClass::Other, format!("invalid char code point {code}"))
        })
    }
}

impl Serializable for String {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        out.write_bytes(&(self.len() as u64).to_le_bytes());
        out.write_bytes(self.as_bytes());
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        let len = u64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap()) as usize;
        let bytes = input.read_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| MPIException::new(ErrorClass::Other, format!("invalid UTF-8: {e}")))
    }
}

impl<T: Serializable> Serializable for Vec<T> {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        out.write_bytes(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.write_object(out);
        }
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        let len = u64::from_le_bytes(input.read_bytes(8)?.try_into().unwrap()) as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::read_object(input)?);
        }
        Ok(out)
    }
}

impl<T: Serializable> Serializable for Option<T> {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        match self {
            None => out.write_bytes(&[0]),
            Some(v) => {
                out.write_bytes(&[1]);
                v.write_object(out);
            }
        }
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        match input.read_bytes(1)?[0] {
            0 => Ok(None),
            _ => Ok(Some(T::read_object(input)?)),
        }
    }
}

impl<A: Serializable, B: Serializable> Serializable for (A, B) {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        self.0.write_object(out);
        self.1.write_object(out);
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        Ok((A::read_object(input)?, B::read_object(input)?))
    }
}

impl<A: Serializable, B: Serializable, C: Serializable> Serializable for (A, B, C) {
    fn write_object(&self, out: &mut ObjectOutputStream) {
        self.0.write_object(out);
        self.1.write_object(out);
        self.2.write_object(out);
    }
    fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
        Ok((
            A::read_object(input)?,
            B::read_object(input)?,
            C::read_object(input)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(deserialize::<i32>(&serialize(&-42i32)).unwrap(), -42);
        assert_eq!(deserialize::<f64>(&serialize(&3.25f64)).unwrap(), 3.25);
        assert!(deserialize::<bool>(&serialize(&true)).unwrap());
        assert_eq!(deserialize::<char>(&serialize(&'λ')).unwrap(), 'λ');
    }

    #[test]
    fn strings_and_vectors_roundtrip() {
        let s = "Hello, there".to_string();
        assert_eq!(deserialize::<String>(&serialize(&s)).unwrap(), s);
        let v: Vec<i64> = vec![1, -2, 3_000_000_000];
        assert_eq!(deserialize::<Vec<i64>>(&serialize(&v)).unwrap(), v);
        let nested: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![3]];
        assert_eq!(
            deserialize::<Vec<Vec<u8>>>(&serialize(&nested)).unwrap(),
            nested
        );
    }

    #[test]
    fn options_and_tuples_roundtrip() {
        let x: Option<String> = Some("maybe".into());
        assert_eq!(deserialize::<Option<String>>(&serialize(&x)).unwrap(), x);
        let none: Option<i32> = None;
        assert_eq!(deserialize::<Option<i32>>(&serialize(&none)).unwrap(), None);
        let t = (7i32, "pair".to_string());
        assert_eq!(deserialize::<(i32, String)>(&serialize(&t)).unwrap(), t);
        let t3 = (1u8, 2i64, 3.5f32);
        assert_eq!(deserialize::<(u8, i64, f32)>(&serialize(&t3)).unwrap(), t3);
    }

    #[test]
    fn custom_struct_via_manual_impl() {
        #[derive(Debug, PartialEq)]
        struct Particle {
            id: i32,
            position: (f64, f64),
            label: String,
        }
        impl Serializable for Particle {
            fn write_object(&self, out: &mut ObjectOutputStream) {
                out.write(&self.id);
                out.write(&self.position);
                out.write(&self.label);
            }
            fn read_object(input: &mut ObjectInputStream<'_>) -> MpiResult<Self> {
                Ok(Particle {
                    id: input.read()?,
                    position: input.read()?,
                    label: input.read()?,
                })
            }
        }
        let p = Particle {
            id: 9,
            position: (1.5, -2.5),
            label: "electron".into(),
        };
        let bytes = serialize(&p);
        assert_eq!(deserialize::<Particle>(&bytes).unwrap(), p);
    }

    #[test]
    fn truncated_streams_error_cleanly() {
        let bytes = serialize(&"truncate me".to_string());
        let err = deserialize::<String>(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err.class, ErrorClass::Truncate);
        let err = deserialize::<i64>(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.class, ErrorClass::Truncate);
    }
}
