//! Cross-rank causal analysis of a per-rank trace dump directory, and
//! the CI drills that gate it.
//!
//! ```text
//! cargo run -p mpi-bench --bin traceanalyze -- <trace-dir> [--json OUT]
//! cargo run -p mpi-bench --bin traceanalyze -- --drill straggler [--dir DIR] [--json OUT]
//! cargo run -p mpi-bench --bin traceanalyze -- --drill killcoll  [--dir DIR] [--json OUT]
//! ```
//!
//! The first form analyzes existing dumps (wait-state profiles with
//! blame, clock alignment, collective skews, the global critical path)
//! and prints the human report; `--json` also writes the
//! schema-versioned analysis JSON for `benchdiff`.
//!
//! The drill forms run the CI acceptance workloads end to end and gate
//! on their analyses:
//!
//! * `straggler` — a modelled-link recursive-doubling allreduce with
//!   one fault-delayed rank; every other rank's dominant wait state
//!   must be collective imbalance and the straggler must hold at least
//!   half the critical path;
//! * `killcoll` — the kill-mid-allreduce spool drill; the analysis
//!   must complete over the victim's force-dump mixed with the
//!   survivors' finalize dumps and join the clean first allreduce
//!   across all ranks.
//!
//! A failed gate prints the report and exits nonzero.

use std::path::PathBuf;
use std::process::ExitCode;

use mpi_bench::causal::{
    analyze_dir, check_straggler_attribution, run_killcoll_drill, run_straggler_drill, Analysis,
    StragglerDrillSpec,
};

struct Args {
    trace_dir: Option<PathBuf>,
    drill: Option<String>,
    dir: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace_dir: None,
        drill: None,
        dir: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--drill" => args.drill = Some(it.next().ok_or("--drill needs a name")?),
            "--dir" => args.dir = Some(PathBuf::from(it.next().ok_or("--dir needs a path")?)),
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--help" | "-h" => {
                return Err("usage: traceanalyze <trace-dir> [--json OUT] | \
                            --drill straggler|killcoll [--dir DIR] [--json OUT]"
                    .into())
            }
            other if args.trace_dir.is_none() && !other.starts_with('-') => {
                args.trace_dir = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(args)
}

fn emit(analysis: &Analysis, json: &Option<PathBuf>) -> Result<(), String> {
    print!("{}", analysis.render_report());
    if let Some(path) = json {
        std::fs::write(path, analysis.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("analysis JSON written to {}", path.display());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.drill.as_deref() {
        None => {
            let dir = args
                .trace_dir
                .ok_or("usage: traceanalyze <trace-dir> | --drill straggler|killcoll")?;
            let analysis = analyze_dir(&dir)?;
            emit(&analysis, &args.json)
        }
        Some("straggler") => {
            let dir = args
                .dir
                .unwrap_or_else(|| std::env::temp_dir().join("traceanalyze-straggler"));
            let _ = std::fs::remove_dir_all(&dir);
            let spec = StragglerDrillSpec::default();
            println!(
                "straggler drill: {} ranks, rank {} delayed {:?}/frame, traces in {}",
                spec.ranks,
                spec.straggler,
                spec.delay,
                dir.display()
            );
            let analysis = run_straggler_drill(&dir, &spec)?;
            emit(&analysis, &args.json)?;
            check_straggler_attribution(&analysis, &spec)?;
            println!(
                "gate passed: non-straggler ranks dominated by coll_imbalance, \
                 straggler holds {:.1}% of the critical path",
                100.0 * analysis.critical_path.rank_share(spec.straggler)
            );
            Ok(())
        }
        Some("killcoll") => {
            let root = args
                .dir
                .unwrap_or_else(|| std::env::temp_dir().join("traceanalyze-killcoll"));
            let _ = std::fs::remove_dir_all(&root);
            println!("killcoll drill: 3 ranks over spool, victim force-dumps mid-job");
            let analysis = run_killcoll_drill(&root, 3)?;
            emit(&analysis, &args.json)?;
            println!("gate passed: analysis joined all 3 dumps including the victim's");
            Ok(())
        }
        Some(other) => Err(format!("unknown drill {other:?} (straggler|killcoll)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("traceanalyze: {e}");
            ExitCode::FAILURE
        }
    }
}
