//! Functionality tests: derived datatypes, pack/unpack and environmental
//! inquiries (paper §3.4 categories "data types" and "environmental
//! inquiries", plus the §2.2 restrictions of the Java binding).

use mpijava::{Datatype, ErrorClass, MpiRuntime, MPI};

#[test]
fn derived_datatype_queries_match_definitions() {
    let int = Datatype::int();
    assert_eq!(int.size(), 4);
    assert_eq!(int.extent(), 4);

    let contiguous = Datatype::contiguous(10, &int).unwrap();
    assert_eq!(contiguous.size(), 40);
    assert_eq!(contiguous.extent(), 40);

    let vector = Datatype::vector(4, 2, 5, &Datatype::double()).unwrap();
    assert_eq!(vector.size(), 4 * 2 * 8);
    assert_eq!(vector.extent(), ((3 * 5 + 2) * 8) as isize);
    assert_eq!(vector.lb(), 0);
    assert!(vector.ub() > 0);

    let indexed = Datatype::indexed(&[1, 3], &[0, 10], &int).unwrap();
    assert_eq!(indexed.size(), 16);

    let hindexed = Datatype::hindexed(&[1, 1], &[0, 100], &int).unwrap();
    assert_eq!(hindexed.extent(), 104);

    let hvector = Datatype::hvector(2, 1, 64, &int).unwrap();
    assert_eq!(hvector.extent(), 68);
}

#[test]
fn strided_vector_send_recv_selects_columns() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            const ROWS: usize = 5;
            const COLS: usize = 4;
            // Column datatype over a row-major matrix: ROWS blocks of 1,
            // stride COLS.
            let column = Datatype::vector(ROWS, 1, COLS as isize, &Datatype::int()).unwrap();
            if rank == 0 {
                let matrix: Vec<i32> = (0..(ROWS * COLS) as i32).collect();
                // Send column 2.
                world.send(&matrix, 2, 1, &column, 1, 1)?;
            } else {
                let mut matrix = vec![-1i32; ROWS * COLS];
                world.recv(&mut matrix, 2, 1, &column, 0, 1)?;
                for row in 0..ROWS {
                    assert_eq!(matrix[row * COLS + 2], (row * COLS + 2) as i32);
                }
                // Everything outside the column is untouched.
                assert_eq!(matrix[0], -1);
                assert_eq!(matrix[3], -1);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn struct_type_obeys_the_paper_mono_type_restriction() {
    // Allowed: same base type everywhere.
    let ok = Datatype::struct_type(&[2, 3], &[0, 16], &[Datatype::int(), Datatype::int()]);
    assert!(ok.is_ok());
    // Forbidden by §2.2: mixing base types.
    let err = Datatype::struct_type(&[1, 1], &[0, 8], &[Datatype::double(), Datatype::int()])
        .unwrap_err();
    assert_eq!(err.class, ErrorClass::Type);
}

#[test]
fn mismatched_buffer_and_datatype_is_rejected() {
    MpiRuntime::new(1)
        .run(|mpi| {
            let world = mpi.comm_world();
            let ints = [1i32, 2];
            let err = world
                .send(&ints, 0, 2, &Datatype::double(), MPI::PROC_NULL, 0)
                .unwrap_err();
            assert_eq!(err.class, ErrorClass::Type);
            let err = world
                .send(&ints, 1, 5, &Datatype::int(), MPI::PROC_NULL, 0)
                .unwrap_err();
            assert_eq!(err.class, ErrorClass::Buffer);
            Ok(())
        })
        .unwrap();
}

#[test]
fn pack_and_unpack_round_trip_mixed_segments() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            if rank == 0 {
                let header = [7i32, 3];
                let values = [1.5f64, 2.5, 3.5];
                let mut packed = Vec::new();
                world.pack(&header, 0, 2, &Datatype::int(), &mut packed)?;
                world.pack(&values, 0, 3, &Datatype::double(), &mut packed)?;
                assert_eq!(
                    packed.len(),
                    world.pack_size(2, &Datatype::int()) + world.pack_size(3, &Datatype::double())
                );
                world.send(&packed, 0, packed.len(), &Datatype::packed(), 1, 9)?;
            } else {
                let status = world.probe(0, 9)?;
                let bytes = status.count_bytes();
                let mut packed = vec![0u8; bytes];
                world.recv(&mut packed, 0, bytes, &Datatype::packed(), 0, 9)?;
                let mut header = [0i32; 2];
                let mut values = [0f64; 3];
                let pos = world.unpack(&packed, 0, &mut header, 0, 2, &Datatype::int())?;
                world.unpack(&packed, pos, &mut values, 0, 3, &Datatype::double())?;
                assert_eq!(header, [7, 3]);
                assert_eq!(values, [1.5, 2.5, 3.5]);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn environmental_inquiries() {
    MpiRuntime::new(2)
        .run(|mpi| {
            // Wtime / Wtick: monotone, fine-grained (the paper had to work
            // around a millisecond-resolution Wtime on WMPI, §4.2).
            let t0 = mpi.wtime();
            let t1 = mpi.wtime();
            assert!(t1 >= t0);
            assert!(mpi.wtick() < 1e-6);

            // Processor name identifies the rank.
            let name = mpi.get_processor_name();
            assert!(name.contains(&format!("rank-{}", mpi.comm_world().rank()?)));

            // TAG_UB is large, as guaranteed by the standard (the bound
            // is constant-true for this engine, which is the point).
            #[allow(clippy::assertions_on_constants, clippy::absurd_extreme_comparisons)]
            {
                assert!(MPI::TAG_UB >= 32767);
            }
            assert!(mpi.initialized());
            Ok(())
        })
        .unwrap();
}

#[test]
fn finalize_prevents_further_communication() {
    MpiRuntime::new(1)
        .run(|mpi| {
            let world = mpi.comm_world();
            mpi.finalize()?;
            assert!(!mpi.initialized());
            let err = world
                .send(&[1u8], 0, 1, &Datatype::byte(), MPI::PROC_NULL, 0)
                .unwrap_err();
            assert_eq!(err.class, ErrorClass::NotInitialized);
            assert!(mpi.finalize().is_err());
            Ok(())
        })
        .unwrap();
}

#[test]
fn status_reports_counts_and_elements() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            if world.rank()? == 0 {
                world.send(&[1.0f64; 6], 0, 6, &Datatype::double(), 1, 2)?;
            } else {
                let mut buf = [0f64; 10];
                let status = world.recv(&mut buf, 0, 10, &Datatype::double(), 0, 2)?;
                assert_eq!(status.get_count(&Datatype::double()), Some(6));
                let pair = Datatype::contiguous(4, &Datatype::double()).unwrap();
                // 6 doubles is not a whole number of 4-double instances.
                assert_eq!(status.get_count(&pair), None);
                assert_eq!(status.get_elements(&pair), Some(6));
                assert_eq!(status.source(), 0);
                assert_eq!(status.tag(), 2);
            }
            Ok(())
        })
        .unwrap();
}
