//! MPI_T-style observability: event tracing, metrics registry, export.
//!
//! MPI inherits a profiling culture — the PMPI shim of MPI-1, formalized
//! by MPI 3+ as the *tool information interface* (`MPI_T`): named
//! performance variables (pvars) a tool can enumerate, read, and reset at
//! runtime. This module gives the engine that third eye, in three layers:
//!
//! 1. **Event tracing** — a fixed-capacity per-rank ring buffer of
//!    timestamped [`TraceEvent`] records. Recording is allocation-free on
//!    the hot path: the ring is preallocated when tracing is configured,
//!    and a full ring overwrites the oldest record (counting
//!    [`Tracer::dropped`]). Every emit goes through a single engine hook
//!    that begins with a branch on [`TraceMode`], so `MPIJAVA_TRACE=off`
//!    costs one predictable compare per site.
//! 2. **Metrics registry** — [`MetricsSnapshot`], an MPI_T-flavored named
//!    variable table: every [`EngineStats`](crate::EngineStats) counter
//!    re-registered as an `engine.*` pvar, live gauges (posted/unexpected
//!    queue depth, in-flight collective schedules, per-peer heartbeat age
//!    and lease deadline), transport frame counters, and log₂-bucket
//!    latency histograms with approximate quantiles.
//! 3. **Export** — each rank dumps its ring as JSONL (one meta line, then
//!    one line per event) into `MPIJAVA_TRACE_DIR`, a configured
//!    directory, or `<spool root>/trace`; the `tracemerge` tool in the
//!    bench crate merges per-rank files into one Chrome
//!    `trace_event`-format timeline with one track per rank.
//!
//! # Event schema
//!
//! Events are fixed-size (`ts_ns`, kind, phase, five `i64` argument
//! slots); argument names are applied at dump time, off the hot path.
//! Kinds use only as many slots as their schema names:
//!
//! | kind | phase | `a` | `b` | `c` | `d` | `e` |
//! |---|---|---|---|---|---|---|
//! | `send_eager` | B/E | peer | tag | bytes | token | |
//! | `send_rendezvous` | B/E | peer | tag | bytes | token | |
//! | `recv_posted` | i | peer | tag | bytes | token | wait_ns |
//! | `recv_unexpected` | i | peer | tag | bytes | token | wait_ns |
//! | `rendezvous_grant` | i | peer | token | bytes | | |
//! | `rendezvous_data` | i | peer | token | bytes | | |
//! | `coll` | B/E | op index | algorithm index | schedule id | ctx | cseq |
//! | `coll_round` | B/E | schedule id | round index | transfers | ctx | cseq |
//! | `rma_put` | i | target | bytes | window | | |
//! | `rma_get` | i | target | bytes | window | | |
//! | `rma_epoch` | i | window | passive (0/1) | epochs so far | | |
//! | `lease_observed` | i | peer | heartbeat age (ms) | lease (ms) | | |
//! | `rank_failed` | i | peer | staleness (ms) | lease (ms) | | |
//! | `progress_burst` | i | total polls | burst size | 0 | | |
//!
//! # Causal stamps
//!
//! The `d`/`e` slots carry *matchable identifiers* so events join across
//! ranks without guessing:
//!
//! * **p2p**: every frame a sender dispatches carries a per-sender
//!   sequence token (allocated for eager and rendezvous alike). The
//!   token is stamped on the send interval and echoed on the receiver's
//!   `recv_posted`/`recv_unexpected` instant, so `(sender, token)` is a
//!   globally unique join key for one message. `wait_ns` on the receive
//!   side records how long the receiver waited (posted → arrival) or
//!   how long the payload sat unclaimed (arrival → match).
//! * **collectives**: the local schedule `id` is a per-rank request
//!   number and is *not* comparable across ranks. The `(ctx, cseq)`
//!   stamp is: the communicator's collective context id (identical on
//!   every member) and a per-communicator causal sequence number bumped
//!   once per collective start. MPI semantics require every member to
//!   call collectives on a communicator in the same order, so
//!   `(ctx, cseq, round)` matches round brackets rank-to-rank.
//!
//! # Wait-state classes
//!
//! When interval sampling is on, every matched receive also classifies
//! *why* the rank waited, keyed off the engine's tag-space layout (user
//! tags ≥ 0; collective tag windows at or below the collective base;
//! RMA window channels at or below the RMA base):
//!
//! * `late_sender` — a posted user-tag receive waited for the arrival.
//! * `late_receiver` — a user-tag payload arrived before the receive
//!   was posted and sat in the unexpected queue.
//! * `coll_imbalance` — collective-tag waiting on either side: a posted
//!   round receive waited for a peer that entered late, or the rank
//!   itself reached its round after the peer's data had already
//!   arrived (unexpected residency — the rank *is* the straggler's
//!   victim-turned-latecomer).
//! * `rma_target` — an RMA-channel receive or residency (lock grants,
//!   fetch replies): the passive target is starved of progress.
//!
//! Totals and log₂ histograms per class surface as `engine.wait.*`
//! pvars/histograms in [`MetricsSnapshot`], and the per-event `wait_ns`
//! stamp lets the offline analyzer recompute the same classification.
//!
//! # End-to-end walkthrough: trace → merge → analyze → benchdiff
//!
//! 1. **Trace**: run with `MPIJAVA_TRACE=events` (optionally
//!    `events:<capacity>`) and `MPIJAVA_TRACE_DIR=<dir>`; each rank dumps
//!    `trace-rank<k>.jsonl` at finalize (or on demand via
//!    `dump_trace_to`). The meta line carries `dropped` — if it is
//!    nonzero the ring wrapped and the oldest history is gone; grow the
//!    capacity before trusting whole-run analysis.
//! 2. **Merge**: `tracemerge <dir> -o trace.json` produces one Chrome
//!    `trace_event` timeline (load in `chrome://tracing` or Perfetto),
//!    one track per rank, clock-corrected (see caveats below).
//! 3. **Analyze**: `traceanalyze <dir> --json analysis.json` matches
//!    sends to receives by `(sender, token)` and collective rounds by
//!    `(ctx, cseq, round)`, classifies wait states, attributes blame to
//!    the rank that was waited on, and extracts the global critical path
//!    with a compute / send / wait / transport breakdown. The
//!    human-readable report always prints; `--json` adds the
//!    schema-versioned machine output. `--drill straggler|killcoll`
//!    runs the CI acceptance workloads end to end and gates on them.
//! 4. **Diff**: `benchdiff old.json new.json [--mode analysis] --gate`
//!    compares two bench result files (or two analysis reports) cell by
//!    cell and exits nonzero on changes past a threshold — the CI gate
//!    glue.
//!
//! **Clock-alignment caveats**: each rank's events are timestamped on
//! its own monotonic clock, anchored to the wall clock once at engine
//! construction (`start_unix_ns`). The analyzer refines that anchor by
//! pingpong-style midpoint estimation over matched message pairs, which
//! assumes roughly symmetric link delay; asymmetric paths bias offsets
//! by half the asymmetry, and one-way minimum delay puts a floor on the
//! achievable precision. In-process (thread-per-rank) runs share one
//! clock, so offsets there are near zero and mostly validate the
//! estimator. Cross-rank interval comparisons finer than the estimated
//! offset error are noise; the analyzer reports its per-rank offsets so
//! you can judge.
//!
//! Begin/End pairs are emitted only where closure is provable from the
//! engine's own state machine (an eager send completes within its
//! dispatch; a rendezvous send ends when the data ships on ACK; a
//! collective ends at harvest or quiesce), so a trace from a healthy run
//! has balanced pairs per kind — the integrity tests assert exactly that.
//! Everything that has no natural interval is an instant (`i`).
//!
//! # Overhead model
//!
//! * `off` — one enum compare per emit site; the always-compiled
//!   [`EngineStats`](crate::EngineStats) counters are the only cost.
//!   Gated at ≤3% on the pingpong latency bench.
//! * `counters` — adds two monotonic clock reads per sampled interval
//!   (posted-receive latency, unexpected-queue residency, collective
//!   round duration) feeding the log₂ histograms, plus transport frame
//!   counters. Gated at ≤10%.
//! * `events` — adds one 40-byte ring store per event. The ring is
//!   bounded ([`DEFAULT_TRACE_CAPACITY`] records unless
//!   `events:<capacity>` says otherwise), so a long run costs constant
//!   memory and drops its oldest history, never its newest.

use std::fmt;
use std::io::{self, Write};
use std::time::Duration;

use crate::coll::{CollAlgorithm, CollOp};

/// How much observability the engine records. See the module docs for
/// the overhead model and the `MPIJAVA_TRACE` grammar in [`crate::env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Counters only (the always-on [`crate::EngineStats`] block).
    #[default]
    Off,
    /// Plus latency/duration histograms and transport frame counters.
    Counters,
    /// Plus the event ring buffer and the finalize-time JSONL dump.
    Events,
}

impl TraceMode {
    /// The grammar token for this mode (`off` / `counters` / `events`).
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Counters => "counters",
            TraceMode::Events => "events",
        }
    }

    /// Parse one mode token. Accepts the canonical labels plus the usual
    /// aliases (`none`/`0` for off, `count` for counters).
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(TraceMode::Off),
            "counters" | "count" => Some(TraceMode::Counters),
            "events" | "trace" => Some(TraceMode::Events),
            _ => None,
        }
    }
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Default event-ring capacity (records, not bytes) when
/// `MPIJAVA_TRACE=events` does not name one.
pub const DEFAULT_TRACE_CAPACITY: usize = 64 * 1024;

/// Parsed trace configuration: a [`TraceMode`] plus the event-ring
/// capacity used when the mode is [`TraceMode::Events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Recording level.
    pub mode: TraceMode,
    /// Ring capacity in events (ignored unless `mode` is `Events`).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (counters only).
    pub fn off() -> TraceConfig {
        TraceConfig {
            mode: TraceMode::Off,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Histogram/frame-counter sampling, no event ring.
    pub fn counters() -> TraceConfig {
        TraceConfig {
            mode: TraceMode::Counters,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Full event recording at the default ring capacity.
    pub fn events() -> TraceConfig {
        TraceConfig {
            mode: TraceMode::Events,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Override the event-ring capacity (records; clamped to ≥ 1).
    pub fn with_capacity(mut self, capacity: usize) -> TraceConfig {
        self.capacity = capacity.max(1);
        self
    }

    /// Parse the `off|counters|events[:capacity]` grammar (the value
    /// grammar of `MPIJAVA_TRACE`). Returns `None` on anything it does
    /// not recognize — callers decide how loudly to complain.
    pub fn parse(s: &str) -> Option<TraceConfig> {
        let s = s.trim();
        if let Some((mode, cap)) = s.split_once(':') {
            let mode = TraceMode::parse(mode)?;
            if mode != TraceMode::Events {
                return None; // a capacity only makes sense with a ring
            }
            let capacity: usize = cap.trim().parse().ok().filter(|&c| c > 0)?;
            return Some(TraceConfig::events().with_capacity(capacity));
        }
        TraceMode::parse(s).map(|mode| TraceConfig {
            mode,
            capacity: DEFAULT_TRACE_CAPACITY,
        })
    }
}

impl fmt::Display for TraceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mode == TraceMode::Events && self.capacity != DEFAULT_TRACE_CAPACITY {
            write!(f, "events:{}", self.capacity)
        } else {
            f.write_str(self.mode.label())
        }
    }
}

/// What kind of engine activity an event records. See the schema table
/// in the module docs for the per-kind meaning of the argument slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Eager-protocol send (interval spans the dispatch).
    SendEager,
    /// Rendezvous-protocol send (begins at request, ends at data ship).
    SendRendezvous,
    /// Arrival matched an already-posted receive.
    RecvPosted,
    /// Receive matched a message from the unexpected queue.
    RecvUnexpected,
    /// Receiver granted a rendezvous request (sent the ACK).
    RendezvousGrant,
    /// Rendezvous payload fully reassembled at the receiver.
    RendezvousData,
    /// One collective operation (begin at schedule start, end at
    /// harvest or failure quiesce).
    Coll,
    /// One round of a collective schedule.
    CollRound,
    /// One-sided put/accumulate issued from this rank.
    RmaPut,
    /// One-sided get issued from this rank.
    RmaGet,
    /// RMA synchronization epoch completed (fence or unlock).
    RmaEpoch,
    /// Failure detector observed a peer's heartbeat lease state.
    LeaseObserved,
    /// A rank was declared failed.
    RankFailed,
    /// Background progress thread completed a poll burst.
    ProgressBurst,
}

impl EventKind {
    /// Dump-time name of this kind.
    pub fn name(self) -> &'static str {
        self.meta().0
    }

    /// Dump-time argument names for the argument slots (`a` onward).
    /// A kind uses exactly as many slots as it has names; the rest stay
    /// zero and are not written to the dump.
    fn meta(self) -> (&'static str, &'static [&'static str]) {
        match self {
            EventKind::SendEager => ("send_eager", &["peer", "tag", "bytes", "token"]),
            EventKind::SendRendezvous => ("send_rendezvous", &["peer", "tag", "bytes", "token"]),
            EventKind::RecvPosted => ("recv_posted", &["peer", "tag", "bytes", "token", "wait_ns"]),
            EventKind::RecvUnexpected => (
                "recv_unexpected",
                &["peer", "tag", "bytes", "token", "wait_ns"],
            ),
            EventKind::RendezvousGrant => ("rendezvous_grant", &["peer", "token", "bytes"]),
            EventKind::RendezvousData => ("rendezvous_data", &["peer", "token", "bytes"]),
            EventKind::Coll => ("coll", &["op", "alg", "id", "ctx", "cseq"]),
            EventKind::CollRound => ("coll_round", &["id", "round", "transfers", "ctx", "cseq"]),
            EventKind::RmaPut => ("rma_put", &["target", "bytes", "win"]),
            EventKind::RmaGet => ("rma_get", &["target", "bytes", "win"]),
            EventKind::RmaEpoch => ("rma_epoch", &["win", "passive", "epochs"]),
            EventKind::LeaseObserved => ("lease_observed", &["peer", "age_ms", "lease_ms"]),
            EventKind::RankFailed => ("rank_failed", &["peer", "staleness_ms", "lease_ms"]),
            EventKind::ProgressBurst => ("progress_burst", &["polls", "burst", "_"]),
        }
    }
}

/// Begin/End bracket or point-in-time marker, mirroring the Chrome
/// `trace_event` phase letters (`B`, `E`, `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Interval opens.
    Begin,
    /// Interval closes.
    End,
    /// Instantaneous marker.
    Instant,
}

impl EventPhase {
    /// Chrome `trace_event` phase letter.
    pub fn letter(self) -> &'static str {
        match self {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Instant => "i",
        }
    }
}

/// One fixed-size trace record. Timestamps are nanoseconds since the
/// owning engine's construction (its monotonic `start_time`); the dump
/// meta line carries the wall-clock anchor that lets `tracemerge` align
/// rings from different ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since engine construction (monotonic).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Interval bracket or instant.
    pub phase: EventPhase,
    /// First argument slot (per-kind meaning; see module docs).
    pub a: i64,
    /// Second argument slot.
    pub b: i64,
    /// Third argument slot.
    pub c: i64,
    /// Fourth argument slot (causal stamp: p2p token, coll ctx).
    pub d: i64,
    /// Fifth argument slot (causal stamp: recv wait, coll cseq).
    pub e: i64,
}

/// Why a rank waited in a matched receive — the cross-rank wait-state
/// taxonomy (Scalasca's vocabulary) classified live at the match site
/// from the engine's tag-space layout. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Posted user-tag receive waited for the matching arrival.
    LateSender,
    /// Arrival sat in the unexpected queue before the receive was posted.
    LateReceiver,
    /// Collective-tag receive waited: a peer entered its round late.
    CollImbalance,
    /// RMA-channel receive waited: passive target starved of progress.
    RmaTarget,
}

impl WaitClass {
    /// All classes, in pvar/report order.
    pub const ALL: [WaitClass; 4] = [
        WaitClass::LateSender,
        WaitClass::LateReceiver,
        WaitClass::CollImbalance,
        WaitClass::RmaTarget,
    ];

    /// Pvar/report label.
    pub fn label(self) -> &'static str {
        match self {
            WaitClass::LateSender => "late_sender",
            WaitClass::LateReceiver => "late_receiver",
            WaitClass::CollImbalance => "coll_imbalance",
            WaitClass::RmaTarget => "rma_target",
        }
    }

    /// Classify a *posted-receive* wait by the tag space the message
    /// travelled in.
    pub fn for_posted_tag(tag: i32, coll_tag_base: i32, rma_tag_base: i32) -> WaitClass {
        if tag <= rma_tag_base {
            WaitClass::RmaTarget
        } else if tag <= coll_tag_base {
            WaitClass::CollImbalance
        } else {
            WaitClass::LateSender
        }
    }

    /// Classify an *unexpected-queue* residency by the same tag spaces.
    /// Only user-tag traffic is a true [`WaitClass::LateReceiver`]; in
    /// the collective and RMA channels the "receiver" is a rank arriving
    /// late to its own round (imbalance) or a target starved of progress
    /// — blaming the user's receive order there would be misdirection.
    pub fn for_unexpected_tag(tag: i32, coll_tag_base: i32, rma_tag_base: i32) -> WaitClass {
        if tag <= rma_tag_base {
            WaitClass::RmaTarget
        } else if tag <= coll_tag_base {
            WaitClass::CollImbalance
        } else {
            WaitClass::LateReceiver
        }
    }
}

/// Log₂-bucketed duration histogram: bucket *i* holds samples whose
/// nanosecond value has bit length *i* (so bucket 0 is exactly 0 ns,
/// bucket 10 is 512–1023 ns, …). 48 buckets cover ~78 hours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 48],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 48],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl LogHistogram {
    /// Record one duration sample.
    pub fn record(&mut self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (ns).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Upper bound (ns) of the bucket where the cumulative count crosses
    /// quantile `q` — an over-estimate by at most 2×, which is the
    /// resolution a log₂ sketch buys.
    fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return if idx == 0 { 0 } else { (1u64 << idx) - 1 };
            }
        }
        self.max_ns
    }

    /// Flatten into a named [`HistSnapshot`].
    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            count: self.count,
            total_ns: self.total_ns,
            max_ns: self.max_ns,
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p99_ns: self.quantile_ns(0.99),
        }
    }

    fn reset(&mut self) {
        *self = LogHistogram::default();
    }
}

/// MPI_T pvar classes this registry distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvarClass {
    /// Monotonically increasing count since start (or last reset).
    Counter,
    /// Point-in-time level that can go up and down.
    Gauge,
}

/// One named performance variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pvar {
    /// Dotted name, e.g. `engine.eager_sends` or `failure.peer2.age_ms`.
    pub name: String,
    /// Counter or gauge.
    pub class: PvarClass,
    /// Current value.
    pub value: i64,
}

/// Flattened histogram statistics for a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Histogram name, e.g. `p2p.latency`.
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub total_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    /// Median, to log₂ bucket resolution (ns).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
}

/// A point-in-time read of the whole registry: pvars plus histograms.
/// Obtained from `Engine::metrics_snapshot` (and re-surfaced by the
/// `mpijava` crate); reset with `Engine::metrics_reset`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// World rank the snapshot was taken on.
    pub rank: usize,
    /// Named counters and gauges.
    pub pvars: Vec<Pvar>,
    /// Latency/duration histograms.
    pub histograms: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a pvar value by name.
    pub fn pvar(&self, name: &str) -> Option<i64> {
        self.pvars.iter().find(|p| p.name == name).map(|p| p.value)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// The per-rank recorder: mode, preallocated event ring, histograms.
/// Owned by the engine; every emit goes through `Engine`'s inline hook,
/// which bails on the mode before touching a clock.
#[derive(Debug)]
pub struct Tracer {
    mode: TraceMode,
    capacity: usize,
    ring: Vec<TraceEvent>,
    /// Next write slot once the ring is full (= oldest record).
    head: usize,
    dropped: u64,
    /// Posted-receive completion latency and unexpected-queue residency.
    pub(crate) p2p_latency: LogHistogram,
    /// Collective round duration (transfers posted → transfers drained).
    pub(crate) coll_round: LogHistogram,
    /// Per-class wait time, indexed by [`WaitClass::ALL`] order.
    pub(crate) waits: [LogHistogram; 4],
}

impl Tracer {
    /// Build a tracer; the event ring is preallocated here (and only
    /// here) so recording never allocates.
    pub fn new(config: TraceConfig) -> Tracer {
        let capacity = config.capacity.max(1);
        let ring = if config.mode == TraceMode::Events {
            Vec::with_capacity(capacity)
        } else {
            Vec::new()
        };
        Tracer {
            mode: config.mode,
            capacity,
            ring,
            head: 0,
            dropped: 0,
            p2p_latency: LogHistogram::default(),
            coll_round: LogHistogram::default(),
            waits: Default::default(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// The configuration this tracer was built from.
    pub fn config(&self) -> TraceConfig {
        TraceConfig {
            mode: self.mode,
            capacity: self.capacity,
        }
    }

    /// True when the event ring records (`events` mode).
    #[inline]
    pub fn events_on(&self) -> bool {
        self.mode == TraceMode::Events
    }

    /// True when interval sampling (histograms) is on — `counters` or
    /// `events` mode.
    #[inline]
    pub fn timing_on(&self) -> bool {
        self.mode != TraceMode::Off
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one classified wait sample (the caller has already checked
    /// [`Tracer::timing_on`]).
    #[inline]
    pub(crate) fn note_wait(&mut self, class: WaitClass, ns: u64) {
        self.waits[class as usize].record(ns);
    }

    /// Per-class wait histogram, read-only.
    pub fn wait_hist(&self, class: WaitClass) -> &LogHistogram {
        &self.waits[class as usize]
    }

    /// Append one record. The caller has already checked
    /// [`Tracer::events_on`] and read the clock.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        ts_ns: u64,
        kind: EventKind,
        phase: EventPhase,
        a: i64,
        b: i64,
        c: i64,
        d: i64,
        e: i64,
    ) {
        let ev = TraceEvent {
            ts_ns,
            kind,
            phase,
            a,
            b,
            c,
            d,
            e,
        };
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Number of records currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Clear the ring and histograms (capacity and mode are kept).
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        self.p2p_latency.reset();
        self.coll_round.reset();
        for h in &mut self.waits {
            h.reset();
        }
    }

    /// Write the ring as JSONL: one meta line, then one line per event
    /// with named arguments. All values are numeric or fixed labels, so
    /// the writer needs no string escaping.
    pub fn write_jsonl(&self, w: &mut dyn Write, meta: &DumpMeta) -> io::Result<()> {
        writeln!(
            w,
            "{{\"meta\":true,\"rank\":{},\"size\":{},\"device\":\"{}\",\"mode\":\"{}\",\
             \"capacity\":{},\"recorded\":{},\"dropped\":{},\"start_unix_ns\":{}}}",
            meta.rank,
            meta.size,
            meta.device,
            self.mode.label(),
            self.capacity,
            self.ring.len(),
            self.dropped,
            meta.start_unix_ns,
        )?;
        for ev in self.events() {
            let (name, args) = ev.kind.meta();
            write!(
                w,
                "{{\"ts_ns\":{},\"name\":\"{}\",\"ph\":\"{}\",\"args\":{{",
                ev.ts_ns,
                name,
                ev.phase.letter()
            )?;
            let slots = [ev.a, ev.b, ev.c, ev.d, ev.e];
            match ev.kind {
                EventKind::Coll => {
                    // Resolve op/algorithm indices to their labels so the
                    // merged timeline reads `allreduce/recursive_doubling`
                    // instead of a pair of enum ordinals.
                    write!(
                        w,
                        "\"op\":\"{}\",\"alg\":\"{}\",\"id\":{},\"ctx\":{},\"cseq\":{}",
                        op_label(ev.a),
                        alg_label(ev.b),
                        ev.c,
                        ev.d,
                        ev.e
                    )?;
                }
                _ => {
                    for (i, name) in args.iter().enumerate() {
                        if i > 0 {
                            write!(w, ",")?;
                        }
                        write!(w, "\"{}\":{}", name, slots[i])?;
                    }
                }
            }
            writeln!(w, "}}}}")?;
        }
        Ok(())
    }
}

/// Per-rank identity stamped on the first line of a JSONL dump; carries
/// the wall-clock anchor (`start_unix_ns`) that lets `tracemerge` align
/// the monotonic per-rank timestamps onto one timeline.
#[derive(Debug, Clone)]
pub struct DumpMeta {
    /// World rank that owns the ring.
    pub rank: usize,
    /// World size of the job.
    pub size: usize,
    /// Transport device label (e.g. `spool`).
    pub device: String,
    /// `SystemTime` at engine construction, as nanoseconds since the
    /// Unix epoch.
    pub start_unix_ns: u128,
}

fn op_label(idx: i64) -> &'static str {
    usize::try_from(idx)
        .ok()
        .and_then(|i| CollOp::ALL.get(i).copied())
        .map(CollOp::label)
        .unwrap_or("unknown")
}

fn alg_label(idx: i64) -> &'static str {
    usize::try_from(idx)
        .ok()
        .and_then(|i| CollAlgorithm::ALL.get(i).copied())
        .map(CollAlgorithm::label)
        .unwrap_or("unknown")
}

/// Helper for gauge pvars derived from peer liveness: milliseconds,
/// saturating into the `i64` pvar slot.
pub(crate) fn millis_i64(d: Duration) -> i64 {
    i64::try_from(d.as_millis()).unwrap_or(i64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_config_grammar() {
        assert_eq!(TraceConfig::parse("off"), Some(TraceConfig::off()));
        assert_eq!(TraceConfig::parse(" NONE "), Some(TraceConfig::off()));
        assert_eq!(
            TraceConfig::parse("counters"),
            Some(TraceConfig::counters())
        );
        assert_eq!(TraceConfig::parse("events"), Some(TraceConfig::events()));
        assert_eq!(
            TraceConfig::parse("events:4096"),
            Some(TraceConfig::events().with_capacity(4096))
        );
        assert_eq!(TraceConfig::parse("events:0"), None);
        assert_eq!(TraceConfig::parse("counters:16"), None);
        assert_eq!(TraceConfig::parse("verbose"), None);
        assert_eq!(TraceConfig::parse(""), None);
    }

    #[test]
    fn trace_config_display_roundtrips() {
        for s in ["off", "counters", "events", "events:512"] {
            let cfg = TraceConfig::parse(s).unwrap();
            assert_eq!(TraceConfig::parse(&cfg.to_string()), Some(cfg));
        }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut t = Tracer::new(TraceConfig::events().with_capacity(4));
        for i in 0..6 {
            t.record(
                i,
                EventKind::RecvPosted,
                EventPhase::Instant,
                i as i64,
                0,
                0,
                0,
                0,
            );
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = evs.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn ring_does_not_allocate_after_init() {
        let mut t = Tracer::new(TraceConfig::events().with_capacity(8));
        let cap_before = t.ring.capacity();
        for i in 0..100 {
            t.record(i, EventKind::SendEager, EventPhase::Instant, 0, 0, 0, 0, 0);
        }
        assert_eq!(t.ring.capacity(), cap_before);
    }

    #[test]
    fn off_mode_allocates_no_ring() {
        let t = Tracer::new(TraceConfig::off());
        assert_eq!(t.ring.capacity(), 0);
        assert!(!t.events_on());
        assert!(!t.timing_on());
        assert!(Tracer::new(TraceConfig::counters()).timing_on());
    }

    #[test]
    fn histogram_quantiles_bucket_resolution() {
        let mut h = LogHistogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 7 (64..127)
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14 (8192..16383)
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 10_000);
        assert_eq!(s.p50_ns, 127);
        assert_eq!(s.p99_ns, 16_383);
    }

    #[test]
    fn jsonl_dump_has_meta_and_named_args() {
        let mut t = Tracer::new(TraceConfig::events().with_capacity(8));
        t.record(10, EventKind::SendEager, EventPhase::Begin, 1, 7, 64, 5, 0);
        t.record(20, EventKind::SendEager, EventPhase::End, 1, 7, 64, 5, 0);
        t.record(30, EventKind::Coll, EventPhase::Begin, 7, 2, 42, 9, 3);
        let mut buf = Vec::new();
        t.write_jsonl(
            &mut buf,
            &DumpMeta {
                rank: 3,
                size: 4,
                device: "spool".into(),
                start_unix_ns: 123,
            },
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"meta\":true"));
        assert!(lines[0].contains("\"rank\":3"));
        assert!(lines[0].contains("\"start_unix_ns\":123"));
        assert!(lines[1].contains("\"name\":\"send_eager\""));
        assert!(lines[1].contains("\"ph\":\"B\""));
        assert!(lines[1].contains("\"peer\":1"));
        assert!(lines[1].contains("\"token\":5"));
        assert!(lines[3].contains("\"op\":\"allreduce\""));
        assert!(lines[3].contains("\"id\":42"));
        assert!(lines[3].contains("\"ctx\":9"));
        assert!(lines[3].contains("\"cseq\":3"));
    }

    #[test]
    fn wait_class_tag_space() {
        const COLL: i32 = -1000;
        const RMA: i32 = -1_048_576;
        assert_eq!(
            WaitClass::for_posted_tag(0, COLL, RMA),
            WaitClass::LateSender
        );
        assert_eq!(
            WaitClass::for_posted_tag(99, COLL, RMA),
            WaitClass::LateSender
        );
        assert_eq!(
            WaitClass::for_posted_tag(-1000, COLL, RMA),
            WaitClass::CollImbalance
        );
        assert_eq!(
            WaitClass::for_posted_tag(-5000, COLL, RMA),
            WaitClass::CollImbalance
        );
        assert_eq!(
            WaitClass::for_posted_tag(RMA, COLL, RMA),
            WaitClass::RmaTarget
        );
        assert_eq!(
            WaitClass::for_posted_tag(RMA - 2, COLL, RMA),
            WaitClass::RmaTarget
        );
    }

    #[test]
    fn wait_histograms_accumulate_per_class() {
        let mut t = Tracer::new(TraceConfig::counters());
        t.note_wait(WaitClass::LateSender, 100);
        t.note_wait(WaitClass::LateSender, 200);
        t.note_wait(WaitClass::CollImbalance, 50);
        assert_eq!(t.wait_hist(WaitClass::LateSender).count(), 2);
        assert_eq!(t.wait_hist(WaitClass::LateSender).total_ns(), 300);
        assert_eq!(t.wait_hist(WaitClass::CollImbalance).count(), 1);
        assert_eq!(t.wait_hist(WaitClass::RmaTarget).count(), 0);
        t.reset();
        assert_eq!(t.wait_hist(WaitClass::LateSender).count(), 0);
    }
}
