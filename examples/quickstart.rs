//! The paper's Figure 3 — the minimal mpiJava program — translated to the
//! Rust binding, in both API surfaces as a migration guide. Two ranks;
//! rank 0 sends "Hello, there" as an array of Java-style chars, rank 1
//! receives and prints it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program runs twice: first through the **classic** surface (the
//! paper's Java argument conventions, explicit `MPI.CHAR` datatype and
//! offset/count), then through the **idiomatic** surface
//! (`mpijava::rs::Communicator`: slices carry the offset and count, the
//! element type carries the datatype). Both cross the same simulated JNI
//! boundary — the idiomatic form is sugar, not a shortcut.

use mpijava::{Datatype, MpiResult, MpiRuntime, MPI};

/// Figure 3, classic surface — a line-by-line transliteration of the
/// paper's Java.
fn hello_classic(mpi: &MPI) -> MpiResult<()> {
    let world = mpi.comm_world();
    let myrank = world.rank()?;

    if myrank == 0 {
        // char [] message = "Hello, there".toCharArray();
        let message: Vec<u16> = "Hello, there".encode_utf16().collect();
        // MPI.COMM_WORLD.Send(message, 0, message.length, MPI.CHAR, 1, 99);
        world.send(&message, 0, message.len(), &Datatype::char(), 1, 99)?;
        println!("classic   rank 0: sent {} chars", message.len());
    } else if myrank == 1 {
        // char [] message = new char[20];
        let mut message = vec![0u16; 20];
        // MPI.COMM_WORLD.Recv(message, 0, 20, MPI.CHAR, 0, 99);
        let status = world.recv(&mut message, 0, 20, &Datatype::char(), 0, 99)?;
        let received = status.get_count(&Datatype::char()).unwrap_or(0);
        println!(
            "classic   received:{}:",
            String::from_utf16_lossy(&message[..received])
        );
    }

    mpi.finalize()
}

/// The same program, idiomatic surface. The migration, line by line:
///
/// | classic | idiomatic |
/// |---|---|
/// | `world.send(&message, 0, message.len(), &Datatype::char(), 1, 99)` | `world.send(&message[..], 1, 99)` |
/// | `world.recv(&mut message, 0, 20, &Datatype::char(), 0, 99)` | `world.recv_into(&mut message, 0, 99)` |
/// | `status.get_count(&Datatype::char())` | `status.count_elements::<u16>()` |
///
/// The offset/count pair became the slice itself, and `MPI.CHAR` is
/// inferred from the `u16` element type — there is nothing left to get
/// wrong.
fn hello_idiomatic(mpi: &MPI) -> MpiResult<()> {
    use mpijava::rs::Communicator;

    let world = mpi.comm_world();
    let myrank = world.rank()?;

    if myrank == 0 {
        let message: Vec<u16> = "Hello, there".encode_utf16().collect();
        world.send(&message[..], 1, 99)?;
        println!("idiomatic rank 0: sent {} chars", message.len());
    } else if myrank == 1 {
        let mut message = vec![0u16; 20];
        let status = world.recv_into(&mut message, 0, 99)?;
        let received = status.count_elements::<u16>().unwrap_or(0);
        println!(
            "idiomatic received:{}:",
            String::from_utf16_lossy(&message[..received])
        );
    }

    mpi.finalize()
}

fn main() {
    // MPI.Init(args) + mpirun -np 2: the runtime starts both ranks.
    MpiRuntime::new(2)
        .run(hello_classic)
        .expect("classic hello");
    MpiRuntime::new(2)
        .run(hello_idiomatic)
        .expect("idiomatic hello");
}
