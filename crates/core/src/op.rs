//! The `Op` class: predefined reduction operations and user functions
//! (mpiJava `MPI.MAX`, `MPI.SUM`, ..., and `Op(User_function, commute)`).

use std::sync::Arc;

use mpi_native::{Op as EngineOp, PredefinedOp, PrimitiveKind};

use crate::exception::MpiResult;

/// A reduction operation usable with `Reduce`, `Allreduce`,
/// `Reduce_scatter` and `Scan`.
#[derive(Debug, Clone)]
pub struct Op {
    inner: EngineOp,
    commutative: bool,
    name: &'static str,
}

impl Op {
    fn predefined(op: PredefinedOp, name: &'static str) -> Op {
        Op {
            inner: EngineOp::Predefined(op),
            commutative: true,
            name,
        }
    }

    /// `MPI.MAX`
    pub fn max() -> Op {
        Op::predefined(PredefinedOp::Max, "MPI.MAX")
    }
    /// `MPI.MIN`
    pub fn min() -> Op {
        Op::predefined(PredefinedOp::Min, "MPI.MIN")
    }
    /// `MPI.SUM`
    pub fn sum() -> Op {
        Op::predefined(PredefinedOp::Sum, "MPI.SUM")
    }
    /// `MPI.PROD`
    pub fn prod() -> Op {
        Op::predefined(PredefinedOp::Prod, "MPI.PROD")
    }
    /// `MPI.LAND`
    pub fn land() -> Op {
        Op::predefined(PredefinedOp::Land, "MPI.LAND")
    }
    /// `MPI.BAND`
    pub fn band() -> Op {
        Op::predefined(PredefinedOp::Band, "MPI.BAND")
    }
    /// `MPI.LOR`
    pub fn lor() -> Op {
        Op::predefined(PredefinedOp::Lor, "MPI.LOR")
    }
    /// `MPI.BOR`
    pub fn bor() -> Op {
        Op::predefined(PredefinedOp::Bor, "MPI.BOR")
    }
    /// `MPI.LXOR`
    pub fn lxor() -> Op {
        Op::predefined(PredefinedOp::Lxor, "MPI.LXOR")
    }
    /// `MPI.BXOR`
    pub fn bxor() -> Op {
        Op::predefined(PredefinedOp::Bxor, "MPI.BXOR")
    }
    /// `MPI.MAXLOC` (use with the pair datatypes `MPI.INT2`, `MPI.DOUBLE2`, ...)
    pub fn maxloc() -> Op {
        Op::predefined(PredefinedOp::Maxloc, "MPI.MAXLOC")
    }
    /// `MPI.MINLOC`
    pub fn minloc() -> Op {
        Op::predefined(PredefinedOp::Minloc, "MPI.MINLOC")
    }

    /// `new Op(User_function, commute)`: a user-defined reduction.
    ///
    /// The function receives `(incoming, accumulator, kind, count)` and
    /// folds the incoming vector into the accumulator. The engine always
    /// applies contributions in rank order, so non-commutative functions
    /// are deterministic.
    pub fn user<F>(function: F, commutative: bool) -> Op
    where
        F: Fn(&[u8], &mut [u8], PrimitiveKind, usize) -> mpi_native::Result<()>
            + Send
            + Sync
            + 'static,
    {
        Op {
            inner: EngineOp::User(Arc::new(function)),
            commutative,
            name: "user-defined",
        }
    }

    /// Whether the operation was declared commutative.
    pub fn is_commutative(&self) -> bool {
        self.commutative
    }

    /// Display name (`MPI.SUM`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn engine_op(&self) -> &EngineOp {
        &self.inner
    }

    /// Apply the operation locally (used by tests and by `Reduce_local`-style
    /// helpers).
    pub fn apply_local(
        &self,
        incoming: &[u8],
        accumulator: &mut [u8],
        kind: PrimitiveKind,
        count: usize,
    ) -> MpiResult<()> {
        self.inner
            .apply(incoming, accumulator, kind, count)
            .map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_ops_have_names_and_commutativity() {
        assert_eq!(Op::sum().name(), "MPI.SUM");
        assert!(Op::sum().is_commutative());
        assert_eq!(Op::maxloc().name(), "MPI.MAXLOC");
    }

    #[test]
    fn apply_local_sums_ints() {
        let a: Vec<u8> = [1i32, 2].iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut acc: Vec<u8> = [10i32, 20].iter().flat_map(|v| v.to_le_bytes()).collect();
        Op::sum()
            .apply_local(&a, &mut acc, PrimitiveKind::Int, 2)
            .unwrap();
        let out: Vec<i32> = acc
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn user_op_is_usable_and_non_commutative() {
        let op = Op::user(
            |incoming, acc, _kind, count| {
                for i in 0..count {
                    acc[i] = acc[i].wrapping_sub(incoming[i]);
                }
                Ok(())
            },
            false,
        );
        assert!(!op.is_commutative());
        let mut acc = vec![10u8, 10];
        op.apply_local(&[3u8, 4], &mut acc, PrimitiveKind::Byte, 2)
            .unwrap();
        assert_eq!(acc, vec![7, 6]);
    }
}
