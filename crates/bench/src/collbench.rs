//! Collective benchmark harness with machine-readable output: measures
//! op × device × algorithm × payload → microseconds per call and emits
//! `BENCH_collectives.json` so the performance trajectory of the
//! collective subsystem is tracked across PRs.
//!
//! Every measurement runs through the `mpijava` wrapper (the paper's
//! stack), with the engine's collective algorithm either left to the
//! tuned selector (`"auto"`) or pinned per run via
//! [`MpiRuntime::coll_algorithm`]. The reduction payload is `MPI.INT`
//! with `MPI.SUM`, whose order policy admits every algorithm, so the
//! `linear` / `tree` / `rd` / `ring` / `pipelined` rows are directly
//! comparable. Cells whose pinned algorithm cannot implement the
//! operation (ring has no bcast, recursive doubling needs a power-of-two
//! communicator, pipelined is bcast-only, …) are *skipped* rather than
//! silently measuring the tuned fallback under a wrong label — every
//! emitted row measures exactly the algorithm it names. The
//! `pipelined`-vs-`tree` bcast cells at large payloads are the headline
//! of the segmented-transfer work: interior tree ranks forward segment
//! *k* while receiving *k+1*, so the pipelined rows pull ahead once the
//! payload spans several segments.
//!
//! ## The modelled link
//!
//! By default the sweep attaches a [`DeviceProfile`] charging
//! [`LINK_NS_PER_BYTE`] per payload byte plus [`LINK_PER_MESSAGE_US`] per
//! frame on the send path — a ~256 MB/s link. The charge occupies
//! the modelled *link*, not the CPU (it yields while waiting), so
//! transfers on different rank pairs overlap in wall time exactly as
//! independent links do. This matters because collective algorithm choice
//! is about link-level concurrency: on a CI container with fewer cores
//! than ranks, raw wall clock degenerates to total-bytes-moved (identical
//! across algorithms) and measures only scheduler noise. The structural
//! no-cost mode is still available via [`CollBenchSpec::link`] =
//! [`DeviceProfile::free`] (the `raw` flag of the `collectives` binary);
//! the applied per-byte cost is recorded in every JSON record.

use std::time::{Duration, Instant};

use mpijava::{
    CollAlgorithm, Datatype, DeviceKind, DeviceProfile, MpiRuntime, NetworkModel, NodeMap, Op,
    ProgressMode, TraceConfig, TraceMode,
};

/// Modelled link cost per payload byte (4 ns/B ≈ a 256 MB/s link — the
/// bandwidth regime of the paper's SM-mode curves, scaled up a decade).
pub const LINK_NS_PER_BYTE: f64 = 4.0;
/// Modelled fixed cost per frame (microseconds).
pub const LINK_PER_MESSAGE_US: u64 = 1;

/// The default modelled link (see the module docs).
pub fn modelled_link() -> DeviceProfile {
    DeviceProfile {
        per_message_cost: std::time::Duration::from_micros(LINK_PER_MESSAGE_US),
        per_byte_cost_ns: LINK_NS_PER_BYTE,
    }
}

/// The same ~256 MB/s link as [`modelled_link`], expressed as a
/// [`NetworkModel`] (frames held until their due instant) instead of a
/// [`DeviceProfile`] (busy-wait on the send path). The distinction is
/// what the overlap cells exist to measure: a `DeviceProfile` charge
/// occupies the *sending thread*, so no amount of nonblocking API can
/// hide it behind compute; the `NetworkModel` charge occupies the
/// *link* — the sender returns immediately and the payload arrives
/// `latency + bytes/bandwidth` later — which is how real interconnect
/// hardware behaves and what communication/computation overlap can
/// actually hide.
pub fn modelled_overlap_link() -> NetworkModel {
    NetworkModel::new(
        Duration::from_micros(LINK_PER_MESSAGE_US),
        1e9 / LINK_NS_PER_BYTE,
    )
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CollRecord {
    /// Collective name: `barrier`, `bcast`, `allreduce`, `allgather`.
    pub op: String,
    /// Device label (`shm-fast`, `shm-p4`, `tcp`).
    pub device: String,
    /// Algorithm label (`auto` for the tuned selector).
    pub algorithm: String,
    /// Total payload bytes of the collective (0 for barrier).
    pub payload_bytes: usize,
    /// Communicator size.
    pub ranks: usize,
    /// Wall microseconds per collective call (rank 0, steady state).
    pub us_per_op: f64,
    /// Modelled link cost applied during the run (0 = raw wall clock).
    pub link_ns_per_byte: f64,
    /// Observability mode pinned during the run (`off`, `counters`,
    /// `events`) — the trace-overhead axis.
    pub trace_mode: String,
}

/// One measured cell of the communication/computation overlap bench:
/// how much of an `iallreduce`'s communication time the rank can hide
/// behind injected compute. Under [`ProgressMode::Manual`] the
/// collective is progressed by periodic `test()` calls (progress
/// happens inside `test`/`wait`, the default model); under
/// [`ProgressMode::Thread`] the background progress thread drives the
/// schedule and the compute loop makes **zero** manual `test()` calls.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapRecord {
    /// Device label (`shm-fast`, ...).
    pub device: String,
    /// Algorithm label (`auto` for the tuned selector).
    pub algorithm: String,
    /// Progress mode label (`manual` or `thread`).
    pub progress: String,
    /// Manual `test()` calls issued per overlapped operation (0 under
    /// the progress thread — that is the cell's point).
    pub manual_tests_per_op: u64,
    /// Total payload bytes of the allreduce.
    pub payload_bytes: usize,
    /// Communicator size.
    pub ranks: usize,
    /// Blocking `allreduce` wall time (µs, rank 0 mean).
    pub comm_us: f64,
    /// Injected compute alone (µs).
    pub compute_us: f64,
    /// `iallreduce` + chunked compute + `wait` wall time (µs).
    pub overlapped_us: f64,
    /// Fraction of the communication time hidden behind the compute:
    /// `(comm + compute - overlapped) / comm`, clamped to [0, 1].
    pub overlap_ratio: f64,
    /// Modelled link bandwidth applied during the run (bytes/s).
    pub link_bytes_per_sec: f64,
}

/// Measure one overlap cell (see [`OverlapRecord`]). The collective runs
/// over the due-time [`modelled_overlap_link`]; the injected compute is
/// a thread sleep (the thread is genuinely unavailable for MPI progress,
/// which is the property that matters, and it stays robust on
/// oversubscribed CI machines). The compute is sized at ~1.5× the
/// measured blocking communication time and split into ~24 chunks; under
/// [`ProgressMode::Manual`] a `test()` call runs between chunks, under
/// [`ProgressMode::Thread`] the chunks are pure sleep — zero manual
/// progress calls, the background thread does all of it.
pub fn measure_overlap(
    device: DeviceKind,
    alg: Option<CollAlgorithm>,
    ranks: usize,
    payload_bytes: usize,
    reps: usize,
    progress: ProgressMode,
) -> OverlapRecord {
    let link = modelled_overlap_link();
    let mut runtime = MpiRuntime::new(ranks)
        .device(device)
        .network(link)
        .eager_threshold(1 << 22)
        .progress(progress);
    if let Some(alg) = alg {
        runtime = runtime.coll_algorithm(alg);
    }
    let per_rank = runtime
        .run(move |mpi| {
            use mpijava::rs::Communicator as _;
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let count = (payload_bytes / 4).max(1);
            let send: Vec<i32> = (0..count as i32)
                .map(|i| i.wrapping_mul(rank as i32 + 1))
                .collect();
            let mut recv = vec![0i32; count];

            // Warm up once, then measure the full
            // (comm, compute, overlapped) triple in three independent
            // rounds and keep the round that hid the most — the same
            // best-of-N discipline the latency cells use, applied to
            // the whole triple at once so the three phases of the
            // winning round share one scheduling regime instead of
            // being cherry-picked from different ones.
            world.all_reduce(&send, &mut recv, Op::sum())?;
            let mut best: Option<(f64, f64, f64)> = None;
            for _ in 0..3 {
                // Blocking communication time.
                world.barrier()?;
                let start = Instant::now();
                for _ in 0..reps {
                    world.all_reduce(&send, &mut recv, Op::sum())?;
                }
                world.barrier()?;
                let comm_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

                // Inject ~1.5x that much compute. In manual mode it is
                // split into chunks with a test() between them so the
                // schedule advances while "computing"; under the
                // progress thread the compute is one solid block — no
                // progress calls, no artificial chunking — which is
                // exactly the usage the mode exists for. The compute
                // time is *measured*, not assumed: OS sleep granularity
                // overshoots short chunks, and the overlap arithmetic
                // needs the real injected duration.
                let chunks = if progress == ProgressMode::Manual {
                    24usize
                } else {
                    1usize
                };
                let chunk = Duration::from_secs_f64(comm_us * 1.5 / chunks as f64 / 1e6);
                world.barrier()?;
                let start = Instant::now();
                for _ in 0..reps {
                    for _ in 0..chunks {
                        std::thread::sleep(chunk);
                    }
                }
                // Close with a barrier exactly like the other two
                // phases do, so the barrier's cost cancels out of
                // `overlapped - compute` instead of being billed as
                // unhidden communication.
                world.barrier()?;
                let compute_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

                world.barrier()?;
                let start = Instant::now();
                for _ in 0..reps {
                    let mut req = world.iall_reduce(&send, &mut recv, Op::sum())?;
                    for _ in 0..chunks {
                        std::thread::sleep(chunk); // the injected compute
                        if progress == ProgressMode::Manual {
                            let _ = req.test()?; // progress the schedule
                        }
                    }
                    req.wait()?;
                }
                world.barrier()?;
                let overlapped_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;

                let hidden = |(c, k, o): (f64, f64, f64)| ((c + k - o) / c).clamp(0.0, 1.0);
                let round = (comm_us, compute_us, overlapped_us);
                if best.is_none_or(|b| hidden(round) > hidden(b)) {
                    best = Some(round);
                }
            }
            Ok(best.expect("at least one overlap round"))
        })
        .expect("overlap bench run");
    let (comm_us, compute_us, overlapped_us) = per_rank[0];
    let hidden = (comm_us + compute_us - overlapped_us).max(0.0);
    OverlapRecord {
        device: device.label().to_string(),
        algorithm: algorithm_label(alg),
        progress: progress.to_string(),
        manual_tests_per_op: if progress == ProgressMode::Manual {
            24
        } else {
            0
        },
        payload_bytes,
        ranks,
        comm_us,
        compute_us,
        overlapped_us,
        overlap_ratio: (hidden / comm_us).clamp(0.0, 1.0),
        link_bytes_per_sec: 1e9 / LINK_NS_PER_BYTE,
    }
}

/// One measured cell of the persistent-collective bench: per-call
/// latency of a persistent allreduce (`all_reduce_init` once, then
/// `start()`/`wait()` per call over the cached schedule template)
/// against its transient twin (`all_reduce` per call, which re-enters
/// argument validation, algorithm dispatch, and the schedule-cache
/// lookup every time). Raw wall clock, no modelled link — the cell
/// exists to expose exactly the per-call software overhead the
/// persistent path amortizes, which a modelled link charge would
/// drown.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistentRecord {
    /// Device label (`shm-fast`, ...).
    pub device: String,
    /// Total payload bytes of the allreduce.
    pub payload_bytes: usize,
    /// Communicator size.
    pub ranks: usize,
    /// Transient `all_reduce` wall microseconds per call (rank 0, best
    /// of three windows).
    pub transient_us: f64,
    /// Persistent `start()`+`wait()` wall microseconds per call.
    pub persistent_us: f64,
    /// `transient_us / persistent_us` (>1 = persistent faster).
    pub speedup: f64,
}

/// Measure one persistent-vs-transient allreduce cell (see
/// [`PersistentRecord`]). Both paths are warmed first so the schedule
/// cache and staging pools are in steady state; each is then timed as
/// the best of three barrier-fenced windows of `reps` calls.
pub fn measure_persistent(
    device: DeviceKind,
    ranks: usize,
    payload_bytes: usize,
    reps: usize,
    warmup: usize,
) -> PersistentRecord {
    let runtime = MpiRuntime::new(ranks)
        .device(device)
        .eager_threshold(1 << 20);
    let per_rank = runtime
        .run(move |mpi| {
            use mpijava::rs::Communicator as _;
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let count = (payload_bytes / 4).max(1);
            let send: Vec<i32> = (0..count as i32)
                .map(|i| i.wrapping_mul(rank as i32 + 1))
                .collect();
            let mut recv = vec![0i32; count];

            for _ in 0..warmup {
                world.all_reduce(&send, &mut recv, Op::sum())?;
            }
            let mut transient_us = f64::INFINITY;
            let mut persistent_us = f64::INFINITY;
            {
                // The persistent handle owns its receive borrow for
                // its whole lifetime, so the transient side keeps its
                // own buffer.
                let mut precv = vec![0i32; count];
                let mut req = world.all_reduce_init(&send, &mut precv, Op::sum())?;
                for _ in 0..warmup {
                    req.start()?;
                    req.wait()?;
                }
                // Interleave the windows (transient, persistent,
                // transient, ...) rather than running one side's three
                // windows back to back: any slow phase of the host —
                // frequency drift, a background task — then lands on
                // both sides instead of silently biasing whichever ran
                // through it.
                for _ in 0..3 {
                    world.barrier()?;
                    let start = Instant::now();
                    for _ in 0..reps {
                        world.all_reduce(&send, &mut recv, Op::sum())?;
                    }
                    world.barrier()?;
                    transient_us =
                        transient_us.min(start.elapsed().as_secs_f64() * 1e6 / reps as f64);

                    world.barrier()?;
                    let start = Instant::now();
                    for _ in 0..reps {
                        req.start()?;
                        req.wait()?;
                    }
                    world.barrier()?;
                    persistent_us =
                        persistent_us.min(start.elapsed().as_secs_f64() * 1e6 / reps as f64);
                }
                req.free()?;
            }
            Ok((transient_us, persistent_us))
        })
        .expect("persistent bench run");
    let (transient_us, persistent_us) = per_rank[0];
    PersistentRecord {
        device: device.label().to_string(),
        payload_bytes,
        ranks,
        transient_us,
        persistent_us,
        speedup: transient_us / persistent_us,
    }
}

/// Sweep specification.
#[derive(Debug, Clone)]
pub struct CollBenchSpec {
    pub ranks: usize,
    pub devices: Vec<DeviceKind>,
    /// `None` = the tuned selector (`auto`); `Some(alg)` pins one.
    pub algorithms: Vec<Option<CollAlgorithm>>,
    pub payloads: Vec<usize>,
    pub reps: usize,
    pub warmup: usize,
    /// Synthetic link model charged per frame ([`modelled_link`] by
    /// default; [`DeviceProfile::free`] for raw wall clock).
    pub link: DeviceProfile,
    /// Observability modes for the `trace_mode` axis: the tuned
    /// allreduce re-measured under each mode at one representative
    /// payload (the main sweep itself is pinned to `off`). Empty
    /// disables the axis.
    pub trace_modes: Vec<TraceMode>,
}

impl Default for CollBenchSpec {
    fn default() -> CollBenchSpec {
        CollBenchSpec {
            ranks: 8,
            devices: vec![DeviceKind::ShmFast, DeviceKind::ShmP4, DeviceKind::Tcp],
            algorithms: vec![
                None,
                Some(CollAlgorithm::Linear),
                Some(CollAlgorithm::BinomialTree),
                Some(CollAlgorithm::RecursiveDoubling),
                Some(CollAlgorithm::Ring),
                Some(CollAlgorithm::Pipelined),
            ],
            payloads: vec![1024, 64 * 1024, 256 * 1024],
            reps: 10,
            warmup: 3,
            link: modelled_link(),
            trace_modes: vec![TraceMode::Off, TraceMode::Counters, TraceMode::Events],
        }
    }
}

/// The collectives the sweep covers.
pub const COLL_OPS: [&str; 4] = ["barrier", "bcast", "allreduce", "allgather"];

fn algorithm_label(alg: Option<CollAlgorithm>) -> String {
    alg.map_or_else(|| "auto".to_string(), |a| a.label().to_string())
}

/// Measure one (op, device, algorithm, payload) cell: microseconds per
/// call, best of three timed windows, each opened *and closed* by a
/// barrier so the clock covers the whole collective completing on every
/// rank (not just the measuring rank's local part).
///
/// The eager threshold is raised above every swept payload: collective
/// schedules post their receives before the matching sends, so the
/// rendezvous handshake would be pure per-hop overhead here, and real
/// MPI implementations use separate (higher) protocol switch-over points
/// for collectives for exactly that reason.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    op: &'static str,
    device: DeviceKind,
    alg: Option<CollAlgorithm>,
    ranks: usize,
    payload_bytes: usize,
    reps: usize,
    warmup: usize,
    link: DeviceProfile,
    trace: TraceConfig,
) -> f64 {
    // Pinned per cell so an ambient MPIJAVA_TRACE cannot relabel a row
    // (same rule as the algorithm axis: every row measures what it
    // names).
    let mut runtime = MpiRuntime::new(ranks)
        .device(device)
        .profile(link)
        .eager_threshold(1 << 20)
        .trace(trace);
    if let Some(alg) = alg {
        runtime = runtime.coll_algorithm(alg);
    }
    measure_runtime(runtime, op, payload_bytes, reps, warmup)
}

/// [`measure`] against a fully-built runtime — also the entry point for
/// the hybrid-fabric (`hier`-vs-flat) cells, whose runtimes carry a node
/// map and an inter-node link model rather than a flat device profile.
pub fn measure_runtime(
    runtime: MpiRuntime,
    op: &'static str,
    payload_bytes: usize,
    reps: usize,
    warmup: usize,
) -> f64 {
    let per_rank = runtime
        .run(move |mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let size = world.size()?;
            let count = (payload_bytes / 4).max(1);
            let send: Vec<i32> = (0..count as i32)
                .map(|i| i.wrapping_mul(rank as i32 + 1))
                .collect();
            let mut recv = vec![0i32; count];
            let mut bytes = vec![rank as u8; payload_bytes.max(1)];
            let contrib_count = (count / size).max(1);
            let contrib = vec![rank as i32; contrib_count];
            let mut gathered = vec![0i32; contrib_count * size];
            let mut run_once = || -> mpijava::MpiResult<()> {
                match op {
                    "barrier" => world.barrier(),
                    "bcast" => {
                        let len = bytes.len();
                        world.bcast(&mut bytes, 0, len, &Datatype::byte(), 0)
                    }
                    "allreduce" => {
                        world.allreduce(&send, 0, &mut recv, 0, count, &Datatype::int(), &Op::sum())
                    }
                    "allgather" => world.allgather(
                        &contrib,
                        0,
                        contrib_count,
                        &Datatype::int(),
                        &mut gathered,
                        0,
                        contrib_count,
                        &Datatype::int(),
                    ),
                    other => panic!("unknown collective {other}"),
                }
            };
            for _ in 0..warmup {
                run_once()?;
            }
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                world.barrier()?;
                let start = Instant::now();
                for _ in 0..reps {
                    run_once()?;
                }
                world.barrier()?;
                best = best.min(start.elapsed().as_secs_f64() * 1e6 / reps as f64);
            }
            Ok(best)
        })
        .expect("collective bench run");
    per_rank[0]
}

/// Can a pinned algorithm implement a benched op on `ranks` ranks at
/// all? (The benched workloads — byte bcast, `MPI.INT` + `MPI.SUM`
/// reductions — all carry the `Any` order policy, so only the op/size
/// and topology axes matter.) `hierarchical` describes the fabric the
/// cell runs over (`true` for the hybrid hier-vs-flat cells). Mirrors
/// the engine's own applicability rules; cells that fail this are
/// skipped so no row mislabels a fallback run.
pub fn algorithm_applies(
    alg: Option<CollAlgorithm>,
    op: &str,
    ranks: usize,
    hierarchical: bool,
) -> bool {
    use mpi_native::coll::tuning::{supported, CollOp, OrderPolicy, TopoHint};
    let Some(alg) = alg else {
        return true; // "auto" always applies
    };
    let coll_op = match op {
        "barrier" => CollOp::Barrier,
        "bcast" => CollOp::Bcast,
        "allreduce" => CollOp::Allreduce,
        "allgather" => CollOp::Allgather,
        other => panic!("unknown collective {other}"),
    };
    let topo = TopoHint {
        hierarchical,
        contiguous: true,
    };
    supported(alg, coll_op, ranks, OrderPolicy::Any, topo)
}

/// The modelled inter-node link of the hybrid cells: the due-time
/// gigabit model (125 MB/s, 30 µs one-way latency). Deliberately slower
/// than the ~256 MB/s intra-fabric model — an inter-node link *is* the
/// slow resource, and making it genuinely slower than the memcpy-bound
/// intra-node floor is what lets the cells resolve the quantity the
/// hierarchical algorithms optimize: inter-node traversals per byte.
pub fn modelled_internode_link() -> NetworkModel {
    NetworkModel::gigabit()
}

/// Specification of the hybrid-fabric `hier`-vs-flat sweep: for each
/// node count, `ranks` are block-placed onto that many nodes, intra-node
/// traffic is free (shm-class) and inter-node traffic crosses the
/// due-time [`modelled_internode_link`] — so the numbers isolate exactly
/// the quantity the hierarchical algorithms optimize, inter-node
/// traversals per byte.
#[derive(Debug, Clone)]
pub struct HierBenchSpec {
    pub ranks: usize,
    /// Node counts to sweep (ranks block-split across each).
    pub node_counts: Vec<usize>,
    /// `None` = tuned (`auto`, which picks hier on these fabrics);
    /// pinned algorithms for the flat baselines.
    pub algorithms: Vec<Option<CollAlgorithm>>,
    pub ops: Vec<&'static str>,
    pub payloads: Vec<usize>,
    pub reps: usize,
    pub warmup: usize,
}

impl Default for HierBenchSpec {
    fn default() -> HierBenchSpec {
        HierBenchSpec {
            ranks: 8,
            node_counts: vec![2, 4],
            algorithms: vec![
                None,
                Some(CollAlgorithm::Hierarchical),
                Some(CollAlgorithm::BinomialTree),
                Some(CollAlgorithm::Linear),
            ],
            ops: vec!["allreduce", "bcast"],
            payloads: vec![1024, 64 * 1024, 256 * 1024, 1024 * 1024],
            reps: 5,
            warmup: 2,
        }
    }
}

/// Run the hybrid-fabric sweep. Cells are labelled
/// `device = "hybrid-<nodes>n"` so the flat rows of the main sweep and
/// the hierarchical rows stay distinguishable in one `cells` array;
/// `link_ns_per_byte` records the *inter-node* link cost (intra-node is
/// free).
/// One cell of the hybrid-fabric sweep: `ranks` block-placed on
/// `nodes` nodes, free intra-node fabric, gigabit due-time inter-node
/// link (see [`HierBenchSpec`]). Exposed separately so a gate can
/// re-measure a single pair in fresh processes when a first sample
/// lands badly on a loaded host.
pub fn measure_hier_cell(
    ranks: usize,
    nodes: usize,
    alg: Option<CollAlgorithm>,
    op: &'static str,
    payload: usize,
    reps: usize,
    warmup: usize,
) -> f64 {
    let mut runtime = MpiRuntime::new(ranks)
        .device(DeviceKind::Hybrid)
        .nodes(NodeMap::split(ranks, nodes))
        .inter_network(modelled_internode_link())
        .eager_threshold(1 << 22);
    if let Some(alg) = alg {
        runtime = runtime.coll_algorithm(alg);
    }
    measure_runtime(runtime, op, payload, reps, warmup)
}

pub fn run_hier_suite(
    spec: &HierBenchSpec,
    mut progress: impl FnMut(&CollRecord),
) -> Vec<CollRecord> {
    let mut records = Vec::new();
    // The algorithm axis is the *innermost* loop so the cells a gate
    // compares (hier vs the flat tree at one payload) run back to back
    // under the same host conditions — spreading them across the sweep
    // lets load drift masquerade as an algorithmic difference.
    for &nodes in &spec.node_counts {
        let device_label = format!("hybrid-{nodes}n");
        for op in spec.ops.iter().copied() {
            for &payload in &spec.payloads {
                for &alg in &spec.algorithms {
                    if !algorithm_applies(alg, op, spec.ranks, true) {
                        continue;
                    }
                    let us = measure_hier_cell(
                        spec.ranks,
                        nodes,
                        alg,
                        op,
                        payload,
                        spec.reps,
                        spec.warmup,
                    );
                    let record = CollRecord {
                        op: op.to_string(),
                        device: device_label.clone(),
                        algorithm: algorithm_label(alg),
                        payload_bytes: payload,
                        ranks: spec.ranks,
                        us_per_op: us,
                        link_ns_per_byte: 1e9 / modelled_internode_link().peak_bandwidth(),
                        trace_mode: TraceMode::Off.label().to_string(),
                    };
                    progress(&record);
                    records.push(record);
                }
            }
        }
    }
    records
}

/// Run the full sweep. `progress` is called once per finished cell (the
/// binary uses it for a live log; pass `|_| ()` to stay quiet).
pub fn run_suite(spec: &CollBenchSpec, mut progress: impl FnMut(&CollRecord)) -> Vec<CollRecord> {
    let mut records = Vec::new();
    for &device in &spec.devices {
        for &alg in &spec.algorithms {
            for op in COLL_OPS {
                if !algorithm_applies(alg, op, spec.ranks, false) {
                    continue;
                }
                // Barrier has no payload axis; measure it once.
                let payloads: &[usize] = if op == "barrier" {
                    &[0]
                } else {
                    &spec.payloads
                };
                for &payload in payloads {
                    let us = measure(
                        op,
                        device,
                        alg,
                        spec.ranks,
                        payload,
                        spec.reps,
                        spec.warmup,
                        spec.link,
                        TraceConfig::off(),
                    );
                    let record = CollRecord {
                        op: op.to_string(),
                        device: device.label().to_string(),
                        algorithm: algorithm_label(alg),
                        payload_bytes: payload,
                        ranks: spec.ranks,
                        us_per_op: us,
                        link_ns_per_byte: spec.link.per_byte_cost_ns,
                        trace_mode: TraceMode::Off.label().to_string(),
                    };
                    progress(&record);
                    records.push(record);
                }
            }
        }
    }
    // The trace_mode axis: the tuned allreduce at one representative
    // payload, re-measured under each observability mode (including a
    // fresh `off` cell so all three share one host regime).
    if !spec.trace_modes.is_empty() {
        let device = spec.devices[0];
        let payload = spec.payloads[spec.payloads.len() / 2];
        for &mode in &spec.trace_modes {
            let trace = TraceConfig {
                mode,
                ..TraceConfig::default()
            };
            let us = measure(
                "allreduce",
                device,
                None,
                spec.ranks,
                payload,
                spec.reps,
                spec.warmup,
                spec.link,
                trace,
            );
            let record = CollRecord {
                op: "allreduce".to_string(),
                device: device.label().to_string(),
                algorithm: algorithm_label(None),
                payload_bytes: payload,
                ranks: spec.ranks,
                us_per_op: us,
                link_ns_per_byte: spec.link.per_byte_cost_ns,
                trace_mode: mode.label().to_string(),
            };
            progress(&record);
            records.push(record);
        }
    }
    records
}

/// Serialize the sweep as a JSON object `{"cells": [...], "overlap":
/// [...], "persistent": [...]}` (all field values are plain numbers or
/// label strings, so no escaping is required). The `cells` array
/// carries the blocking latency sweep; `overlap` carries the
/// `icollectives` communication/computation overlap cells (one row per
/// progress mode); `persistent` carries the persistent-vs-transient
/// allreduce latency cells.
pub fn to_json(
    records: &[CollRecord],
    overlap: &[OverlapRecord],
    persistent: &[PersistentRecord],
) -> String {
    let mut out = String::from("{\n\"cells\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"op\": \"{}\", \"device\": \"{}\", \"algorithm\": \"{}\", \
             \"payload_bytes\": {}, \"ranks\": {}, \"us_per_op\": {:.3}, \
             \"link_ns_per_byte\": {}, \"trace_mode\": \"{}\"}}{}\n",
            r.op,
            r.device,
            r.algorithm,
            r.payload_bytes,
            r.ranks,
            r.us_per_op,
            r.link_ns_per_byte,
            r.trace_mode,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("],\n\"overlap\": [\n");
    for (i, r) in overlap.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"op\": \"iallreduce\", \"device\": \"{}\", \"algorithm\": \"{}\", \
             \"progress\": \"{}\", \"manual_tests_per_op\": {}, \
             \"payload_bytes\": {}, \"ranks\": {}, \"comm_us\": {:.3}, \
             \"compute_us\": {:.3}, \"overlapped_us\": {:.3}, \
             \"overlap_ratio\": {:.3}, \"link_bytes_per_sec\": {}}}{}\n",
            r.device,
            r.algorithm,
            r.progress,
            r.manual_tests_per_op,
            r.payload_bytes,
            r.ranks,
            r.comm_us,
            r.compute_us,
            r.overlapped_us,
            r.overlap_ratio,
            r.link_bytes_per_sec,
            if i + 1 < overlap.len() { "," } else { "" }
        ));
    }
    out.push_str("],\n\"persistent\": [\n");
    for (i, r) in persistent.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"op\": \"allreduce\", \"device\": \"{}\", \"payload_bytes\": {}, \
             \"ranks\": {}, \"transient_us\": {:.3}, \"persistent_us\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            r.device,
            r.payload_bytes,
            r.ranks,
            r.transient_us,
            r.persistent_us,
            r.speedup,
            if i + 1 < persistent.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n}");
    out
}

/// Aligned text table of the records (one row per cell), for humans.
pub fn format_table(records: &[CollRecord]) -> String {
    let mut out = format!(
        "{:>10} {:>9} {:>7} {:>10} {:>6} {:>12}\n",
        "op", "device", "alg", "bytes", "ranks", "us/op"
    );
    for r in records {
        out.push_str(&format!(
            "{:>10} {:>9} {:>7} {:>10} {:>6} {:>12.2}\n",
            r.op, r.device, r.algorithm, r.payload_bytes, r.ranks, r.us_per_op
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let records = vec![
            CollRecord {
                op: "bcast".into(),
                device: "shm-fast".into(),
                algorithm: "tree".into(),
                payload_bytes: 65536,
                ranks: 8,
                us_per_op: 12.345,
                link_ns_per_byte: 1.0,
                trace_mode: "off".into(),
            },
            CollRecord {
                op: "barrier".into(),
                device: "tcp".into(),
                algorithm: "auto".into(),
                payload_bytes: 0,
                ranks: 8,
                us_per_op: 3.0,
                link_ns_per_byte: 0.0,
                trace_mode: "counters".into(),
            },
        ];
        let overlap = vec![OverlapRecord {
            device: "shm-fast".into(),
            algorithm: "auto".into(),
            progress: "thread".into(),
            manual_tests_per_op: 0,
            payload_bytes: 262144,
            ranks: 8,
            comm_us: 2000.0,
            compute_us: 3000.0,
            overlapped_us: 3200.0,
            overlap_ratio: 0.9,
            link_bytes_per_sec: 250e6,
        }];
        let persistent = vec![PersistentRecord {
            device: "shm-fast".into(),
            payload_bytes: 1024,
            ranks: 8,
            transient_us: 10.0,
            persistent_us: 8.0,
            speedup: 1.25,
        }];
        let json = to_json(&records, &overlap, &persistent);
        assert!(json.starts_with("{\n\"cells\": [\n"));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"op\": \"bcast\""));
        assert!(json.contains("\"algorithm\": \"tree\""));
        assert!(json.contains("\"payload_bytes\": 65536"));
        assert!(json.contains("\"us_per_op\": 12.345"));
        assert!(json.contains("\"link_ns_per_byte\": 1"));
        assert!(json.contains("\"trace_mode\": \"counters\""));
        assert!(json.contains("\"overlap\": ["));
        assert!(json.contains("\"op\": \"iallreduce\""));
        assert!(json.contains("\"progress\": \"thread\""));
        assert!(json.contains("\"manual_tests_per_op\": 0"));
        assert!(json.contains("\"overlap_ratio\": 0.900"));
        assert!(json.contains("\"persistent\": ["));
        assert!(json.contains("\"transient_us\": 10.000"));
        assert!(json.contains("\"speedup\": 1.250"));
        // Exactly one separating comma between the two latency cells.
        assert_eq!(json.matches("},").count(), 1);
    }

    /// A tiny overlap cell completes and reports a sane ratio (the
    /// headline ≥50% claim is asserted at full scale by the
    /// `collectives` binary, not here — CI machines are small).
    #[test]
    fn overlap_cell_measures_without_hanging() {
        let record = measure_overlap(
            DeviceKind::ShmFast,
            None,
            2,
            64 * 1024,
            1,
            ProgressMode::Manual,
        );
        assert!(record.comm_us > 0.0);
        assert!(record.compute_us > 0.0);
        assert!(record.overlapped_us > 0.0);
        assert!((0.0..=1.0).contains(&record.overlap_ratio));
        assert_eq!(record.progress, "manual");
    }

    /// The thread-mode overlap cell completes with zero manual test()
    /// calls and still reports a sane ratio.
    #[test]
    fn thread_mode_overlap_cell_needs_no_manual_tests() {
        let record = measure_overlap(
            DeviceKind::ShmFast,
            None,
            2,
            64 * 1024,
            1,
            ProgressMode::Thread,
        );
        assert_eq!(record.manual_tests_per_op, 0);
        assert_eq!(record.progress, "thread");
        assert!((0.0..=1.0).contains(&record.overlap_ratio));
    }

    /// A tiny persistent cell completes and reports both latencies (the
    /// persistent ≤ transient gate runs at real scale in the
    /// `collectives` binary).
    #[test]
    fn persistent_cell_measures_without_hanging() {
        let record = measure_persistent(DeviceKind::ShmFast, 2, 1024, 5, 2);
        assert!(record.transient_us > 0.0);
        assert!(record.persistent_us > 0.0);
        assert!(record.speedup > 0.0);
    }

    #[test]
    fn tiny_sweep_produces_one_record_per_cell() {
        let spec = CollBenchSpec {
            ranks: 2,
            devices: vec![DeviceKind::ShmFast],
            algorithms: vec![None, Some(CollAlgorithm::BinomialTree)],
            payloads: vec![256],
            reps: 2,
            warmup: 1,
            link: DeviceProfile::free(),
            trace_modes: vec![TraceMode::Off, TraceMode::Events],
        };
        let records = run_suite(&spec, |_| ());
        // auto covers all 4 ops; the pinned binomial tree implements
        // barrier/bcast/allreduce but not allgather, whose cell must be
        // skipped rather than mislabeled: 4 + 3 = 7 cells, plus the two
        // trace-axis allreduce cells.
        assert_eq!(records.len(), 9);
        assert!(records
            .iter()
            .any(|r| r.trace_mode == "events" && r.op == "allreduce"));
        assert!(records.iter().all(|r| r.us_per_op > 0.0));
        assert!(records.iter().any(|r| r.algorithm == "auto"));
        assert!(records
            .iter()
            .any(|r| r.op == "barrier" && r.payload_bytes == 0));
        assert!(!records
            .iter()
            .any(|r| r.op == "allgather" && r.algorithm == "tree"));
    }
}
