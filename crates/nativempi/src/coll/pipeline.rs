//! Pipelined (segmented chain) broadcast for huge payloads.
//!
//! ## Why a chain, not the binomial tree
//!
//! Segmenting the binomial tree buys nothing: the root there feeds
//! ⌈log₂ P⌉ subtrees, so its outgoing link must carry `log₂ P` full
//! copies of the payload — exactly the tree's critical path — and no
//! amount of pipelining below the root can shrink the root's own
//! serialization. The classic pipelined broadcast therefore streams the
//! segments along a **chain** in rank order: every rank receives each
//! segment from its predecessor and forwards it to its successor once,
//! so every link (the root's included) carries the payload exactly once.
//! With `P` ranks, `S` segments and `T` the time to push the whole
//! payload over one link, completion drops from the tree's
//! `⌈log₂ P⌉ × T` to `(P - 2 + S) × T / S` — for 8 ranks and 8+
//! segments, well under half — at the price of O(P) small-message
//! latency, which is why this algorithm is strictly an opt-in for large
//! payloads.
//!
//! ## Protocol
//!
//! Non-root ranks do not know the payload length up front (the engine's
//! `bcast` buffer argument is root-sized only at the root), so the
//! stream opens with an 8-byte length header on round 0 of the bcast tag
//! window; the segments follow on rounds `1..`, cycling within the
//! window (safe: the transport is FIFO per rank pair, and every segment
//! flows between the same neighbour pair in order). A rank forwards each
//! segment *before* appending it locally, so its successor starts
//! receiving segment *k* while the predecessor is already pushing
//! *k + 1* — the overlap the algorithm exists for.
//!
//! The segment size comes from the engine's pipeline configuration
//! (`MPIJAVA_SEGMENT_BYTES` / [`Engine::set_segment_bytes`]), falling
//! back to [`DEFAULT_BCAST_SEGMENT_BYTES`].
//!
//! ## Selection
//!
//! The tuned selector never picks this algorithm on its own: bcast is
//! selected payload-blind (per-rank buffer lengths legally differ before
//! the call, so a payload-keyed choice could diverge across ranks — see
//! [`super::tuning`]), and without a payload axis the plain tree is the
//! safe default. Pin it with `MPIJAVA_COLL_ALG=pipelined`,
//! [`Engine::set_coll_algorithm`] or `MpiRuntime::coll_algorithm` — the
//! collectives benchmark does exactly that for its pipelined-vs-tree
//! cells. Results are byte-identical to every other bcast algorithm (the
//! equivalence suite includes the pipelined run).

use super::{coll_tag, CollOp, ROUND_SPACE};
use crate::comm::CommHandle;
use crate::error::{err, ErrorClass, Result};
use crate::Engine;

/// Segment size used when the engine has no explicit pipeline
/// configuration. 32 KiB keeps eight-plus segments in flight for the
/// payloads where pipelining matters (≥ 256 KiB) without drowning the
/// stream in per-segment overhead.
pub const DEFAULT_BCAST_SEGMENT_BYTES: usize = 32 * 1024;

impl Engine {
    /// Pipelined segmented chain broadcast (see the module docs).
    /// Byte-identical to [`Engine::bcast_tree`] / the linear baseline.
    pub(crate) fn bcast_pipelined(
        &mut self,
        comm: CommHandle,
        root: usize,
        buf: &mut Vec<u8>,
    ) -> Result<()> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let seg = self
            .segment_bytes
            .unwrap_or(DEFAULT_BCAST_SEGMENT_BYTES)
            .max(1);

        // Chain neighbours in root-relative rank order: root → root+1 →
        // … → root-1 (wrapping), so any root costs the same.
        let relative = (rank + size - root) % size;
        let prev = (relative > 0).then(|| ((relative - 1 + root) % size) as i32);
        let next = (relative + 1 < size).then(|| ((relative + 1 + root) % size) as i32);

        // Length header: downstream ranks learn the total (and therefore
        // the segment count) before the stream starts.
        let header_tag = coll_tag(CollOp::Bcast, 0);
        let total = match prev {
            None => buf.len(),
            Some(prev) => {
                let (header, _) = self.recv_collective(comm, prev, header_tag)?;
                if header.len() != 8 {
                    return err(ErrorClass::Intern, "malformed pipelined bcast header");
                }
                let total = u64::from_le_bytes(header[..8].try_into().unwrap()) as usize;
                buf.clear();
                buf.reserve_exact(total);
                total
            }
        };
        if let Some(next) = next {
            self.send_collective(comm, next, header_tag, &(total as u64).to_le_bytes())?;
        }

        // Stream the segments: receive, forward downstream *before*
        // appending locally, then append. Segment tags cycle through
        // rounds 1.. of the bcast window, never touching the header's
        // round 0.
        let segments = total.div_ceil(seg);
        for s in 0..segments {
            let start = s * seg;
            let end = (start + seg).min(total);
            let chunk_tag = coll_tag(CollOp::Bcast, 1 + (s % (ROUND_SPACE - 1)));
            match prev {
                None => {
                    if let Some(next) = next {
                        self.send_collective(comm, next, chunk_tag, &buf[start..end])?;
                    }
                }
                Some(prev) => {
                    let (chunk, _) = self.recv_collective(comm, prev, chunk_tag)?;
                    if chunk.len() != end - start {
                        return err(ErrorClass::Intern, "pipelined bcast segment length skew");
                    }
                    if let Some(next) = next {
                        self.send_collective(comm, next, chunk_tag, &chunk)?;
                    }
                    buf.extend_from_slice(&chunk);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::COMM_WORLD;
    use crate::universe::Universe;
    use crate::CollAlgorithm;
    use mpi_transport::DeviceKind;

    fn pipelined_bcast_roundtrip(size: usize, root: usize, len: usize, segment: Option<usize>) {
        Universe::run(size, DeviceKind::ShmFast, move |engine| {
            engine.set_coll_algorithm(Some(CollAlgorithm::Pipelined));
            engine.set_segment_bytes(segment);
            let expected: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = if engine.world_rank() == root {
                expected.clone()
            } else {
                vec![0xEE; 3] // stale contents must be replaced
            };
            engine.bcast(COMM_WORLD, root, &mut buf).unwrap();
            assert_eq!(buf, expected, "size={size} root={root} len={len}");
        })
        .unwrap();
    }

    #[test]
    fn pipelined_bcast_matches_on_many_shapes() {
        // Payloads below, at and far above one segment; pow2 and odd
        // communicator sizes; root at both ends.
        for (size, root) in [(2usize, 0usize), (3, 2), (4, 1), (8, 0), (8, 5)] {
            for len in [0usize, 1, 4096, 100_000] {
                pipelined_bcast_roundtrip(size, root, len, Some(4096));
            }
        }
    }

    #[test]
    fn pipelined_bcast_uses_default_segment_when_unconfigured() {
        // 200 KB over the 32 KiB default ≈ 7 segments.
        pipelined_bcast_roundtrip(4, 0, 200_000, None);
    }

    #[test]
    fn more_segments_than_the_tag_window_still_works() {
        // 96 segments > ROUND_SPACE: tags wrap within the window; the
        // per-pair FIFO keeps the stream ordered.
        pipelined_bcast_roundtrip(3, 1, 96 * 256, Some(256));
    }
}
