//! RMA epoch-semantics suite: the one-sided subsystem implements
//! *applied-at-sync* (IBM-style) memory semantics, and this file pins
//! the visible consequences on every device:
//!
//! * a `put` is invisible at the target until the closing `fence`
//!   (even while the target actively drives its progress engine);
//! * concurrent `accumulate`s from multiple origins in one epoch are
//!   deterministic (applied in origin-rank order);
//! * concurrent `put`s to the same location resolve to the
//!   highest-ranked origin (rank-order application);
//! * `get` results are redeemable only after a covering sync;
//! * passive-target epochs (`lock`/`put`/`flush`/`unlock`) expose the
//!   holder's operations at `flush`, and the lock serializes origins;
//! * `win_free` and `finalize` refuse un-synced epochs;
//! * everything above survives the rendezvous and segmented datapaths
//!   (tiny eager threshold / small segments) and hybrid fabrics.

use mpi_native::comm::COMM_WORLD;
use mpi_native::{
    Engine, NodeMap, PredefinedOp, PrimitiveKind, SendMode, Universe, UniverseConfig,
};
use mpi_transport::DeviceKind;

const DEVICES: [DeviceKind; 3] = [DeviceKind::ShmFast, DeviceKind::ShmP4, DeviceKind::Tcp];

fn ints(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn read_ints(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Origin puts, then hands the target a two-sided flag; the target's
/// receive drives its progress engine (ingesting and parsing the RMA
/// traffic), yet the region must stay untouched until the fence lands.
fn put_invisible_until_fence(engine: &mut Engine) {
    let rank = engine.world_rank();
    let win = engine.win_create(COMM_WORLD, vec![0u8; 64]).unwrap();
    engine.win_fence(win).unwrap(); // open the epoch
    if rank == 0 {
        engine.win_put(win, 1, 8, &[0xAB; 16]).unwrap();
        engine
            .send(COMM_WORLD, 1, 17, b"put-issued", SendMode::Standard)
            .unwrap();
    } else if rank == 1 {
        // Receiving parks on the transport until the flag frame arrives,
        // which necessarily drives progress past the put's arrival on
        // the shm paths — and the op must still not be applied.
        let (data, _) = engine.recv(COMM_WORLD, 0, 17, None).unwrap();
        assert_eq!(data.as_ref(), b"put-issued");
        assert_eq!(
            engine.win_region(win).unwrap(),
            &[0u8; 64][..],
            "put became visible before the closing fence"
        );
    }
    engine.win_fence(win).unwrap();
    if rank == 1 {
        let region = engine.win_region(win).unwrap();
        assert_eq!(&region[8..24], &[0xAB; 16]);
        assert_eq!(&region[..8], &[0u8; 8]);
        assert_eq!(&region[24..], &[0u8; 40]);
    }
    engine.win_free(win).unwrap();
}

/// Every rank accumulates into rank 0 and puts into rank `size - 1`
/// concurrently in one epoch; rank-order application makes both
/// deterministic: the sum for the accumulate, the highest-ranked
/// origin's value for the overlapping puts.
fn concurrent_origins_are_deterministic(engine: &mut Engine) {
    let rank = engine.world_rank();
    let size = engine.world_size();
    let win = engine
        .win_create(COMM_WORLD, ints(&[100, 200, 300]))
        .unwrap();
    engine.win_fence(win).unwrap();
    engine
        .win_accumulate(
            win,
            0,
            0,
            &ints(&[rank as i32 + 1, 2 * (rank as i32 + 1)]),
            PrimitiveKind::Int,
            PredefinedOp::Sum,
        )
        .unwrap();
    engine
        .win_put(win, size - 1, 8, &ints(&[1000 + rank as i32]))
        .unwrap();
    engine.win_fence(win).unwrap();
    let region = read_ints(engine.win_region(win).unwrap());
    if rank == 0 {
        let n = size as i32;
        assert_eq!(region[0], 100 + n * (n + 1) / 2);
        assert_eq!(region[1], 200 + n * (n + 1));
    }
    if rank == size - 1 {
        // Origins apply in rank order within the epoch, so the last
        // rank's put wins the overlap.
        assert_eq!(region[2], 1000 + size as i32 - 1);
    }
    engine.win_free(win).unwrap();
}

/// Gets resolve at the fence; taking one earlier is refused.
fn get_resolves_at_fence(engine: &mut Engine) {
    let rank = engine.world_rank();
    let size = engine.world_size();
    let seed = ints(&[rank as i32 * 10, rank as i32 * 10 + 1]);
    let win = engine.win_create(COMM_WORLD, seed).unwrap();
    engine.win_fence(win).unwrap();
    let peer = (rank + 1) % size;
    let get = engine.win_get(win, peer, 0, 8).unwrap();
    let early = engine.win_get_take(win, get);
    assert!(
        early.is_err(),
        "get was redeemable before any synchronization"
    );
    engine.win_fence(win).unwrap();
    let data = engine.win_get_take(win, get).unwrap();
    assert_eq!(
        read_ints(data.as_ref()),
        vec![peer as i32 * 10, peer as i32 * 10 + 1]
    );
    engine.recycle(data);
    engine.win_free(win).unwrap();
}

/// Passive target: rank 0 locks rank 1, puts, and flushes — the value
/// is applied at the target while the target merely makes progress
/// (two-sided flag handshake, no target-side RMA call). A second
/// origin's lock serializes behind the first.
fn passive_target_flush_exposes_and_lock_serializes(engine: &mut Engine) {
    let rank = engine.world_rank();
    let size = engine.world_size();
    let win = engine.win_create(COMM_WORLD, vec![0u8; 16]).unwrap();
    if size >= 3 {
        // Rank 2 locks first and holds while it writes; rank 0 queues.
        match rank {
            2 => {
                engine.win_lock(win, 1).unwrap();
                engine
                    .send(COMM_WORLD, 0, 31, b"locked", SendMode::Standard)
                    .unwrap();
                engine.win_put(win, 1, 0, &ints(&[7])).unwrap();
                engine.win_unlock(win, 1).unwrap();
            }
            0 => {
                let (flag, _) = engine.recv(COMM_WORLD, 2, 31, None).unwrap();
                assert_eq!(flag.as_ref(), b"locked");
                // Blocks until rank 2 unlocks; the accumulate then runs
                // against the already-applied put.
                engine.win_lock(win, 1).unwrap();
                engine
                    .win_accumulate(
                        win,
                        1,
                        0,
                        &ints(&[5]),
                        PrimitiveKind::Int,
                        PredefinedOp::Sum,
                    )
                    .unwrap();
                engine.win_flush(win, 1).unwrap();
                let get = engine.win_get(win, 1, 0, 4).unwrap();
                engine.win_flush(win, 1).unwrap();
                let data = engine.win_get_take(win, get).unwrap();
                assert_eq!(read_ints(data.as_ref()), vec![12]);
                engine.recycle(data);
                engine.win_unlock(win, 1).unwrap();
                engine
                    .send(COMM_WORLD, 1, 32, b"done", SendMode::Standard)
                    .unwrap();
            }
            1 => {
                // The target only makes progress (inside recv) — no RMA
                // calls of its own until the origins are done.
                let (flag, _) = engine.recv(COMM_WORLD, 0, 32, None).unwrap();
                assert_eq!(flag.as_ref(), b"done");
                assert_eq!(read_ints(&engine.win_region(win).unwrap()[..4]), vec![12]);
            }
            _ => {}
        }
    } else if size == 2 {
        if rank == 0 {
            engine.win_lock(win, 1).unwrap();
            engine.win_put(win, 1, 4, &ints(&[42])).unwrap();
            engine.win_flush(win, 1).unwrap();
            let get = engine.win_get(win, 1, 4, 4).unwrap();
            engine.win_flush(win, 1).unwrap();
            let data = engine.win_get_take(win, get).unwrap();
            assert_eq!(read_ints(data.as_ref()), vec![42]);
            engine.recycle(data);
            engine.win_unlock(win, 1).unwrap();
            engine
                .send(COMM_WORLD, 1, 33, b"done", SendMode::Standard)
                .unwrap();
        } else {
            let (flag, _) = engine.recv(COMM_WORLD, 0, 33, None).unwrap();
            assert_eq!(flag.as_ref(), b"done");
            assert_eq!(read_ints(&engine.win_region(win).unwrap()[4..8]), vec![42]);
        }
    }
    engine.win_free(win).unwrap();
}

/// `win_free` refuses an epoch that was never synced; `finalize`
/// refuses open windows — then both succeed after cleanup.
fn teardown_refusals(engine: &mut Engine) {
    let rank = engine.world_rank();
    let win = engine.win_create(COMM_WORLD, vec![0u8; 8]).unwrap();
    engine.win_fence(win).unwrap();
    if rank == 0 {
        engine
            .win_put(win, 1 % engine.world_size(), 0, &[1, 2])
            .unwrap();
        let refused = engine.win_free(win).unwrap_err();
        assert!(refused.message.contains("un-synced"), "{}", refused.message);
    }
    let refused = engine.finalize().unwrap_err();
    assert!(
        refused.message.contains("open RMA windows") || refused.message.contains("un-synced"),
        "{}",
        refused.message
    );
    engine.win_fence(win).unwrap();
    engine.win_free(win).unwrap();
}

fn full_suite(engine: &mut Engine) {
    put_invisible_until_fence(engine);
    concurrent_origins_are_deterministic(engine);
    get_resolves_at_fence(engine);
    passive_target_flush_exposes_and_lock_serializes(engine);
    teardown_refusals(engine);
}

#[test]
fn put_stays_invisible_until_fence_on_every_device() {
    for device in DEVICES {
        for size in [2usize, 3, 4] {
            Universe::run(size, device, put_invisible_until_fence).unwrap();
        }
    }
}

#[test]
fn concurrent_origins_apply_in_rank_order_on_every_device() {
    for device in DEVICES {
        for size in [2usize, 3, 4] {
            Universe::run(size, device, concurrent_origins_are_deterministic).unwrap();
        }
    }
}

#[test]
fn gets_resolve_at_the_fence_on_every_device() {
    for device in DEVICES {
        for size in [2usize, 3, 4] {
            Universe::run(size, device, get_resolves_at_fence).unwrap();
        }
    }
}

#[test]
fn passive_target_epochs_hold_on_every_device() {
    for device in DEVICES {
        for size in [2usize, 3, 4] {
            Universe::run(
                size,
                device,
                passive_target_flush_exposes_and_lock_serializes,
            )
            .unwrap();
        }
    }
}

#[test]
fn teardown_refusals_hold_on_every_device() {
    for device in DEVICES {
        for size in [2usize, 3] {
            Universe::run(size, device, teardown_refusals).unwrap();
        }
    }
}

#[test]
fn epoch_semantics_hold_on_hybrid_fabrics() {
    for (size, per_node) in [(4usize, 2usize), (4, 1), (6, 3)] {
        let nodes = NodeMap::from_assignment((0..size).map(|r| r / per_node).collect());
        let config = UniverseConfig::new(size, DeviceKind::Hybrid).with_nodes(nodes);
        Universe::run_with_config(config, full_suite).unwrap();
    }
}

/// Tiny eager threshold: even the 17-byte RMA headers ride the
/// rendezvous protocol, so header/payload pairing and fence markers
/// must survive out-of-band grants.
#[test]
fn epoch_semantics_survive_an_all_rendezvous_regime() {
    for size in [2usize, 3] {
        let mut config = UniverseConfig::new(size, DeviceKind::ShmFast);
        config.eager_threshold = Some(2);
        Universe::run_with_config(config, full_suite).unwrap();
    }
}

/// Large payloads over the segmented pipeline: a put bigger than the
/// segment size reassembles before application, and a get reply can
/// trail its flush-ack without being lost.
#[test]
fn large_transfers_ride_the_segmented_pipeline() {
    let mut config = UniverseConfig::new(2, DeviceKind::ShmFast);
    config.eager_threshold = Some(1024);
    config.segment_bytes = Some(4096);
    Universe::run_with_config(config, |engine| {
        let rank = engine.world_rank();
        let len = 200_000usize;
        let win = engine.win_create(COMM_WORLD, vec![0u8; len]).unwrap();
        engine.win_fence(win).unwrap();
        if rank == 0 {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            engine.win_put(win, 1, 0, &payload).unwrap();
        }
        engine.win_fence(win).unwrap();
        if rank == 1 {
            let region = engine.win_region(win).unwrap();
            assert!((0..len).all(|i| region[i] == (i * 31 % 251) as u8));
        }
        // Passive-target get of the full region: the rendezvous reply
        // outlives the flush ack.
        if rank == 1 {
            engine.win_lock(win, 0).unwrap();
            let get = engine.win_get(win, 0, 0, len).unwrap();
            engine.win_unlock(win, 0).unwrap();
            let data = engine.win_get_take(win, get).unwrap();
            assert_eq!(data.len(), len);
            assert_eq!(data.as_ref(), vec![0u8; len]);
            engine.recycle(data);
        } else {
            // Keep the target's progress engine turning until the peer
            // reports completion.
            let (flag, _) = engine.recv(COMM_WORLD, 1, 55, None).unwrap();
            assert_eq!(flag.as_ref(), b"ok");
        }
        if rank == 1 {
            engine
                .send(COMM_WORLD, 0, 55, b"ok", SendMode::Standard)
                .unwrap();
        }
        engine.win_free(win).unwrap();
    })
    .unwrap();
}
