//! Leader-based hierarchical collectives for multi-fabric jobs.
//!
//! On a cluster-shaped fabric (see [`mpi_transport::NodeMap`] and the
//! `hybrid` device) the flat algorithms waste the expensive link: a
//! binomial-tree allreduce happily pairs ranks on different nodes in
//! every round, so the inter-node link carries the payload O(log P)
//! times. The classic fix — what MVAPICH/Open MPI do, and what the
//! topology-aware communicator hierarchies of the C++ MPI-4.0 interface
//! line of work formalize — is a **leader scheme**:
//!
//! 1. **intra-node phase** — every node folds (or gathers) its members'
//!    contributions into the node *leader* (the lowest-ranked member on
//!    that node) over the cheap shared-memory class;
//! 2. **inter-node phase** — the leaders, one per node, run the ordinary
//!    flat schedule among themselves over the expensive link — this
//!    module *reuses* the [`tree`] and [`rd`] builders verbatim,
//!    relabelled onto the leader subgroup through the `Subgroup` view
//!    of the schedule machinery;
//! 3. **intra-node phase** — every leader broadcasts (or scatters) the
//!    result back to its node over the cheap class.
//!
//! The inter-node link therefore carries each payload the minimum
//! number of times — once per node pair the flat leader schedule needs —
//! instead of once per *rank* pair, which is exactly the
//! fewer-inter-node-traversals-per-byte win the benchmark cells measure.
//!
//! ## Schedule composition
//!
//! Every operation here is an ordinary `CollSchedule`: the three
//! phases are just consecutive rounds, so the hierarchical collectives
//! are nonblocking-capable for free — `ibcast`/`ireduce`/`iallreduce`/
//! `ibarrier`/`iallgather` over a hybrid fabric run through the same
//! progress engine as everything else, and the blocking forms stay
//! `start + wait`. The intra-node phases are the [`linear`] builders
//! over the node subgroup (a node is small and its fabric
//! cheap; O(n) fan-in there beats paying extra rounds), the inter-node
//! phase is the binomial tree — or recursive doubling when the leader
//! count is a power of two — over the leader subgroup.
//!
//! ## Byte-identity
//!
//! Reductions stay byte-identical to the linear rank-ordered fold under
//! the same rules the flat algorithms obey ([`OrderPolicy`](super::tuning::OrderPolicy)):
//!
//! * the intra-node fold runs in ascending comm-rank order (the linear
//!   builder over the ascending member list), and the leader phase folds
//!   node partials in ascending leader order;
//! * on a **contiguous** placement (each node's members form one
//!   consecutive comm-rank block, blocks ascending — every block and
//!   `AxB` spec produces this) the composition is a re-association of
//!   the rank-ordered fold, so `Ordered` operations (user functions,
//!   MAXLOC/MINLOC, float MAX/MIN) are admitted;
//! * on a non-contiguous placement (`0,1,0,1`-style maps) the fold
//!   re-orders operands, so only `Any`-order operations qualify —
//!   [`supported`](super::tuning::supported) encodes both rules and the
//!   selector falls back to the flat algorithms otherwise, exactly like
//!   the ring;
//! * floating `SUM`/`PROD` (`Sequential`) never run hierarchically.
//!
//! The data movers (bcast/allgather/barrier) move bytes verbatim, so
//! they are unconditionally byte-identical; the cross-algorithm
//! equivalence suite runs the full transcript with `hier` pinned over
//! hybrid fabrics at several node shapes, degenerate maps included.
//!
//! ## Tag-window accounting across the two levels
//!
//! A hierarchical collective spans up to three wire phases, and two of
//! them (the leader phase of allreduce/allgather on a non-power-of-two
//! leader count) are themselves composites — so each operation draws a
//! **fixed number of tag windows** from the per-communicator sequence
//! (3 for barrier/bcast/reduce, 4 for allreduce/allgather), on *every*
//! rank, leaders or not. The count must not depend on this rank's role
//! or on the leader-count's parity: window allocation is local (no
//! communication), and MPI's same-order rule only guarantees symmetry if
//! every rank advances the sequence identically. Unused windows on a
//! given rank are simply never referenced. Within each window the reused
//! flat builders number their rounds exactly as they do at top level,
//! and the two ends of every edge agree on the window by construction
//! (both sides allocate the same sequence numbers).

use mpi_transport::NodeMap;

use super::nb::{CollSchedule, Round, SlotId, Subgroup, TagWindow};
use super::tuning::TopoHint;
use super::{frame_entries, linear, rd, tree, unframe_entries};
use crate::ops::Op;
use crate::types::PrimitiveKind;

/// A communicator's members grouped by node: the precomputed view the
/// hierarchical schedules (and the tuning layer) work from. All ranks
/// here are *comm* ranks.
#[derive(Debug, Clone)]
pub(crate) struct CommTopology {
    /// `groups[g]` = members of node-group `g`, ascending comm rank;
    /// groups ordered by their lowest member, so `groups[g][0]` — the
    /// node's *leader* — are ascending across `g`.
    groups: Vec<Vec<usize>>,
    /// Node-group index of every comm rank.
    group_of: Vec<usize>,
    /// `leaders[g] = groups[g][0]`.
    leaders: Vec<usize>,
    /// Whether every group is one consecutive comm-rank block and the
    /// blocks appear in ascending order (see the module docs:
    /// order-preserving reductions require this).
    contiguous: bool,
}

impl CommTopology {
    /// Group a communicator's members (given as world ranks, in comm
    /// rank order) by the fabric's node map.
    pub(crate) fn new(world_ranks: &[usize], nodes: &NodeMap) -> CommTopology {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_ids: Vec<usize> = Vec::new(); // node id of each group
        let mut group_of = Vec::with_capacity(world_ranks.len());
        for (comm_rank, &world) in world_ranks.iter().enumerate() {
            let node = nodes.node_of(world);
            let g = match group_ids.iter().position(|&id| id == node) {
                Some(g) => g,
                None => {
                    group_ids.push(node);
                    groups.push(Vec::new());
                    groups.len() - 1
                }
            };
            groups[g].push(comm_rank);
            group_of.push(g);
        }
        let contiguous = group_of.windows(2).all(|w| w[0] <= w[1]);
        let leaders = groups.iter().map(|g| g[0]).collect();
        CommTopology {
            groups,
            group_of,
            leaders,
            contiguous,
        }
    }

    /// Number of members.
    pub(crate) fn size(&self) -> usize {
        self.group_of.len()
    }

    /// True when there is real hierarchy to exploit: more than one node
    /// *and* at least one node with more than one member. Degenerate
    /// shapes collapse to the flat algorithms through the tuning layer.
    pub(crate) fn is_hierarchical(&self) -> bool {
        self.leaders.len() > 1 && self.leaders.len() < self.size()
    }

    /// The summary the tuning layer keys on.
    pub(crate) fn hint(&self) -> TopoHint {
        TopoHint {
            hierarchical: self.is_hierarchical(),
            contiguous: self.contiguous,
        }
    }

    /// Leader (comm rank) of the node `rank` lives on.
    fn leader_of(&self, rank: usize) -> usize {
        self.leaders[self.group_of[rank]]
    }

    /// This rank's node group, its index within it, and its leader
    /// index (== group index) among the leaders.
    fn placement(&self, rank: usize) -> (&[usize], usize, usize) {
        let g = self.group_of[rank];
        let group = &self.groups[g];
        let idx = group
            .iter()
            .position(|&r| r == rank)
            .expect("rank is in its own group");
        (group, idx, g)
    }
}

/// Hierarchical barrier: intra-node fan-in to the leaders, tree barrier
/// among the leaders, intra-node release.
pub(crate) fn barrier(
    s: &mut CollSchedule,
    w_in: TagWindow,
    w_lead: TagWindow,
    w_out: TagWindow,
    rank: usize,
    topo: &CommTopology,
) {
    let (group, my_idx, g) = topo.placement(rank);
    let n = group.len();
    let leaders = &topo.leaders;
    // Intra fan-in (linear: nodes are small and their fabric cheap).
    if n > 1 {
        linear_fan_in(s, w_in, group, my_idx);
    }
    // Leaders synchronize over the inter-node link.
    if my_idx == 0 {
        tree::barrier(&mut Subgroup::new(s, leaders), w_lead, g, leaders.len());
    }
    // Intra release.
    if n > 1 {
        linear_fan_out(s, w_out, group, my_idx);
    }
}

/// Zero-byte linear fan-in of a node group to its leader (index 0).
fn linear_fan_in(s: &mut CollSchedule, win: TagWindow, group: &[usize], my_idx: usize) {
    let tag = win.tag(0);
    if my_idx == 0 {
        let mut collect = Round::new();
        for &member in &group[1..] {
            let slot = s.empty();
            collect = collect.recv(member, tag, slot);
        }
        s.push(collect);
    } else {
        let signal = s.filled(Vec::new());
        s.push(Round::new().send(group[0], tag, signal));
    }
}

/// Zero-byte linear release of a node group from its leader.
fn linear_fan_out(s: &mut CollSchedule, win: TagWindow, group: &[usize], my_idx: usize) {
    let tag = win.tag(0);
    if my_idx == 0 {
        let signal = s.filled(Vec::new());
        let mut release = Round::new();
        for &member in &group[1..] {
            release = release.send(member, tag, signal);
        }
        s.push(release);
    } else {
        let ack = s.empty();
        s.push(Round::new().recv(group[0], tag, ack));
    }
}

/// Hierarchical broadcast: one hop from the root to its node leader (if
/// they differ), tree bcast among the leaders, linear bcast within each
/// node. The payload ends up in slot `data` on every rank.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bcast(
    s: &mut CollSchedule,
    w_in: TagWindow,
    w_lead: TagWindow,
    w_out: TagWindow,
    rank: usize,
    topo: &CommTopology,
    root: usize,
    data: SlotId,
) {
    let (group, my_idx, g) = topo.placement(rank);
    let leaders = &topo.leaders;
    let root_leader = topo.leader_of(root);
    // Hop: a non-leader root hands the payload to its node leader.
    if root != root_leader {
        if rank == root {
            s.push(Round::new().send(root_leader, w_in.tag(0), data));
        } else if rank == root_leader {
            s.push(Round::new().recv(root, w_in.tag(0), data));
        }
    }
    // Leaders broadcast over the inter-node link, rooted at the root's
    // leader (reusing the flat binomial tree over the leader subgroup).
    if my_idx == 0 {
        let root_g = topo.group_of[root];
        tree::bcast(
            &mut Subgroup::new(s, leaders),
            w_lead,
            g,
            leaders.len(),
            root_g,
            data,
        );
    }
    // Each leader fans out within its node.
    if group.len() > 1 {
        linear::bcast(
            &mut Subgroup::new(s, group),
            w_out,
            my_idx,
            group.len(),
            0,
            data,
        );
    }
}

/// Hierarchical reduce: intra-node linear fold to the leaders (ascending
/// comm-rank order), tree reduce among the leaders (node partials folded
/// in ascending leader order), one hop to a non-leader root. Returns the
/// slot holding the result on the root (meaningless elsewhere).
#[allow(clippy::too_many_arguments)]
pub(crate) fn reduce(
    s: &mut CollSchedule,
    w_in: TagWindow,
    w_lead: TagWindow,
    w_out: TagWindow,
    rank: usize,
    topo: &CommTopology,
    root: usize,
    send: SlotId,
    kind: PrimitiveKind,
    count: usize,
    op: Op,
) -> SlotId {
    let (group, my_idx, g) = topo.placement(rank);
    let leaders = &topo.leaders;
    let root_g = topo.group_of[root];
    let root_leader = topo.leaders[root_g];

    // Intra-node fold into the leader.
    let partial = if group.len() > 1 {
        linear::reduce(
            &mut Subgroup::new(s, group),
            w_in,
            my_idx,
            group.len(),
            0,
            send,
            kind,
            count,
            op.clone(),
        )
    } else {
        send
    };

    // Leaders fold the node partials toward the root's leader.
    let reduced = if my_idx == 0 {
        tree::reduce(
            &mut Subgroup::new(s, leaders),
            w_lead,
            g,
            leaders.len(),
            root_g,
            partial,
            kind,
            count,
            op,
        )
    } else {
        partial
    };

    // Hop: deliver to a non-leader root.
    if root == root_leader {
        reduced
    } else if rank == root_leader {
        s.push(Round::new().send(root, w_out.tag(0), reduced));
        reduced
    } else if rank == root {
        let out = s.empty();
        s.push(Round::new().recv(root_leader, w_out.tag(0), out));
        out
    } else {
        reduced
    }
}

/// Hierarchical allreduce: intra-node fold to the leaders, allreduce
/// among the leaders (recursive doubling when their count is a power of
/// two, tree reduce + tree bcast otherwise), intra-node bcast. Returns
/// the slot holding the full reduction on every rank.
#[allow(clippy::too_many_arguments)]
pub(crate) fn allreduce(
    s: &mut CollSchedule,
    w_in: TagWindow,
    w_lead_a: TagWindow,
    w_lead_b: TagWindow,
    w_out: TagWindow,
    rank: usize,
    topo: &CommTopology,
    send: SlotId,
    kind: PrimitiveKind,
    count: usize,
    op: Op,
) -> SlotId {
    let (group, my_idx, g) = topo.placement(rank);
    let leaders = &topo.leaders;
    let n = group.len();

    let partial = if n > 1 {
        linear::reduce(
            &mut Subgroup::new(s, group),
            w_in,
            my_idx,
            n,
            0,
            send,
            kind,
            count,
            op.clone(),
        )
    } else {
        send
    };

    let full = if my_idx == 0 {
        let lsub = &mut Subgroup::new(s, leaders);
        let len = leaders.len();
        if len.is_power_of_two() {
            rd::allreduce(lsub, w_lead_a, g, len, partial, kind, count, op)
        } else {
            let reduced = tree::reduce(lsub, w_lead_a, g, len, 0, partial, kind, count, op);
            tree::bcast(lsub, w_lead_b, g, len, 0, reduced);
            reduced
        }
    } else {
        s.empty()
    };

    if n > 1 {
        linear::bcast(&mut Subgroup::new(s, group), w_out, my_idx, n, 0, full);
    }
    full
}

/// Hierarchical allgather(v): intra-node gather to the leaders (framed,
/// re-keyed to comm ranks), allgather of the node aggregates among the
/// leaders, intra-node bcast of the merged frame. Returns the slot
/// holding everyone's framed `(comm rank, payload)` entries on every
/// rank (finalized into rank-ordered parts by the dispatch layer).
#[allow(clippy::too_many_arguments)]
pub(crate) fn allgather(
    s: &mut CollSchedule,
    w_in: TagWindow,
    w_lead_a: TagWindow,
    w_lead_b: TagWindow,
    w_out: TagWindow,
    rank: usize,
    topo: &CommTopology,
    send: SlotId,
) -> SlotId {
    let (group, my_idx, g) = topo.placement(rank);
    let leaders = &topo.leaders;
    let n = group.len();

    // Intra-node gather. The linear builder frames entries by subgroup
    // index; the leader re-keys them to comm ranks before they go
    // inter-node.
    let raw = linear::gather(&mut Subgroup::new(s, group), w_in, my_idx, n, 0, send);
    let node_frame = s.empty();
    if my_idx == 0 {
        let members = group.to_vec();
        s.push(Round::new().compute(move |ctx| {
            let entries: Vec<(u32, Vec<u8>)> = unframe_entries(&ctx.take(raw)?)?
                .into_iter()
                .map(|(idx, payload)| (members[idx as usize] as u32, payload))
                .collect();
            ctx.put(node_frame, frame_entries(&entries));
            Ok(())
        }));
    }

    // Leaders exchange the node aggregates.
    let outer = if my_idx == 0 {
        let lsub = &mut Subgroup::new(s, leaders);
        let len = leaders.len();
        if len.is_power_of_two() {
            rd::allgather(lsub, w_lead_a, g, len, node_frame)
        } else {
            let gathered = tree::gather(lsub, w_lead_a, g, len, 0, node_frame);
            tree::bcast(lsub, w_lead_b, g, len, 0, gathered);
            gathered
        }
    } else {
        s.empty()
    };

    // Leaders fan the merged picture back out within their nodes.
    if n > 1 {
        linear::bcast(&mut Subgroup::new(s, group), w_out, my_idx, n, 0, outer);
    }

    // Flatten the frame-of-frames into one comm-rank-keyed frame.
    let out = s.empty();
    s.push(Round::new().compute(move |ctx| {
        let mut entries: Vec<(u32, Vec<u8>)> = Vec::new();
        for (_, node_frame) in unframe_entries(&ctx.take(outer)?)? {
            entries.extend(unframe_entries(&node_frame)?);
        }
        ctx.put(out, frame_entries(&entries));
        Ok(())
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(assignment: &[usize]) -> CommTopology {
        let nodes = NodeMap::from_assignment(assignment.to_vec());
        let world: Vec<usize> = (0..assignment.len()).collect();
        CommTopology::new(&world, &nodes)
    }

    #[test]
    fn groups_leaders_and_contiguity() {
        let t = topo(&[0, 0, 1, 1, 1, 2]);
        assert_eq!(t.groups, vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
        assert_eq!(t.leaders, vec![0, 2, 5]);
        assert!(t.contiguous);
        assert!(t.is_hierarchical());
        assert_eq!(t.leader_of(4), 2);
        let (group, idx, g) = t.placement(3);
        assert_eq!((group, idx, g), (&[2usize, 3, 4][..], 1, 1));
    }

    #[test]
    fn round_robin_maps_are_hierarchical_but_not_contiguous() {
        let t = topo(&[0, 1, 0, 1]);
        assert_eq!(t.groups, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(t.leaders, vec![0, 1]);
        assert!(!t.contiguous);
        assert!(t.is_hierarchical());
        assert!(t.hint().hierarchical);
        assert!(!t.hint().contiguous);
    }

    #[test]
    fn degenerate_maps_are_not_hierarchical() {
        assert!(!topo(&[0, 0, 0, 0]).is_hierarchical(), "one node");
        assert!(!topo(&[0, 1, 2, 3]).is_hierarchical(), "one rank per node");
        // Both still report contiguous (they are trivially ordered).
        assert!(topo(&[0, 0, 0, 0]).hint().contiguous);
    }

    #[test]
    fn subcommunicator_topology_uses_member_world_ranks() {
        // World: nodes [0,0,1,1]; a sub-communicator of world ranks
        // [1, 3] has one member per node -> degenerate.
        let nodes = NodeMap::regular(2, 2);
        let t = CommTopology::new(&[1, 3], &nodes);
        assert_eq!(t.groups, vec![vec![0], vec![1]]);
        assert!(!t.is_hierarchical());
        // [0, 1, 3]: node 0 holds comm ranks {0, 1}, node 1 holds {2}.
        let t = CommTopology::new(&[0, 1, 3], &nodes);
        assert_eq!(t.groups, vec![vec![0, 1], vec![2]]);
        assert!(t.is_hierarchical());
        assert_eq!(t.leaders, vec![0, 2]);
    }
}
