//! Ring collective schedules: allgather, reduce-scatter and (composed in
//! the dispatch layer) allreduce for bandwidth-bound payloads — see
//! [`super::nb`] for the schedule machinery.
//!
//! Every rank talks only to its neighbours — send to `(rank + 1) % P`,
//! receive from `(rank - 1) % P` — and every link carries data every
//! round, so for a payload of `n` bytes the per-rank traffic is
//! `n · (P-1)/P` regardless of `P`: the best bandwidth term of any
//! algorithm, at the price of O(P) rounds of latency.
//!
//! The ring reduce-scatter folds each segment in the rotated order
//! `s+1, s+2, …, s` (wrapping), *not* rank order, so the tuning layer
//! only selects it for reductions whose [`OrderPolicy`](super::tuning::OrderPolicy)
//! is `Any` — the exactly commutative-and-associative integer/bitwise
//! operations, for which every fold order is byte-identical.

use super::nb::{Round, Sched, SlotId, TagWindow};
use crate::error::{err, ErrorClass};
use crate::ops::Op;
use crate::types::PrimitiveKind;

/// Ring allgather: round `r` shifts the block that originated at rank
/// `(rank - r) % P` one step around the ring. The owner of each incoming
/// block is implied by the round number, so per-rank lengths may differ
/// (allgatherv) without framing. `own` is this rank's block; the
/// returned slots hold all blocks in rank order when the schedule
/// completes.
pub(crate) fn allgather(
    s: &mut impl Sched,
    win: TagWindow,
    rank: usize,
    size: usize,
    own: SlotId,
) -> Vec<SlotId> {
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let parts: Vec<SlotId> = (0..size)
        .map(|owner| if owner == rank { own } else { s.empty() })
        .collect();
    for round in 0..size - 1 {
        let send_owner = (rank + size - round) % size;
        let recv_owner = (rank + size - round - 1) % size;
        s.push(
            Round::new()
                .recv(prev, win.tag(round), parts[recv_owner])
                .send(next, win.tag(round), parts[send_owner]),
        );
    }
    parts
}

/// Ring reduce-scatter: segment `t` starts at rank `t + 1`, travels once
/// around the ring picking up every rank's contribution, and arrives
/// fully reduced at rank `t`. Requires an `Any`-order operation (see the
/// module docs). Returns the slot of this rank's reduced segment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reduce_scatter(
    s: &mut impl Sched,
    win: TagWindow,
    rank: usize,
    size: usize,
    send: &[u8],
    counts: &[usize],
    kind: PrimitiveKind,
    op: &Op,
) -> Vec<SlotId> {
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let elem = kind.size();
    // The per-destination segments are staged into build-time slots:
    // payload baked into the schedule, never reusable as a template.
    s.uncacheable();
    // Split the local contribution into per-destination segments.
    let mut segs: Vec<SlotId> = Vec::with_capacity(size);
    let mut cursor = 0usize;
    for &c in counts {
        let bytes = c * elem;
        segs.push(s.filled(send[cursor..cursor + bytes].to_vec()));
        cursor += bytes;
    }
    for round in 0..size - 1 {
        let send_idx = (rank + size - 1 - round) % size;
        let recv_idx = (rank + 2 * size - 2 - round) % size;
        let incoming = s.empty();
        let acc = segs[recv_idx];
        let count = counts[recv_idx];
        let op = op.clone();
        s.push(
            Round::new()
                .recv(prev, win.tag(round), incoming)
                .send(next, win.tag(round), segs[send_idx])
                .compute(move |ctx| {
                    let incoming = ctx.take(incoming)?;
                    let seg = ctx.get_mut(acc)?;
                    if incoming.len() != seg.len() {
                        return err(
                            ErrorClass::Count,
                            "reduce_scatter partners disagree on counts",
                        );
                    }
                    op.apply(&incoming, seg, kind, count)?;
                    Ok(())
                }),
        );
    }
    segs
}
