//! Compare two benchmark or analysis JSON files: the perf-regression
//! gate.
//!
//! Two modes, sharing one report shape:
//!
//! * **bench** — two `BENCH_*.json` files (the versioned
//!   `{schema, bench, ..., rows: [...]}` envelope from
//!   [`crate::runmeta`], or a legacy bare row array). Rows are keyed by
//!   their identifying members (string fields plus well-known shape
//!   fields like `bytes`/`ranks`), every other numeric field is
//!   compared as a relative change, and changes beyond the threshold
//!   become report entries. The gate is direction-agnostic: a 2×
//!   speed-up fails it too, because an unexplained improvement in a
//!   tracked number is as suspicious as a regression until a human
//!   re-baselines.
//! * **analysis** — two `causal-analysis-v1` files from
//!   [`crate::causal`]. Compared as *shares*, not absolutes (wall
//!   times vary run to run; the causal structure should not): the
//!   critical path's compute/send/wait/transport composition, per-rank
//!   path shares, and each rank's dominant wait class. Entries are
//!   absolute share deltas beyond the threshold; a dominant-class flip
//!   is always an entry.
//!
//! Mixed or unknown schemas are an error, not a silent pass — that is
//! the point of stamping them.

use std::fmt::Write as _;

use crate::causal::ANALYSIS_SCHEMA;
use crate::tracemerge::Json;

/// Row members treated as identity, not measurement, in bench mode.
/// Beyond the generic shape fields, this names every configuration
/// member the repo's own emitters use, so two sweep cells differing
/// only in (say) payload never collide onto one key.
const ID_KEYS: &[&str] = &[
    "bytes",
    "size",
    "ranks",
    "p",
    "cap",
    "reps",
    "iters",
    "dim",
    "halo",
    "n",
    "warmup",
    "payload_bytes",
    "eager_limit",
    "segment_bytes",
    "link_ns_per_byte",
    "link_bytes_per_sec",
    "manual_tests_per_op",
];

/// One observed difference.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Which row/aspect changed (human-readable key).
    pub key: String,
    /// Which field of it.
    pub field: String,
    /// Value in the `before` file.
    pub before: f64,
    /// Value in the `after` file.
    pub after: f64,
    /// Bench mode: relative change (`after/before - 1`). Analysis
    /// mode: absolute share delta (`after - before`).
    pub delta: f64,
}

/// The outcome of a comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Values compared (matched row/field pairs or shares).
    pub compared: usize,
    /// Changes beyond the threshold.
    pub entries: Vec<DiffEntry>,
    /// Structural observations (rows only on one side, dominant-class
    /// flips, ...).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when nothing moved beyond the threshold.
    pub fn is_clean(&self) -> bool {
        self.entries.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "benchdiff: {} values compared, {} beyond threshold, {} notes",
            self.compared,
            self.entries.len(),
            self.notes.len()
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  {} :: {}: {:.6} -> {:.6} ({:+.1}%)",
                e.key,
                e.field,
                e.before,
                e.after,
                100.0 * e.delta
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

fn schema_of(doc: &Json) -> Option<&str> {
    doc.get("schema").and_then(Json::as_str)
}

/// Extract the rows from a versioned envelope, a sectioned envelope
/// (any top-level array members, e.g. the collectives bench's
/// `cells`/`overlap`/`persistent`), or a legacy bare array. Each row
/// comes tagged with its section name (empty for `rows`/bare arrays) so
/// same-looking rows in different sections never cross-match.
fn rows_of(doc: &Json) -> Result<Vec<(&str, &Json)>, String> {
    if let Some(rows) = doc.get("rows").and_then(Json::as_arr) {
        return Ok(rows.iter().map(|r| ("", r)).collect());
    }
    if let Some(rows) = doc.as_arr() {
        return Ok(rows.iter().map(|r| ("", r)).collect());
    }
    if let Json::Obj(members) = doc {
        let sectioned: Vec<(&str, &Json)> = members
            .iter()
            .filter_map(|(k, v)| v.as_arr().map(|rows| (k.as_str(), rows)))
            .flat_map(|(k, rows)| rows.iter().map(move |r| (k, r)))
            .collect();
        if !sectioned.is_empty() {
            return Ok(sectioned);
        }
    }
    Err("neither a {rows: [...]} envelope, a sectioned object, nor a bare row array".into())
}

/// The identity key of one row: its section, its string members, and
/// its [`ID_KEYS`] numeric members, in file order.
fn row_key(section: &str, row: &Json) -> String {
    let Json::Obj(members) = row else {
        return String::from("?");
    };
    let mut parts = Vec::new();
    if !section.is_empty() {
        parts.push(section.to_string());
    }
    for (k, v) in members {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Num(n) if ID_KEYS.contains(&k.as_str()) => parts.push(format!("{k}={n}")),
            _ => {}
        }
    }
    parts.join(",")
}

/// Compare two bench JSON files (see the module docs). `threshold` is
/// relative: `0.25` flags any field that moved more than 25% either
/// way.
pub fn diff_bench_json(before: &str, after: &str, threshold: f64) -> Result<DiffReport, String> {
    let before = Json::parse(before).map_err(|e| format!("before: {e}"))?;
    let after = Json::parse(after).map_err(|e| format!("after: {e}"))?;
    let mut report = DiffReport::default();
    match (schema_of(&before), schema_of(&after)) {
        (Some(a), Some(b)) if a != b => {
            return Err(format!("schema mismatch: {a:?} vs {b:?}"));
        }
        (None, None) => report
            .notes
            .push("both files are legacy (unversioned)".into()),
        (None, Some(_)) | (Some(_), None) => report
            .notes
            .push("one file is legacy (unversioned) — comparing rows anyway".into()),
        _ => {}
    }
    let before_rows = rows_of(&before).map_err(|e| format!("before: {e}"))?;
    let after_rows = rows_of(&after).map_err(|e| format!("after: {e}"))?;
    let mut after_by_key: Vec<(String, &Json)> = after_rows
        .iter()
        .map(|(section, r)| (row_key(section, r), *r))
        .collect();
    for (section, brow) in before_rows {
        let key = row_key(section, brow);
        let Some(pos) = after_by_key.iter().position(|(k, _)| *k == key) else {
            report.notes.push(format!("row [{key}] only in before"));
            continue;
        };
        let (_, arow) = after_by_key.remove(pos);
        let Json::Obj(members) = brow else { continue };
        for (field, bval) in members {
            let Json::Num(b) = bval else { continue };
            if ID_KEYS.contains(&field.as_str()) {
                continue;
            }
            let Some(a) = arow.get(field).and_then(Json::as_f64) else {
                report
                    .notes
                    .push(format!("row [{key}] field {field} only in before"));
                continue;
            };
            report.compared += 1;
            let delta = if *b == 0.0 {
                if a == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                a / b - 1.0
            };
            if delta.abs() > threshold {
                report.entries.push(DiffEntry {
                    key: key.clone(),
                    field: field.clone(),
                    before: *b,
                    after: a,
                    delta,
                });
            }
        }
    }
    for (key, _) in after_by_key {
        report.notes.push(format!("row [{key}] only in after"));
    }
    Ok(report)
}

/// Share of one component in a critical-path object.
fn path_share(cp: &Json, field: &str) -> f64 {
    let total = cp.get("total_ns").and_then(Json::as_f64).unwrap_or(0.0);
    if total == 0.0 {
        return 0.0;
    }
    cp.get(field).and_then(Json::as_f64).unwrap_or(0.0) / total
}

/// Compare two causal-analysis JSON files as shares (see the module
/// docs). `threshold` is an absolute share delta: `0.15` flags any
/// composition or rank share that moved more than 15 points.
pub fn diff_analysis_json(before: &str, after: &str, threshold: f64) -> Result<DiffReport, String> {
    let before = Json::parse(before).map_err(|e| format!("before: {e}"))?;
    let after = Json::parse(after).map_err(|e| format!("after: {e}"))?;
    for (label, doc) in [("before", &before), ("after", &after)] {
        match schema_of(doc) {
            Some(ANALYSIS_SCHEMA) => {}
            other => {
                return Err(format!(
                    "{label}: schema {other:?}, want {ANALYSIS_SCHEMA:?}"
                ))
            }
        }
    }
    let mut report = DiffReport::default();
    let (bcp, acp) = (
        before
            .get("critical_path")
            .ok_or("before: no critical_path")?,
        after
            .get("critical_path")
            .ok_or("after: no critical_path")?,
    );
    for field in ["compute_ns", "send_ns", "wait_ns", "transport_ns"] {
        let (b, a) = (path_share(bcp, field), path_share(acp, field));
        report.compared += 1;
        if (a - b).abs() > threshold {
            report.entries.push(DiffEntry {
                key: "critical_path composition".into(),
                field: field.trim_end_matches("_ns").into(),
                before: b,
                after: a,
                delta: a - b,
            });
        }
    }
    if let (Some(Json::Obj(bs)), Some(as_)) = (bcp.get("rank_share"), acp.get("rank_share")) {
        for (rank, bval) in bs {
            let (Some(b), Some(a)) = (bval.as_f64(), as_.get(rank).and_then(Json::as_f64)) else {
                continue;
            };
            report.compared += 1;
            if (a - b).abs() > threshold {
                report.entries.push(DiffEntry {
                    key: format!("rank {rank}"),
                    field: "path_share".into(),
                    before: b,
                    after: a,
                    delta: a - b,
                });
            }
        }
    }
    // Dominant wait-class flips are always worth an entry.
    let waits = |doc: &Json| -> Vec<(i64, Option<String>)> {
        doc.get("waits")
            .and_then(Json::as_arr)
            .map(|ws| {
                ws.iter()
                    .filter_map(|w| {
                        Some((
                            w.get("rank")?.as_i64()?,
                            w.get("dominant").and_then(Json::as_str).map(String::from),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let bw = waits(&before);
    for (rank, bdom) in &bw {
        if let Some((_, adom)) = waits(&after).iter().find(|(r, _)| r == rank) {
            report.compared += 1;
            if bdom != adom {
                report.entries.push(DiffEntry {
                    key: format!("rank {rank}"),
                    field: format!(
                        "dominant wait {} -> {}",
                        bdom.as_deref().unwrap_or("none"),
                        adom.as_deref().unwrap_or("none")
                    ),
                    before: 0.0,
                    after: 0.0,
                    delta: 1.0,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BEFORE: &str = r#"{
      "schema": "bench-v1", "bench": "p2p", "commit": "a", "date": "2026-08-07",
      "host": "linux/x86_64/8cpu",
      "rows": [
        {"stack": "wmpijava", "bytes": 1, "one_way_us": 1.0, "bw_mbps": 10.0},
        {"stack": "wmpijava", "bytes": 1024, "one_way_us": 4.0, "bw_mbps": 200.0}
      ]
    }"#;

    #[test]
    fn flags_only_fields_beyond_threshold() {
        let after = BEFORE.replace("\"one_way_us\": 1.0", "\"one_way_us\": 1.6");
        let report = diff_bench_json(BEFORE, &after, 0.25).unwrap();
        assert_eq!(report.compared, 4);
        assert_eq!(report.entries.len(), 1, "{}", report.render());
        assert_eq!(report.entries[0].field, "one_way_us");
        assert!((report.entries[0].delta - 0.6).abs() < 1e-9);
        assert!(diff_bench_json(BEFORE, BEFORE, 0.25).unwrap().is_clean());
    }

    #[test]
    fn schema_mismatch_is_an_error_and_legacy_is_noted() {
        let other = BEFORE.replace("bench-v1", "bench-v2");
        assert!(diff_bench_json(BEFORE, &other, 0.25)
            .unwrap_err()
            .contains("schema mismatch"));
        let legacy = "[{\"stack\": \"wmpijava\", \"bytes\": 1, \"one_way_us\": 1.0}]";
        let report = diff_bench_json(legacy, legacy, 0.25).unwrap();
        assert!(report.notes.iter().any(|n| n.contains("legacy")));
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn sectioned_envelopes_diff_per_section_without_cross_matching() {
        // The same-shaped row appears in two sections; only the `cells`
        // copy changes, and the entry names its section.
        let sectioned = r#"{
          "schema": "bench-v1", "bench": "collectives", "commit": "a",
          "date": "2026-08-07", "host": "linux/x86_64/8cpu",
          "cells": [{"op": "allreduce", "payload_bytes": 64, "us_per_op": 1.0}],
          "persistent": [{"op": "allreduce", "payload_bytes": 64, "us_per_op": 9.0}]
        }"#;
        let after = sectioned.replace("\"us_per_op\": 1.0", "\"us_per_op\": 3.0");
        let report = diff_bench_json(sectioned, &after, 0.25).unwrap();
        assert_eq!(report.compared, 2, "{}", report.render());
        assert_eq!(report.entries.len(), 1, "{}", report.render());
        assert!(
            report.entries[0].key.starts_with("cells,"),
            "{}",
            report.entries[0].key
        );
        assert!(report.notes.is_empty(), "{}", report.render());
    }

    #[test]
    fn unmatched_rows_become_notes() {
        let after = BEFORE.replace("\"bytes\": 1024", "\"bytes\": 2048");
        let report = diff_bench_json(BEFORE, &after, 0.25).unwrap();
        assert!(report.notes.iter().any(|n| n.contains("only in before")));
        assert!(report.notes.iter().any(|n| n.contains("only in after")));
    }

    fn analysis(wait_share: f64, dom: &str) -> String {
        let total = 1_000_000.0;
        let wait = total * wait_share;
        let compute = total - wait;
        format!(
            r#"{{"schema": "causal-analysis-v1",
                "waits": [{{"rank": 0, "dominant": "{dom}"}}],
                "critical_path": {{"total_ns": {total}, "compute_ns": {compute},
                  "send_ns": 0, "wait_ns": {wait}, "transport_ns": 0,
                  "rank_share": {{"0": 1.0}}}}}}"#
        )
    }

    #[test]
    fn analysis_mode_compares_shares_and_dominant_flips() {
        let a = analysis(0.1, "late_sender");
        let same = diff_analysis_json(&a, &a, 0.15).unwrap();
        assert!(same.is_clean(), "{}", same.render());
        // Wait share 0.1 -> 0.4 (delta 0.3) plus a dominant flip.
        let b = analysis(0.4, "coll_imbalance");
        let report = diff_analysis_json(&a, &b, 0.15).unwrap();
        assert!(
            report.entries.iter().any(|e| e.field == "wait"),
            "{}",
            report.render()
        );
        assert!(report
            .entries
            .iter()
            .any(|e| e.field.contains("dominant wait")));
        // Wrong schema refuses.
        let wrong = a.replace("causal-analysis-v1", "bench-v1");
        assert!(diff_analysis_json(&wrong, &b, 0.15).is_err());
    }
}
