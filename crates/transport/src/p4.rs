//! Staged "portable" device modelling MPICH's ch_p4 path.
//!
//! The paper's Solaris numbers come from MPICH layered over the p4
//! portable communication library: messages pass through an extra staging
//! queue and an extra copy compared with the tuned WMPI shared-memory path,
//! and the constant per-message cost is correspondingly higher (Table 1:
//! 148.7 µs vs 67.2 µs for a 1-byte message in SM mode).
//!
//! This device reproduces that *structure*: a send enqueues the frame into a
//! per-destination staging queue; the receiving endpoint's progress step
//! moves it into its real inbox, copying the payload once more (as p4 copies
//! from the device buffer into the MPI receive queue). The result is the
//! same ordering guarantees as [`crate::shm::ShmDevice`] with a genuinely
//! higher per-message cost, which is exactly the contrast the paper's
//! WMPI-vs-MPICH columns show.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::error::{Result, TransportError};
use crate::frame::Frame;
use crate::mailbox::Mailbox;
use crate::nodemap::NodeMap;
use crate::{DeviceKind, DeviceProfile, Endpoint, FabricConfig, NetworkModel, SharedMailbox};

/// One rank's endpoint on the staged p4-style device.
pub struct P4Endpoint {
    rank: usize,
    size: usize,
    /// Final per-rank inboxes (stage 2).
    inboxes: Arc<Vec<SharedMailbox>>,
    /// Per-rank staging queues (stage 1) that sends target.
    staging: Arc<Vec<SharedMailbox>>,
    profile: DeviceProfile,
    network: NetworkModel,
    nodes: Arc<NodeMap>,
}

/// Namespace struct for building p4-style fabrics.
pub struct P4Device;

impl P4Device {
    /// Build `config.size` endpoints.
    pub fn build(config: &FabricConfig) -> Result<Vec<P4Endpoint>> {
        let make = |_| Arc::new(Mailbox::new(config.inbox_capacity));
        let inboxes: Arc<Vec<SharedMailbox>> = Arc::new((0..config.size).map(make).collect());
        let staging: Arc<Vec<SharedMailbox>> = Arc::new((0..config.size).map(make).collect());
        let nodes = Arc::new(config.nodes.clone());
        Ok((0..config.size)
            .map(|rank| P4Endpoint {
                rank,
                size: config.size,
                inboxes: Arc::clone(&inboxes),
                staging: Arc::clone(&staging),
                profile: config.profile,
                network: config.network,
                nodes: Arc::clone(&nodes),
            })
            .collect())
    }
}

impl P4Endpoint {
    fn check_dst(&self, dst: usize) -> Result<()> {
        if dst >= self.size {
            Err(TransportError::RankOutOfRange {
                rank: dst,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// Move every staged frame addressed to this rank into its inbox,
    /// performing the extra device-buffer copy that ch_p4 performs.
    fn progress(&self) -> Result<()> {
        while let Some(mut staged) = self.staging[self.rank].try_pop()? {
            // The extra copy: device buffer -> receive queue buffer.
            if !staged.payload.is_empty() {
                staged.payload = Bytes::from(staged.payload.to_vec());
            }
            self.inboxes[self.rank].push(staged, None)?;
        }
        Ok(())
    }
}

impl Endpoint for P4Endpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, frame: Frame) -> Result<()> {
        let dst = frame.header.dst as usize;
        self.check_dst(dst)?;
        self.profile.charge(frame.len());
        let due = self.network.due(frame.len());
        self.staging[dst].push(frame, due)
    }

    fn recv(&self) -> Result<Frame> {
        loop {
            self.progress()?;
            if let Some(frame) = self.inboxes[self.rank].try_pop()? {
                return Ok(frame);
            }
            // Nothing ready yet: wait on the staging queue so we are woken
            // when a sender enqueues, then loop back through progress().
            if let Some(staged) = self.staging[self.rank].pop_timeout(Duration::from_millis(50))? {
                let mut staged = staged;
                if !staged.payload.is_empty() {
                    staged.payload = Bytes::from(staged.payload.to_vec());
                }
                self.inboxes[self.rank].push(staged, None)?;
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Frame>> {
        self.progress()?;
        self.inboxes[self.rank].try_pop()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            self.progress()?;
            if let Some(frame) = self.inboxes[self.rank].try_pop()? {
                return Ok(Some(frame));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let remaining = deadline - now;
            if let Some(staged) =
                self.staging[self.rank].pop_timeout(remaining.min(Duration::from_millis(20)))?
            {
                let mut staged = staged;
                if !staged.payload.is_empty() {
                    staged.payload = Bytes::from(staged.payload.to_vec());
                }
                self.inboxes[self.rank].push(staged, None)?;
            }
        }
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::ShmP4
    }

    fn node_map(&self) -> &NodeMap {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameHeader, FrameKind};

    fn fabric(n: usize) -> Vec<P4Endpoint> {
        P4Device::build(&FabricConfig::new(n, DeviceKind::ShmP4)).unwrap()
    }

    fn frame(src: usize, dst: usize, tag: i32, payload: &[u8]) -> Frame {
        Frame::new(
            FrameHeader {
                kind: FrameKind::Eager,
                src: src as u32,
                dst: dst as u32,
                tag,
                context: 0,
                token: 0,
                msg_len: payload.len() as u64,
            },
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn staged_round_trip_preserves_payload() {
        let mut eps = fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(frame(0, 1, 9, b"staged ping")).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.header.tag, 9);
        assert_eq!(&got.payload[..], b"staged ping");
    }

    #[test]
    fn order_is_preserved_through_the_staging_queue() {
        let eps = fabric(2);
        for i in 0..100 {
            eps[0].send(frame(0, 1, i, &[i as u8])).unwrap();
        }
        for i in 0..100 {
            let f = eps[1].recv().unwrap();
            assert_eq!(f.header.tag, i);
            assert_eq!(f.payload[0], i as u8);
        }
    }

    #[test]
    fn try_recv_pulls_staged_frames() {
        let eps = fabric(2);
        assert!(eps[1].try_recv().unwrap().is_none());
        eps[0].send(frame(0, 1, 1, b"x")).unwrap();
        let got = eps[1].try_recv().unwrap();
        assert!(got.is_some());
    }

    #[test]
    fn cross_thread_ping_pong() {
        let mut eps = fabric(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..200 {
                let f = b.recv().unwrap();
                assert_eq!(f.header.tag, i);
                b.send(frame(1, 0, i, &f.payload)).unwrap();
            }
        });
        for i in 0..200 {
            a.send(frame(0, 1, i, b"payload")).unwrap();
            let echo = a.recv().unwrap();
            assert_eq!(echo.header.tag, i);
        }
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires_when_idle() {
        let eps = fabric(2);
        let got = eps[1].recv_timeout(Duration::from_millis(30)).unwrap();
        assert!(got.is_none());
    }
}
