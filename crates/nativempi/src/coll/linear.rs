//! The linear (root-centric) collective algorithms — the paper-faithful
//! baseline the seed shipped with.
//!
//! Fan-in / fan-out through a single root: O(P) rounds with all traffic
//! serialized at the root. With the rank counts of the paper's experiments
//! (2–8) they are within a small constant of the tree algorithms, and the
//! strictly sequential rank-order fold is the *reference semantics* every
//! other algorithm must reproduce byte-for-byte — it is also the only
//! pattern that keeps floating `SUM`/`PROD` bit-stable, which is why the
//! tuning layer pins those to `Linear`.
//!
//! These functions never dispatch back through the selector: the linear
//! composites (allgather = gather + bcast, reduce-scatter = reduce +
//! scatter) call the linear primitives directly so a forced-`Linear` run
//! is linear all the way down.

use super::{coll_tag, entries_to_parts, frame_entries, unframe_entries, CollOp};
use crate::comm::CommHandle;
use crate::error::{err, ErrorClass, Result};
use crate::ops::Op;
use crate::types::PrimitiveKind;
use crate::Engine;

impl Engine {
    /// Linear fan-in to rank 0 followed by fan-out.
    pub(crate) fn barrier_linear(&mut self, comm: CommHandle) -> Result<()> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let fan_in = coll_tag(CollOp::Barrier, 0);
        let fan_out = coll_tag(CollOp::Barrier, 1);
        if rank == 0 {
            for src in 1..size {
                self.recv_collective(comm, src as i32, fan_in)?;
            }
            for dst in 1..size {
                self.send_collective(comm, dst as i32, fan_out, &[])?;
            }
        } else {
            self.send_collective(comm, 0, fan_in, &[])?;
            self.recv_collective(comm, 0, fan_out)?;
        }
        Ok(())
    }

    /// The root sends the payload to every other rank in turn.
    pub(crate) fn bcast_linear(
        &mut self,
        comm: CommHandle,
        root: usize,
        buf: &mut Vec<u8>,
    ) -> Result<()> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let tag = coll_tag(CollOp::Bcast, 0);
        if rank == root {
            for dst in 0..size {
                if dst != root {
                    self.send_collective(comm, dst as i32, tag, buf)?;
                }
            }
        } else {
            let (data, _) = self.recv_collective(comm, root as i32, tag)?;
            *buf = data;
        }
        Ok(())
    }

    /// The root receives one contribution per rank, in rank order.
    pub(crate) fn gather_linear(
        &mut self,
        comm: CommHandle,
        root: usize,
        send: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let tag = coll_tag(CollOp::Gather, 0);
        if rank == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); size];
            out[root] = send.to_vec();
            #[allow(clippy::needless_range_loop)] // skip-one loop is clearest as indices
            for src in 0..size {
                if src != root {
                    let (data, _) = self.recv_collective(comm, src as i32, tag)?;
                    out[src] = data;
                }
            }
            Ok(Some(out))
        } else {
            self.send_collective(comm, root as i32, tag, send)?;
            Ok(None)
        }
    }

    /// The root sends each rank its chunk in turn.
    pub(crate) fn scatter_linear(
        &mut self,
        comm: CommHandle,
        root: usize,
        chunks: Option<&[Vec<u8>]>,
    ) -> Result<Vec<u8>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let tag = coll_tag(CollOp::Scatter, 0);
        if rank == root {
            let chunks = chunks.expect("validated by the dispatch layer");
            #[allow(clippy::needless_range_loop)] // skip-one loop is clearest as indices
            for dst in 0..size {
                if dst != root {
                    self.send_collective(comm, dst as i32, tag, &chunks[dst])?;
                }
            }
            Ok(chunks[root].clone())
        } else {
            let (data, _) = self.recv_collective(comm, root as i32, tag)?;
            Ok(data)
        }
    }

    /// Gather to rank 0, then broadcast the framed concatenation (the
    /// per-rank buffers may have different lengths — that is what makes
    /// this double as allgatherv).
    pub(crate) fn allgather_linear(
        &mut self,
        comm: CommHandle,
        send: &[u8],
    ) -> Result<Vec<Vec<u8>>> {
        let size = self.comm_size(comm)?;
        let gathered = self.gather_linear(comm, 0, send)?;
        let mut wire = match gathered {
            Some(parts) => {
                let entries: Vec<(u32, Vec<u8>)> = parts
                    .into_iter()
                    .enumerate()
                    .map(|(r, p)| (r as u32, p))
                    .collect();
                frame_entries(&entries)
            }
            None => Vec::new(),
        };
        self.bcast_linear(comm, 0, &mut wire)?;
        entries_to_parts(unframe_entries(&wire)?, size)
    }

    /// Posted pairwise exchange: every receive is posted before any send,
    /// then everything completes.
    pub(crate) fn alltoall_linear(
        &mut self,
        comm: CommHandle,
        chunks: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let tag = coll_tag(CollOp::Alltoall, 0);
        let mut recv_reqs = Vec::with_capacity(size);
        for src in 0..size {
            if src != rank {
                recv_reqs.push((
                    src,
                    self.irecv_on_context(comm, src as i32, tag, None, true)?,
                ));
            }
        }
        let mut send_reqs = Vec::with_capacity(size);
        #[allow(clippy::needless_range_loop)] // skip-one loop is clearest as indices
        for dst in 0..size {
            if dst != rank {
                send_reqs.push(self.isend_on_context(
                    comm,
                    dst as i32,
                    tag,
                    &chunks[dst],
                    crate::types::SendMode::Standard,
                    true,
                )?);
            }
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); size];
        out[rank] = chunks[rank].clone();
        for (src, req) in recv_reqs {
            let completion = self.wait(req)?;
            out[src] = completion.data.map(Vec::from).unwrap_or_default();
        }
        for req in send_reqs {
            self.wait(req)?;
        }
        Ok(out)
    }

    /// Collect contributions at the root and fold them strictly in rank
    /// order — the reference fold for every other reduction algorithm.
    pub(crate) fn reduce_linear(
        &mut self,
        comm: CommHandle,
        root: usize,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<Option<Vec<u8>>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let need = kind.size() * count;
        let tag = coll_tag(CollOp::Reduce, 0);
        if rank == root {
            let mut contributions: Vec<Vec<u8>> = vec![Vec::new(); size];
            contributions[root] = send.to_vec();
            #[allow(clippy::needless_range_loop)] // skip-one loop is clearest as indices
            for src in 0..size {
                if src != root {
                    let (data, _) = self.recv_collective(comm, src as i32, tag)?;
                    if data.len() < need {
                        return err(ErrorClass::Count, "reduce contribution too short");
                    }
                    contributions[src] = data;
                }
            }
            let mut acc = contributions[0][..need].to_vec();
            for contribution in contributions.iter().skip(1) {
                op.apply(&contribution[..need], &mut acc, kind, count)?;
            }
            Ok(Some(acc))
        } else {
            self.send_collective(comm, root as i32, tag, send)?;
            Ok(None)
        }
    }

    /// Reduce the full vector at rank 0, then scatter `counts[i]`-element
    /// segments.
    pub(crate) fn reduce_scatter_linear(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        counts: &[usize],
        kind: PrimitiveKind,
        op: &Op,
    ) -> Result<Vec<u8>> {
        let size = self.comm_size(comm)?;
        let rank = self.comm_rank(comm)?;
        let total: usize = counts.iter().sum();
        let reduced = self.reduce_linear(comm, 0, send, kind, total, op)?;
        let chunks: Option<Vec<Vec<u8>>> = reduced.map(|full| {
            let mut out = Vec::with_capacity(size);
            let mut cursor = 0usize;
            for &c in counts {
                let bytes = c * kind.size();
                out.push(full[cursor..cursor + bytes].to_vec());
                cursor += bytes;
            }
            out
        });
        let my_chunk = self.scatter_linear(comm, 0, chunks.as_deref())?;
        debug_assert_eq!(my_chunk.len(), counts[rank] * kind.size());
        Ok(my_chunk)
    }

    /// Inclusive prefix pipeline: receive the prefix of the lower ranks,
    /// fold own contribution, pass it on.
    pub(crate) fn scan_linear(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<Vec<u8>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        let tag = coll_tag(CollOp::Scan, 0);
        let mut acc = send.to_vec();
        if rank > 0 {
            let (prefix, _) = self.recv_collective(comm, (rank - 1) as i32, tag)?;
            // acc = prefix op own  (rank order: lower ranks first)
            let mut folded = prefix;
            op.apply(&acc, &mut folded, kind, count)?;
            acc = folded;
        }
        if rank + 1 < size {
            self.send_collective(comm, (rank + 1) as i32, tag, &acc)?;
        }
        Ok(acc)
    }
}
