//! Workspace-level support crate for the mpijava-rs reproduction.
//!
//! The real deliverables live in `crates/`; this root package exists to
//! host the runnable examples (`examples/`) and the cross-crate
//! integration test suite (`tests/`), which mirrors the IBM MPI test suite
//! the paper translated to mpiJava (§3.4). The helpers here are shared by
//! those tests.

use mpijava::{DeviceKind, MpiRuntime, NodeMap};

/// The fabric configurations the functionality tests run under,
/// mirroring the paper's Shared-Memory and Distributed-Memory modes
/// (§3.4 runs the whole suite in both) plus the multi-fabric hybrid
/// configuration (ranks block-split across two nodes; intra-node
/// traffic over the shm-class path, inter-node over the modelled link,
/// with the tuned selector auto-picking the hierarchical collectives)
/// and the fault-tolerant spool device (filesystem frames with
/// heartbeat leases — the failure-detection substrate).
pub fn test_runtimes(size: usize) -> Vec<(&'static str, MpiRuntime)> {
    vec![
        ("SM/shm-fast", MpiRuntime::new(size)),
        ("SM/shm-p4", MpiRuntime::new(size).device(DeviceKind::ShmP4)),
        ("DM/tcp", MpiRuntime::new(size).device(DeviceKind::Tcp)),
        (
            "MM/hybrid-2node",
            MpiRuntime::new(size)
                .device(DeviceKind::Hybrid)
                .nodes(NodeMap::split(size, 2)),
        ),
        ("FT/spool", MpiRuntime::new(size).device(DeviceKind::Spool)),
    ]
}

/// Convenience: assert two `f64` slices are element-wise close.
pub fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "element {i} differs: {x} vs {y} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtimes_cover_both_modes() {
        let runtimes = test_runtimes(2);
        assert_eq!(runtimes.len(), 5);
        assert!(runtimes.iter().any(|(name, _)| name.starts_with("SM")));
        assert!(runtimes.iter().any(|(name, _)| name.starts_with("DM")));
        assert!(runtimes.iter().any(|(name, _)| name.starts_with("MM")));
        assert!(runtimes.iter().any(|(name, _)| name.starts_with("FT")));
    }

    #[test]
    #[should_panic(expected = "element 1 differs")]
    fn assert_close_catches_differences() {
        assert_close(&[1.0, 2.0], &[1.0, 2.5], 0.1);
    }
}
