//! Persistent-operation integration suite: `send_init`/`recv_init` and
//! the persistent collectives (`MPI_*_init` of the MPI-4 persistent
//! collective chapter) through the `rs` surface, on every transport
//! device.
//!
//! The drop-safety and finalize-refusal tests mirror the nonblocking
//! suite's pattern: `finalize()` doubles as the leak probe — it fails
//! if a dropped handle left engine-side state behind — and refuses to
//! run while a started persistent operation has not been waited on.

use mpijava::rs::Communicator;
use mpijava::{MpiRuntime, Op};
use mpijava_suite::test_runtimes;

/// Persistent point-to-point: one `send_init`/`recv_init` pair reused
/// across several `start()`/`wait()` iterations, on every device.
#[test]
fn persistent_p2p_round_trips_on_every_device() {
    for (name, runtime) in test_runtimes(2) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                const ROUNDS: usize = 3;
                if rank == 0 {
                    let send = vec![7i32, 8, 9, 10];
                    let mut req = world.send_init(&send, 1, 42)?;
                    for _ in 0..ROUNDS {
                        req.start()?;
                        req.wait()?;
                    }
                    req.free()?;
                } else {
                    let mut buf = vec![0i32; 4];
                    {
                        let mut req = world.recv_init(&mut buf, 0, 42)?;
                        for _ in 0..ROUNDS {
                            req.start()?;
                            let status = req.wait()?;
                            assert_eq!(status.count_bytes(), 16);
                        }
                        req.free()?;
                    }
                    assert_eq!(buf, vec![7, 8, 9, 10]);
                }
                mpi.finalize()
            })
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
}

/// Every persistent collective, reused across iterations, produces the
/// same results as its transient twin — on every device.
#[test]
fn persistent_collectives_match_their_transient_twins_on_every_device() {
    for (name, runtime) in test_runtimes(4) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;
                let size = world.size()?;
                const ROUNDS: usize = 3;

                // Transient twins first, into separate buffers.
                let mut bcast_t = if rank == 0 {
                    vec![11i32, 22, 33]
                } else {
                    vec![0i32; 3]
                };
                world.broadcast(&mut bcast_t, 0)?;
                let send: Vec<i32> = (0..8).map(|i| i * (rank as i32 + 1)).collect();
                let mut reduce_t = vec![0i32; 8];
                world.reduce_into(&send, &mut reduce_t, Op::sum(), 0)?;
                let mut allreduce_t = vec![0i32; 8];
                world.all_reduce(&send, &mut allreduce_t, Op::sum())?;
                let contrib = vec![rank as i32; 2];
                let mut gather_t = vec![0i32; 2 * size];
                world.all_gather(&contrib, &mut gather_t)?;

                // Persistent editions: init once, start/wait ROUNDS times.
                let mut bcast_p = if rank == 0 {
                    vec![11i32, 22, 33]
                } else {
                    vec![0i32; 3]
                };
                let mut reduce_p = vec![0i32; 8];
                let mut allreduce_p = vec![0i32; 8];
                let mut gather_p = vec![0i32; 2 * size];
                {
                    let mut barrier = world.barrier_init()?;
                    let mut bcast = world.broadcast_init(&mut bcast_p, 0)?;
                    let mut reduce = world.reduce_init_into(&send, &mut reduce_p, Op::sum(), 0)?;
                    let mut allreduce =
                        world.all_reduce_init(&send, &mut allreduce_p, Op::sum())?;
                    let mut gather = world.all_gather_init(&contrib, &mut gather_p)?;
                    for _ in 0..ROUNDS {
                        for req in [
                            &mut barrier,
                            &mut bcast,
                            &mut reduce,
                            &mut allreduce,
                            &mut gather,
                        ] {
                            req.start()?;
                            req.wait()?;
                        }
                    }
                }
                assert_eq!(bcast_p, bcast_t, "bcast");
                if rank == 0 {
                    assert_eq!(reduce_p, reduce_t, "reduce");
                }
                assert_eq!(allreduce_p, allreduce_t, "allreduce");
                assert_eq!(gather_p, gather_t, "allgather");
                mpi.finalize()
            })
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
}

/// `start_all` launches a batch; the requests complete independently.
#[test]
fn start_all_launches_a_persistent_batch() {
    MpiRuntime::new(3)
        .run(|mpi| {
            use mpijava::PersistentRequest;
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let send = vec![rank as i32 + 1; 4];
            let mut recv = vec![0i32; 4];
            {
                let barrier = world.barrier_init()?;
                let allreduce = world.all_reduce_init(&send, &mut recv, Op::sum())?;
                let mut batch = [barrier, allreduce];
                for _ in 0..2 {
                    PersistentRequest::start_all(&mut batch)?;
                    for req in &mut batch {
                        req.wait()?;
                        assert!(!req.is_active());
                    }
                }
            }
            assert_eq!(recv, vec![6i32; 4]); // 1 + 2 + 3
            mpi.finalize()
        })
        .unwrap();
}

/// Starting an already-active persistent request is an error; waiting
/// (or testing) an inactive one is a no-op with an empty status, per
/// the standard's `MPI_Wait` on an inactive request.
#[test]
fn start_while_active_errors_and_wait_while_inactive_is_empty() {
    MpiRuntime::new(1)
        .run(|mpi| {
            let world = mpi.comm_world();
            let mut req = world.barrier_init()?;
            // Inactive: wait and test both succeed vacuously.
            let status = req.wait()?;
            assert_eq!(status.count_bytes(), 0);
            assert!(req.test()?.is_some());
            req.start()?;
            let err = req.start();
            assert!(
                err.is_err(),
                "second start() on an active request must fail"
            );
            req.wait()?;
            req.free()?;
            mpi.finalize()
        })
        .unwrap();
}

/// Dropping a persistent request with an in-flight `start()` quiesces
/// the operation — engine state is released, and `finalize()` (the leak
/// probe) succeeds afterwards. On every device.
#[test]
fn dropping_in_flight_persistent_requests_quiesces_on_every_device() {
    for (name, runtime) in test_runtimes(3) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()?;

                // Collective: every rank starts, nobody waits — the
                // drops themselves must drive the schedule to completion.
                let send = vec![rank as i32 + 1; 8];
                let mut recv = vec![0i32; 8];
                {
                    let mut req = world.all_reduce_init(&send, &mut recv, Op::sum())?;
                    req.start()?;
                }

                // Point-to-point: the sender drops an in-flight
                // persistent send; a plain receive completes it.
                if rank == 0 {
                    let payload = vec![5i32; 16];
                    let mut req = world.send_init(&payload, 1, 9)?;
                    req.start()?;
                    drop(req);
                } else if rank == 1 {
                    let mut buf = vec![0i32; 16];
                    world.recv_into(&mut buf, 0, 9)?;
                    assert_eq!(buf, vec![5i32; 16]);
                }

                // A never-started handle just unregisters on drop.
                {
                    let _idle = world.barrier_init()?;
                }

                world.barrier()?;
                mpi.finalize()
            })
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
}

/// `finalize()` refuses to run while a persistent operation is started
/// but not yet waited on — and succeeds once it is quiesced. On every
/// device.
#[test]
fn finalize_refuses_started_persistent_operations_on_every_device() {
    for (name, runtime) in test_runtimes(2) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let mut req = world.barrier_init()?;
                req.start()?;
                assert!(
                    mpi.finalize().is_err(),
                    "finalize must refuse a started persistent operation"
                );
                req.wait()?;
                req.free()?;
                mpi.finalize()
            })
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
}
