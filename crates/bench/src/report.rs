//! Table and figure formatting: prints the same rows/series the paper
//! reports (Table 1, Figures 5 and 6) as aligned text and CSV.

use crate::pingpong::{Mode, PingPongPoint, Stack};

/// One named bandwidth-vs-size series (one curve of Figure 5 / Figure 6).
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    pub points: Vec<PingPongPoint>,
}

/// Format the reproduction of Table 1: one row per mode, one column per
/// stack, entries in microseconds for a 1-byte message.
pub fn format_table1(rows: &[(Mode, Vec<(Stack, f64)>)]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: time for 1-byte messages (one-way, microseconds)\n");
    out.push_str(&format!("{:>4}", ""));
    for stack in Stack::all() {
        out.push_str(&format!(" {:>10}", stack.label()));
    }
    out.push('\n');
    for (mode, entries) in rows {
        out.push_str(&format!("{:>4}", mode.label()));
        for stack in Stack::all() {
            match entries.iter().find(|(s, _)| *s == stack) {
                Some((_, us)) => out.push_str(&format!(" {us:>10.1}")),
                None => out.push_str(&format!(" {:>10}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Format a bandwidth-vs-size table (the data behind Figure 5 / Figure 6):
/// one row per message size, one column per series, bandwidth in MBytes/s.
pub fn format_bandwidth_table(title: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>10}", "bytes"));
    for s in series {
        out.push_str(&format!(" {:>12}", s.label));
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.size).collect())
        .unwrap_or_default();
    for (i, size) in sizes.iter().enumerate() {
        out.push_str(&format!("{size:>10}"));
        for s in series {
            match s.points.get(i) {
                Some(p) => out.push_str(&format!(" {:>12.3}", p.bandwidth_mb_s)),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// CSV form of a set of series (size, then one bandwidth column per
/// series), convenient for re-plotting the figures.
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::from("bytes");
    for s in series {
        out.push(',');
        out.push_str(&s.label);
    }
    out.push('\n');
    let sizes: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.size).collect())
        .unwrap_or_default();
    for (i, size) in sizes.iter().enumerate() {
        out.push_str(&size.to_string());
        for s in series {
            out.push(',');
            if let Some(p) = s.points.get(i) {
                out.push_str(&format!("{:.4}", p.bandwidth_mb_s));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(size: usize, us: f64) -> PingPongPoint {
        PingPongPoint {
            size,
            one_way_us: us,
            bandwidth_mb_s: size as f64 / us,
        }
    }

    #[test]
    fn table1_lists_every_stack_column() {
        let rows = vec![
            (
                Mode::SharedMemory,
                Stack::all().iter().map(|&s| (s, 10.0)).collect(),
            ),
            (Mode::DistributedMemory, vec![(Stack::WmpiC, 250.0)]),
        ];
        let text = format_table1(&rows);
        for stack in Stack::all() {
            assert!(text.contains(stack.label()));
        }
        assert!(text.contains("SM") && text.contains("DM"));
        assert!(text.contains("250.0"));
    }

    #[test]
    fn bandwidth_table_has_one_row_per_size() {
        let series = vec![
            Series {
                label: "WMPI-C".into(),
                points: vec![point(1, 10.0), point(1024, 20.0)],
            },
            Series {
                label: "WMPI-J".into(),
                points: vec![point(1, 15.0), point(1024, 25.0)],
            },
        ];
        let text = format_bandwidth_table("Figure 5", &series);
        assert_eq!(text.lines().count(), 2 + 2);
        let csv = to_csv(&series);
        assert!(csv.starts_with("bytes,WMPI-C,WMPI-J"));
        assert_eq!(csv.lines().count(), 3);
    }
}
