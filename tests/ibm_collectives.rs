//! Functionality tests, collective-operations category (paper §3.4).

use mpijava::{Datatype, MpiRuntime, Op, PrimitiveKind};
use mpijava_suite::{assert_close, test_runtimes};

#[test]
fn barrier_bcast_under_all_devices() {
    for (label, runtime) in test_runtimes(3) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                world.barrier()?;
                let mut buf = vec![0f64; 16];
                if world.rank()? == 1 {
                    buf.iter_mut().enumerate().for_each(|(i, v)| *v = i as f64);
                }
                world.bcast(&mut buf, 0, 16, &Datatype::double(), 1)?;
                assert_close(&buf, &(0..16).map(|i| i as f64).collect::<Vec<_>>(), 0.0);
                world.barrier()?;
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn gather_and_scatter_round_trip() {
    MpiRuntime::new(4)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let size = world.size()?;
            // Gather 3 ints from every rank at root 2.
            let send = [rank as i32, rank as i32 * 10, rank as i32 * 100];
            let mut gathered = vec![-1i32; 3 * size];
            world.gather(
                &send,
                0,
                3,
                &Datatype::int(),
                &mut gathered,
                0,
                3,
                &Datatype::int(),
                2,
            )?;
            if rank == 2 {
                for r in 0..size {
                    assert_eq!(
                        &gathered[r * 3..r * 3 + 3],
                        &[r as i32, r as i32 * 10, r as i32 * 100]
                    );
                }
            } else {
                assert!(gathered.iter().all(|&v| v == -1));
            }

            // Scatter the gathered buffer back out from root 2.
            let mut mine = [0i32; 3];
            world.scatter(
                &gathered,
                0,
                3,
                &Datatype::int(),
                &mut mine,
                0,
                3,
                &Datatype::int(),
                2,
            )?;
            if rank == 2 {
                assert_eq!(mine, send);
            }
            // Every rank receives its own original contribution.
            if rank == 2 {
                assert_eq!(mine, [2, 20, 200]);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn gatherv_and_scatterv_with_uneven_counts() {
    MpiRuntime::new(3)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            // Rank r contributes r+1 doubles.
            let send: Vec<f64> = (0..rank + 1).map(|i| (rank * 10 + i) as f64).collect();
            let counts = [1usize, 2, 3];
            let displs = [0usize, 1, 3];
            let mut gathered = vec![0f64; 6];
            world.gatherv(
                &send,
                0,
                rank + 1,
                &Datatype::double(),
                &mut gathered,
                0,
                &counts,
                &displs,
                &Datatype::double(),
                0,
            )?;
            if rank == 0 {
                assert_close(&gathered, &[0.0, 10.0, 11.0, 20.0, 21.0, 22.0], 0.0);
            }

            // Scatter it back out unevenly from rank 0.
            let mut back = vec![0f64; rank + 1];
            world.scatterv(
                &gathered,
                0,
                &counts,
                &displs,
                &Datatype::double(),
                &mut back,
                0,
                rank + 1,
                &Datatype::double(),
                0,
            )?;
            if rank > 0 {
                // Non-roots received whatever rank 0 had in `gathered`
                // (zeros unless rank 0, which holds the real data).
                assert_eq!(back.len(), rank + 1);
            } else {
                assert_close(&back, &[0.0], 0.0);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn allgather_and_alltoall() {
    MpiRuntime::new(4)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()? as i32;
            let size = world.size()?;

            let mut everyone = vec![0i32; size];
            world.allgather(
                &[rank],
                0,
                1,
                &Datatype::int(),
                &mut everyone,
                0,
                1,
                &Datatype::int(),
            )?;
            assert_eq!(everyone, vec![0, 1, 2, 3]);

            // alltoall: element sent to rank d is rank*10 + d.
            let send: Vec<i32> = (0..size as i32).map(|d| rank * 10 + d).collect();
            let mut recv = vec![0i32; size];
            world.alltoall(
                &send,
                0,
                1,
                &Datatype::int(),
                &mut recv,
                0,
                1,
                &Datatype::int(),
            )?;
            for (src, &v) in recv.iter().enumerate() {
                assert_eq!(v, src as i32 * 10 + rank);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn reduce_allreduce_scan_with_predefined_ops() {
    for (label, runtime) in test_runtimes(4) {
        runtime
            .run(|mpi| {
                let world = mpi.comm_world();
                let rank = world.rank()? as i32;
                let size = world.size()? as i32;

                let send = [rank + 1, -(rank + 1)];
                let mut recv = [0i32; 2];
                world.reduce(&send, 0, &mut recv, 0, 2, &Datatype::int(), &Op::sum(), 0)?;
                if rank == 0 {
                    let total: i32 = (1..=size).sum();
                    assert_eq!(recv, [total, -total]);
                }

                let mut max = [0i32; 2];
                world.allreduce(&send, 0, &mut max, 0, 2, &Datatype::int(), &Op::max())?;
                assert_eq!(max, [size, -1]);

                let mut prefix = [0i32; 2];
                world.scan(&send, 0, &mut prefix, 0, 2, &Datatype::int(), &Op::sum())?;
                let expect: i32 = (1..=rank + 1).sum();
                assert_eq!(prefix, [expect, -expect]);
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn reduce_scatter_distributes_reduced_segments() {
    MpiRuntime::new(3)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            let counts = [2usize, 1, 3];
            let send: Vec<f64> = (0..6).map(|i| (rank * 6 + i) as f64).collect();
            let mut recv = vec![0f64; counts[rank]];
            world.reduce_scatter(
                &send,
                0,
                &mut recv,
                0,
                &counts,
                &Datatype::double(),
                &Op::sum(),
            )?;
            // Element j of the reduced vector is sum over ranks of (rank*6 + j) = 18 + 3j.
            let offset: usize = counts[..rank].iter().sum();
            for (k, &v) in recv.iter().enumerate() {
                let j = offset + k;
                assert_eq!(v, 18.0 + 3.0 * j as f64);
            }
            Ok(())
        })
        .unwrap();
}

#[test]
fn maxloc_finds_owning_rank() {
    MpiRuntime::new(4)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()? as i32;
            // (value, index) pairs: value peaks at rank 2.
            let value = if rank == 2 { 1000 } else { rank };
            let send = [value, rank];
            let mut recv = [0i32; 2];
            world.allreduce(&send, 0, &mut recv, 0, 1, &Datatype::int2(), &Op::maxloc())?;
            assert_eq!(recv, [1000, 2]);

            let mut min = [0i32; 2];
            world.allreduce(&send, 0, &mut min, 0, 1, &Datatype::int2(), &Op::minloc())?;
            assert_eq!(min, [0, 0]);
            Ok(())
        })
        .unwrap();
}

#[test]
fn user_defined_operation_applies_in_rank_order() {
    MpiRuntime::new(3)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()? as i32;
            let op = Op::user(
                |incoming, acc, kind, count| {
                    assert_eq!(kind, PrimitiveKind::Int);
                    for i in 0..count {
                        let a = i32::from_le_bytes(acc[i * 4..(i + 1) * 4].try_into().unwrap());
                        let b =
                            i32::from_le_bytes(incoming[i * 4..(i + 1) * 4].try_into().unwrap());
                        acc[i * 4..(i + 1) * 4].copy_from_slice(&(a * 10 + b).to_le_bytes());
                    }
                    Ok(())
                },
                false,
            );
            let mut out = [0i32; 1];
            world.allreduce(&[rank + 1], 0, &mut out, 0, 1, &Datatype::int(), &op)?;
            assert_eq!(out, [123]);
            Ok(())
        })
        .unwrap();
}

#[test]
fn collectives_on_derived_datatypes() {
    MpiRuntime::new(2)
        .run(|mpi| {
            let world = mpi.comm_world();
            let rank = world.rank()?;
            // Broadcast a strided vector: 3 blocks of 1 double, stride 2.
            let stride_type = Datatype::vector(3, 1, 2, &Datatype::double()).unwrap();
            let mut buf = if rank == 0 {
                vec![1.0, -1.0, 2.0, -1.0, 3.0, -1.0]
            } else {
                vec![0.0; 6]
            };
            world.bcast(&mut buf, 0, 1, &stride_type, 0)?;
            assert_eq!(buf[0], 1.0);
            assert_eq!(buf[2], 2.0);
            assert_eq!(buf[4], 3.0);
            if rank == 1 {
                // Holes are untouched on the receiver.
                assert_eq!(buf[1], 0.0);
                assert_eq!(buf[3], 0.0);
            }
            Ok(())
        })
        .unwrap();
}
