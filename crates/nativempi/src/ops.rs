//! Reduction operations (MPI-1.1 §4.9.2) over raw byte buffers.
//!
//! The engine's collective layer hands this module two byte buffers that
//! contain `count` elements of a [`PrimitiveKind`]; `apply` combines the
//! incoming buffer into the accumulator element by element. All the MPI
//! predefined operations are provided, plus user-defined operations as
//! boxed closures (mirroring `MPI_Op_create` / the mpiJava `User_function`).

use std::sync::Arc;

use crate::error::{err, ErrorClass, Result};
use crate::types::PrimitiveKind;

/// The MPI predefined reduction operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredefinedOp {
    Max,
    Min,
    Sum,
    Prod,
    Land,
    Band,
    Lor,
    Bor,
    Lxor,
    Bxor,
    Maxloc,
    Minloc,
}

/// A reduction operation: predefined or user supplied.
///
/// User functions receive `(incoming, accumulator, kind, count)` and must
/// fold `incoming` into `accumulator`; this is the `commute = true` shape of
/// `MPI_Op_create` (the engine always reduces in rank order, so
/// non-commutative user operations still see a deterministic order).
#[derive(Clone)]
pub enum Op {
    Predefined(PredefinedOp),
    User(UserFn),
}

/// A user reduction function: folds `(incoming, accumulator, kind, count)`.
pub type UserFn = Arc<dyn Fn(&[u8], &mut [u8], PrimitiveKind, usize) -> Result<()> + Send + Sync>;

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Predefined(p) => write!(f, "Op::{p:?}"),
            Op::User(_) => write!(f, "Op::User(..)"),
        }
    }
}

impl Op {
    /// Fold `incoming` into `acc`, treating both as `count` elements of
    /// `kind`.
    pub fn apply(
        &self,
        incoming: &[u8],
        acc: &mut [u8],
        kind: PrimitiveKind,
        count: usize,
    ) -> Result<()> {
        let elem = kind.size();
        let need = elem * count;
        if incoming.len() < need || acc.len() < need {
            return err(
                ErrorClass::Count,
                format!(
                    "reduce: need {} bytes, have {} (in) / {} (acc)",
                    need,
                    incoming.len(),
                    acc.len()
                ),
            );
        }
        match self {
            Op::User(f) => f(incoming, acc, kind, count),
            Op::Predefined(op) => apply_predefined(*op, incoming, acc, kind, count),
        }
    }
}

/// Integer scalar types the engine reduces directly.
trait IntScalar:
    Copy
    + PartialOrd
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
{
    const ZERO: Self;
    const ONE: Self;
    const WIDTH: usize;
    fn read_le(bytes: &[u8]) -> Self;
    fn write_le(&self, out: &mut [u8]);
}

macro_rules! impl_int_scalar {
    ($($t:ty),*) => {$(
        impl IntScalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes[..Self::WIDTH].try_into().unwrap())
            }
            fn write_le(&self, out: &mut [u8]) {
                out[..Self::WIDTH].copy_from_slice(&self.to_le_bytes());
            }
        }
    )*}
}
impl_int_scalar!(u8, u16, i16, i32, i64);

fn apply_predefined(
    op: PredefinedOp,
    incoming: &[u8],
    acc: &mut [u8],
    kind: PrimitiveKind,
    count: usize,
) -> Result<()> {
    use PrimitiveKind as K;
    match kind {
        K::Byte | K::Packed => int_reduce::<u8>(op, incoming, acc, count),
        K::Boolean => logical_reduce(op, incoming, acc, count),
        K::Char => int_reduce::<u16>(op, incoming, acc, count),
        K::Short => int_reduce::<i16>(op, incoming, acc, count),
        K::Int => int_reduce::<i32>(op, incoming, acc, count),
        K::Long => int_reduce::<i64>(op, incoming, acc, count),
        K::Float => float_reduce::<f32, 4>(op, incoming, acc, count),
        K::Double => float_reduce::<f64, 8>(op, incoming, acc, count),
        K::Int2 => pairloc_reduce::<i32, 4>(op, incoming, acc, count),
        K::Long2 => pairloc_reduce::<i64, 8>(op, incoming, acc, count),
        K::Short2 => pairloc_reduce::<i16, 2>(op, incoming, acc, count),
        K::Float2 => pairloc_float_reduce::<f32, 4>(op, incoming, acc, count),
        K::Double2 => pairloc_float_reduce::<f64, 8>(op, incoming, acc, count),
    }
}

fn int_reduce<T: IntScalar>(
    op: PredefinedOp,
    incoming: &[u8],
    acc: &mut [u8],
    count: usize,
) -> Result<()> {
    for i in 0..count {
        let lo = i * T::WIDTH;
        let hi = lo + T::WIDTH;
        let a = T::read_le(&acc[lo..hi]);
        let b = T::read_le(&incoming[lo..hi]);
        let r = int_combine(op, a, b)?;
        r.write_le(&mut acc[lo..hi]);
    }
    Ok(())
}

/// Integer combine covering every predefined op valid on integers.
fn int_combine<T: IntScalar>(op: PredefinedOp, a: T, b: T) -> Result<T> {
    Ok(match op {
        PredefinedOp::Max => {
            if a >= b {
                a
            } else {
                b
            }
        }
        PredefinedOp::Min => {
            if a <= b {
                a
            } else {
                b
            }
        }
        PredefinedOp::Sum => a + b,
        PredefinedOp::Prod => a * b,
        PredefinedOp::Band => a & b,
        PredefinedOp::Bor => a | b,
        PredefinedOp::Bxor => a ^ b,
        PredefinedOp::Land => {
            if a != T::ZERO && b != T::ZERO {
                T::ONE
            } else {
                T::ZERO
            }
        }
        PredefinedOp::Lor => {
            if a != T::ZERO || b != T::ZERO {
                T::ONE
            } else {
                T::ZERO
            }
        }
        PredefinedOp::Lxor => {
            if (a != T::ZERO) ^ (b != T::ZERO) {
                T::ONE
            } else {
                T::ZERO
            }
        }
        PredefinedOp::Maxloc | PredefinedOp::Minloc => {
            return err(
                ErrorClass::Op,
                "MAXLOC/MINLOC require a pair datatype (INT2, DOUBLE2, ...)",
            )
        }
    })
}

fn logical_reduce(op: PredefinedOp, incoming: &[u8], acc: &mut [u8], count: usize) -> Result<()> {
    for i in 0..count {
        let a = acc[i] != 0;
        let b = incoming[i] != 0;
        let r = match op {
            PredefinedOp::Land | PredefinedOp::Band | PredefinedOp::Prod | PredefinedOp::Min => {
                a && b
            }
            PredefinedOp::Lor | PredefinedOp::Bor | PredefinedOp::Max => a || b,
            PredefinedOp::Lxor | PredefinedOp::Bxor => a ^ b,
            PredefinedOp::Sum => a || b,
            PredefinedOp::Maxloc | PredefinedOp::Minloc => {
                return err(ErrorClass::Op, "MAXLOC/MINLOC on boolean is invalid")
            }
        };
        acc[i] = r as u8;
    }
    Ok(())
}

/// Float combine via a trait bound that excludes the bitwise ops.
fn float_reduce<T, const W: usize>(
    op: PredefinedOp,
    incoming: &[u8],
    acc: &mut [u8],
    count: usize,
) -> Result<()>
where
    T: Copy
        + PartialOrd
        + std::ops::Add<Output = T>
        + std::ops::Mul<Output = T>
        + FromLeBytes<W>
        + Default,
{
    for i in 0..count {
        let a = T::from_le(&acc[i * W..(i + 1) * W]);
        let b = T::from_le(&incoming[i * W..(i + 1) * W]);
        let zero = T::default();
        let r = match op {
            PredefinedOp::Max => {
                if a >= b {
                    a
                } else {
                    b
                }
            }
            PredefinedOp::Min => {
                if a <= b {
                    a
                } else {
                    b
                }
            }
            PredefinedOp::Sum => a + b,
            PredefinedOp::Prod => a * b,
            PredefinedOp::Land
            | PredefinedOp::Band
            | PredefinedOp::Lor
            | PredefinedOp::Bor
            | PredefinedOp::Lxor
            | PredefinedOp::Bxor => {
                return err(
                    ErrorClass::Op,
                    "bitwise/logical ops are invalid on floating types",
                )
            }
            PredefinedOp::Maxloc | PredefinedOp::Minloc => {
                return err(ErrorClass::Op, "MAXLOC/MINLOC require a pair datatype")
            }
        };
        let _ = zero;
        acc[i * W..(i + 1) * W].copy_from_slice(&r.to_le());
    }
    Ok(())
}

/// (value, index) pairs of an integer value type.
fn pairloc_reduce<T, const W: usize>(
    op: PredefinedOp,
    incoming: &[u8],
    acc: &mut [u8],
    count: usize,
) -> Result<()>
where
    T: Copy + PartialOrd + FromLeBytes<W>,
{
    let pair = 2 * W;
    for i in 0..count {
        let av = T::from_le(&acc[i * pair..i * pair + W]);
        let ai = T::from_le(&acc[i * pair + W..(i + 1) * pair]);
        let bv = T::from_le(&incoming[i * pair..i * pair + W]);
        let bi = T::from_le(&incoming[i * pair + W..(i + 1) * pair]);
        let (rv, ri) = combine_loc(op, (av, ai), (bv, bi))?;
        acc[i * pair..i * pair + W].copy_from_slice(&rv.to_le());
        acc[i * pair + W..(i + 1) * pair].copy_from_slice(&ri.to_le());
    }
    Ok(())
}

/// (value, index) pairs of a floating value type.
fn pairloc_float_reduce<T, const W: usize>(
    op: PredefinedOp,
    incoming: &[u8],
    acc: &mut [u8],
    count: usize,
) -> Result<()>
where
    T: Copy + PartialOrd + FromLeBytes<W>,
{
    pairloc_reduce::<T, W>(op, incoming, acc, count)
}

fn combine_loc<T: Copy + PartialOrd>(op: PredefinedOp, a: (T, T), b: (T, T)) -> Result<(T, T)> {
    match op {
        PredefinedOp::Maxloc => Ok(if b.0 > a.0 { b } else { a }),
        PredefinedOp::Minloc => Ok(if b.0 < a.0 { b } else { a }),
        _ => err(
            ErrorClass::Op,
            "pair datatypes are only valid with MAXLOC/MINLOC",
        ),
    }
}

/// Helper trait: fixed-width little-endian decode/encode.
pub trait FromLeBytes<const W: usize>: Sized {
    fn from_le(bytes: &[u8]) -> Self;
    fn to_le(&self) -> [u8; W];
}

macro_rules! impl_from_le {
    ($($t:ty => $w:expr),*) => {$(
        impl FromLeBytes<$w> for $t {
            fn from_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes[..$w].try_into().unwrap())
            }
            fn to_le(&self) -> [u8; $w] {
                self.to_le_bytes()
            }
        }
    )*}
}
impl_from_le!(i16 => 2, i32 => 4, i64 => 8, f32 => 4, f64 => 8);

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(values: &[i32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn to_ints(bytes: &[u8]) -> Vec<i32> {
        bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn doubles(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn to_doubles(bytes: &[u8]) -> Vec<f64> {
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn int_sum_prod_max_min() {
        let a = ints(&[1, 5, -3]);
        let b = ints(&[4, 2, -7]);
        for (op, expect) in [
            (PredefinedOp::Sum, vec![5, 7, -10]),
            (PredefinedOp::Prod, vec![4, 10, 21]),
            (PredefinedOp::Max, vec![4, 5, -3]),
            (PredefinedOp::Min, vec![1, 2, -7]),
        ] {
            let mut acc = a.clone();
            Op::Predefined(op)
                .apply(&b, &mut acc, PrimitiveKind::Int, 3)
                .unwrap();
            assert_eq!(to_ints(&acc), expect, "{op:?}");
        }
    }

    #[test]
    fn int_bitwise_and_logical() {
        let a = ints(&[0b1100, 0, 1]);
        let b = ints(&[0b1010, 0, 0]);
        let cases = [
            (PredefinedOp::Band, vec![0b1000, 0, 0]),
            (PredefinedOp::Bor, vec![0b1110, 0, 1]),
            (PredefinedOp::Bxor, vec![0b0110, 0, 1]),
            (PredefinedOp::Land, vec![1, 0, 0]),
            (PredefinedOp::Lor, vec![1, 0, 1]),
            (PredefinedOp::Lxor, vec![0, 0, 1]),
        ];
        for (op, expect) in cases {
            let mut acc = a.clone();
            Op::Predefined(op)
                .apply(&b, &mut acc, PrimitiveKind::Int, 3)
                .unwrap();
            assert_eq!(to_ints(&acc), expect, "{op:?}");
        }
    }

    #[test]
    fn double_sum_and_max() {
        let a = doubles(&[1.5, -2.0]);
        let b = doubles(&[2.5, -3.0]);
        let mut acc = a.clone();
        Op::Predefined(PredefinedOp::Sum)
            .apply(&b, &mut acc, PrimitiveKind::Double, 2)
            .unwrap();
        assert_eq!(to_doubles(&acc), vec![4.0, -5.0]);
        let mut acc = a;
        Op::Predefined(PredefinedOp::Max)
            .apply(&b, &mut acc, PrimitiveKind::Double, 2)
            .unwrap();
        assert_eq!(to_doubles(&acc), vec![2.5, -2.0]);
    }

    #[test]
    fn bitwise_on_floats_is_rejected() {
        let a = doubles(&[1.0]);
        let mut acc = a.clone();
        assert!(Op::Predefined(PredefinedOp::Band)
            .apply(&a, &mut acc, PrimitiveKind::Double, 1)
            .is_err());
    }

    #[test]
    fn maxloc_tracks_index_of_winner() {
        // pairs (value, rank-index)
        let a: Vec<u8> = [10i32, 0, 3, 0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let b: Vec<u8> = [7i32, 1, 9, 1]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let mut acc = a.clone();
        Op::Predefined(PredefinedOp::Maxloc)
            .apply(&b, &mut acc, PrimitiveKind::Int2, 2)
            .unwrap();
        assert_eq!(to_ints(&acc), vec![10, 0, 9, 1]);
        let mut acc = a;
        Op::Predefined(PredefinedOp::Minloc)
            .apply(&b, &mut acc, PrimitiveKind::Int2, 2)
            .unwrap();
        assert_eq!(to_ints(&acc), vec![7, 1, 3, 0]);
    }

    #[test]
    fn maxloc_on_scalar_type_is_rejected() {
        let a = ints(&[1]);
        let mut acc = a.clone();
        assert!(Op::Predefined(PredefinedOp::Maxloc)
            .apply(&a, &mut acc, PrimitiveKind::Int, 1)
            .is_err());
    }

    #[test]
    fn user_op_is_invoked() {
        let op = Op::User(Arc::new(|incoming, acc, kind, count| {
            assert_eq!(kind, PrimitiveKind::Int);
            for i in 0..count {
                let a = i32::from_le_bytes(acc[i * 4..(i + 1) * 4].try_into().unwrap());
                let b = i32::from_le_bytes(incoming[i * 4..(i + 1) * 4].try_into().unwrap());
                acc[i * 4..(i + 1) * 4].copy_from_slice(&(a.max(b) * 2).to_le_bytes());
            }
            Ok(())
        }));
        let a = ints(&[3, 4]);
        let b = ints(&[5, 1]);
        let mut acc = a;
        op.apply(&b, &mut acc, PrimitiveKind::Int, 2).unwrap();
        assert_eq!(to_ints(&acc), vec![10, 8]);
    }

    #[test]
    fn short_buffers_are_rejected() {
        let a = ints(&[1, 2]);
        let mut acc = ints(&[1]);
        assert!(Op::Predefined(PredefinedOp::Sum)
            .apply(&a, &mut acc, PrimitiveKind::Int, 2)
            .is_err());
    }

    #[test]
    fn boolean_logical_ops() {
        let a = vec![1u8, 0, 1, 0];
        let b = vec![1u8, 1, 0, 0];
        let mut acc = a.clone();
        Op::Predefined(PredefinedOp::Land)
            .apply(&b, &mut acc, PrimitiveKind::Boolean, 4)
            .unwrap();
        assert_eq!(acc, vec![1, 0, 0, 0]);
        let mut acc = a;
        Op::Predefined(PredefinedOp::Lor)
            .apply(&b, &mut acc, PrimitiveKind::Boolean, 4)
            .unwrap();
        assert_eq!(acc, vec![1, 1, 1, 0]);
    }
}
