//! Recursive-doubling collective algorithms for power-of-two
//! communicators: barrier, allgather and allreduce in log2(P) pairwise
//! exchange rounds.
//!
//! In round `k` every rank exchanges with `rank ^ 2^k`. After round `k`
//! each rank holds the data (or partial reduction) of its aligned block of
//! `2^(k+1)` ranks, so the blocks merged in each round are *adjacent* in
//! rank order — the allreduce keeps the lower block on the left of every
//! combine and therefore preserves operand order for non-commutative (but
//! associative) operations, exactly like the binomial tree.
//!
//! Non-power-of-two communicators are rejected by the tuning layer
//! ([`supported`](super::tuning::supported)); the dispatcher falls back to
//! tree or ring there.

use super::{coll_tag, entries_to_parts, frame_entries, unframe_entries, CollOp};
use crate::comm::CommHandle;
use crate::error::{err, ErrorClass, Result};
use crate::ops::Op;
use crate::types::PrimitiveKind;
use crate::Engine;

impl Engine {
    /// Pairwise-exchange barrier: after round `k` every rank has heard
    /// (transitively) from its aligned block of `2^(k+1)` ranks.
    pub(crate) fn barrier_rd(&mut self, comm: CommHandle) -> Result<()> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        debug_assert!(size.is_power_of_two());
        let mut mask = 1usize;
        let mut round = 0usize;
        while mask < size {
            let partner = (rank ^ mask) as i32;
            self.sendrecv_collective(
                comm,
                partner,
                partner,
                coll_tag(CollOp::Barrier, round),
                &[],
            )?;
            mask <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Recursive-doubling allgather: each round exchanges the framed
    /// `(rank, payload)` entries accumulated so far, doubling coverage.
    pub(crate) fn allgather_rd(&mut self, comm: CommHandle, send: &[u8]) -> Result<Vec<Vec<u8>>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        debug_assert!(size.is_power_of_two());
        let mut entries: Vec<(u32, Vec<u8>)> = vec![(rank as u32, send.to_vec())];
        let mut mask = 1usize;
        let mut round = 0usize;
        while mask < size {
            let partner = (rank ^ mask) as i32;
            let wire = self.sendrecv_collective(
                comm,
                partner,
                partner,
                coll_tag(CollOp::Allgather, round),
                &frame_entries(&entries),
            )?;
            entries.extend(unframe_entries(&wire)?);
            mask <<= 1;
            round += 1;
        }
        entries_to_parts(entries, size)
    }

    /// Recursive-doubling allreduce: each round exchanges the partial
    /// reduction of the rank's aligned block and merges it with the
    /// partner's adjacent block, lower block on the left.
    pub(crate) fn allreduce_rd(
        &mut self,
        comm: CommHandle,
        send: &[u8],
        kind: PrimitiveKind,
        count: usize,
        op: &Op,
    ) -> Result<Vec<u8>> {
        let rank = self.comm_rank(comm)?;
        let size = self.comm_size(comm)?;
        debug_assert!(size.is_power_of_two());
        let mut acc = send.to_vec();
        let mut mask = 1usize;
        let mut round = 0usize;
        while mask < size {
            let partner = rank ^ mask;
            let incoming = self.sendrecv_collective(
                comm,
                partner as i32,
                partner as i32,
                coll_tag(CollOp::Allreduce, round),
                &acc,
            )?;
            if incoming.len() != acc.len() {
                return err(ErrorClass::Count, "allreduce partners disagree on count");
            }
            if partner < rank {
                // Partner's block is the lower (left) operand.
                let mut merged = incoming;
                op.apply(&acc, &mut merged, kind, count)?;
                acc = merged;
            } else {
                op.apply(&incoming, &mut acc, kind, count)?;
            }
            mask <<= 1;
            round += 1;
        }
        Ok(acc)
    }
}
